"""Figure 5 — memory access density.

For every application, at both cache levels, the figure breaks read misses
down by the density of the spatial region generation they occur in (how many
of the 2 kB region's 32 blocks miss during the generation).  The paper's
claims checked by the benchmark: with the exception of ``ocean`` and
``sparse`` (dense), applications exhibit wide density variation at both
levels, so no single block size can capture the spatial correlation
efficiently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.density import DENSITY_BINS, DensityHistogram, measure_density
from repro.analysis.reporting import ResultTable
from repro.experiments import common


def run_application(
    name: str,
    region_size: int = 2048,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
) -> Dict[str, DensityHistogram]:
    """Measure the L1/L2 density histograms for one application."""
    trace, _ = common.build_trace(name, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    return measure_density(trace, config=config, region_size=region_size)


def run(
    applications: Optional[List[str]] = None,
    region_size: int = 2048,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 5's stacked-bar data (fraction of misses per density bin)."""
    applications = applications or common.application_names()
    bin_labels = [label for label, _, _ in DENSITY_BINS]
    table = ResultTable(
        title=f"Figure 5: memory access density ({region_size}B regions)",
        headers=["application", "level", "mean_density", "multi_block_fraction"] + bin_labels,
    )
    sweep = common.run_sweep(
        run_application,
        applications,
        workers=workers,
        region_size=region_size,
        scale=scale,
        num_cpus=num_cpus,
    )
    for name, histograms in zip(applications, sweep):
        for level in ("L1", "L2"):
            histogram = histograms[level]
            fractions = histogram.fractions()
            table.add_row(
                name,
                level,
                histogram.mean_density(),
                histogram.multi_block_fraction(),
                *[fractions[label] for label in bin_labels],
            )
    return table
