"""Figure 9 — PHT storage sensitivity of LS versus AGT training.

The logical sectored tag array fragments generations when interleaved
accesses conflict in its tag array, creating more (and sparser) history
patterns; the AGT does not.  The figure therefore compares the PHT storage
the two training structures need to reach a given coverage.

Paper claims checked by the benchmark: for any coverage LS can achieve, AGT
reaches it with roughly half the PHT entries (the gap being largest for
OLTP), and AGT produces fewer distinct trained patterns overall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.coverage import coverage_from_result
from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common

#: PHT sizes swept (entries); ``None`` is the unbounded PHT.
PHT_SIZES: List[Optional[int]] = [256, 512, 1024, 2048, 4096, 16384, None]

#: Training structures compared by Figure 9.
TRAINERS: List[str] = ["logical-sectored", "agt"]

_SHORT_NAMES = {"logical-sectored": "LS", "agt": "AGT"}


def _size_label(size: Optional[int]) -> str:
    return "infinite" if size is None else str(size)


def run_category(
    category: str,
    sizes: Optional[List[Optional[int]]] = None,
    trainers: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    backend: str = "dict",
    pht_shards: int = 1,
) -> Dict[Tuple[str, Optional[int]], float]:
    """Return coverage keyed by (trainer, pht_size) for one category.

    ``backend``/``pht_shards`` select the PHT storage backend the sweep runs
    on (coverage is backend-invariant; large ``sizes`` points stop being
    memory-bound on the packed backends).
    """
    sizes = sizes if sizes is not None else PHT_SIZES
    trainers = trainers or TRAINERS
    trace, metadata = common.representative_trace(category, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    coverage: Dict[Tuple[str, Optional[int]], float] = {}
    for trainer in trainers:
        for size in sizes:
            sms_config = SMSConfig(
                trainer=trainer,
                pht_entries=size,
                trained_cache_capacity=config.l1_capacity,
                trained_cache_associativity=config.l1_associativity,
                pht_backend=backend,
                pht_shards=pht_shards,
            )
            result = common.simulate(
                trace,
                common.sms_factory(sms_config),
                config=config,
                name=f"{category}-{trainer}-{_size_label(size)}",
                metadata=metadata,
            )
            coverage[(trainer, size)] = coverage_from_result(result, level="L1").coverage
    return coverage


def run(
    categories: Optional[List[str]] = None,
    sizes: Optional[List[Optional[int]]] = None,
    trainers: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
    backend: str = "dict",
    pht_shards: int = 1,
) -> ResultTable:
    """Regenerate Figure 9's curves."""
    categories = categories or list(common.CATEGORY_REPRESENTATIVE)
    sizes = sizes if sizes is not None else PHT_SIZES
    trainers = trainers or TRAINERS
    table = ResultTable(
        title="Figure 9: PHT storage sensitivity (LS vs AGT training)",
        headers=["category", "trainer", "pht_entries", "coverage"],
    )
    sweep = common.run_sweep(
        run_category,
        categories,
        workers=workers,
        sizes=sizes,
        trainers=trainers,
        scale=scale,
        num_cpus=num_cpus,
        backend=backend,
        pht_shards=pht_shards,
    )
    for category, coverage in zip(categories, sweep):
        for trainer in trainers:
            for size in sizes:
                table.add_row(
                    category,
                    _SHORT_NAMES.get(trainer, trainer),
                    _size_label(size),
                    coverage[(trainer, size)],
                )
    return table
