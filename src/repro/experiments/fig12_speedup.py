"""Figure 12 — speedup of SMS over the baseline system.

For every application, the baseline (no prefetching) and SMS configurations
are simulated over several trace samples (different seeds — the analogue of
the paper's SMARTS checkpoints) and the analytical timing model converts the
measured miss behaviour into execution time.  The per-sample paired speedups
give the mean speedup and its 95% confidence interval.

Paper claims checked by the benchmark: every workload class shows a speedup
at or above 1.0; the scientific ``sparse`` kernel shows by far the largest
gain; the scan-dominated DSS Qry1, which is store-buffer limited, shows the
smallest; and the geometric-mean speedup is well above 1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common
from repro.simulation.sampling import ConfidenceInterval, paired_speedup
from repro.simulation.timing import TimingModel


def run_application(
    name: str,
    samples: int = 3,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    timing_model: Optional[TimingModel] = None,
) -> ConfidenceInterval:
    """Measure the SMS speedup (with CI) for one application."""
    timing_model = timing_model or TimingModel()
    config = common.default_config(num_cpus=num_cpus)
    base_times: List[float] = []
    sms_times: List[float] = []
    for sample in range(samples):
        trace, metadata = common.build_trace(
            name, num_cpus=num_cpus, scale=scale, seed=common.DEFAULT_SEED + sample
        )
        base, sms = common.simulate_pair(
            trace,
            common.sms_factory(SMSConfig.paper_practical()),
            config=config,
            name=name,
            metadata=metadata,
        )
        base_timing, sms_timing = timing_model.evaluate_pair(base, sms, workload=metadata)
        base_times.append(base_timing.cpi)
        sms_times.append(sms_timing.cpi)
    return paired_speedup(base_times, sms_times)


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run(
    applications: Optional[List[str]] = None,
    samples: int = 3,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 12's speedup bars (with 95% confidence intervals)."""
    applications = applications or common.application_names()
    table = ResultTable(
        title="Figure 12: SMS speedup over the baseline system",
        headers=["application", "speedup", "ci_half_width", "ci_low", "ci_high"],
    )
    speedups: Dict[str, float] = {}
    sweep = common.run_sweep(
        run_application, applications, workers=workers, samples=samples, scale=scale, num_cpus=num_cpus
    )
    for name, interval in zip(applications, sweep):
        speedups[name] = interval.mean
        table.add_row(name, interval.mean, interval.half_width, interval.lower, interval.upper)
    table.add_row(
        "geometric-mean", geometric_mean(list(speedups.values())), 0.0, 0.0, 0.0
    )
    return table
