"""Figure 4 — L1 and L2 (off-chip) miss rates versus block/region size.

For each workload category the study sweeps the block/region size from 64 B
to the 8 kB OS page and reports, normalised to the 64 B-block baseline:

* the read miss rate of a cache built with that block size (capacity held
  fixed), with the false-sharing component separated beyond 64 B; and
* the *opportunity* — the miss rate of an oracle spatial predictor that
  incurs one miss per spatial region generation of that size.

The paper's claims checked by the benchmark: opportunity keeps improving out
to 8 kB regions; large physical blocks are much worse than the oracle at L1
(conflicts) and suffer false sharing at L2; and therefore no single block
size can capture the available spatial correlation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.opportunity import OpportunityResult, measure_opportunity, normalized_miss_rates
from repro.analysis.reporting import ResultTable
from repro.experiments import common

#: Block/region sizes swept by the paper's Figure 4.
SIZES: List[int] = [64, 128, 512, 2048, 8192]


def run_category(
    category: str,
    sizes: Optional[List[int]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
) -> Dict[int, OpportunityResult]:
    """Run the block-size/opportunity sweep for one workload category."""
    trace, _ = common.representative_trace(category, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    return measure_opportunity(trace, config=config, sizes=sizes or SIZES)


def run(
    categories: Optional[List[str]] = None,
    sizes: Optional[List[int]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 4's series for the requested categories."""
    categories = categories or list(common.CATEGORY_REPRESENTATIVE)
    sizes = sizes or SIZES
    table = ResultTable(
        title="Figure 4: normalized read miss rate vs block/region size",
        headers=[
            "category",
            "size",
            "l1_miss_rate",
            "l1_opportunity",
            "l2_miss_rate",
            "l2_opportunity",
            "l2_false_sharing",
        ],
    )
    sweep = common.run_sweep(
        run_category, categories, workers=workers, sizes=sizes, scale=scale, num_cpus=num_cpus
    )
    for category, results in zip(categories, sweep):
        normalized = normalized_miss_rates(results, baseline_size=64)
        for size in sizes:
            row = normalized[size]
            table.add_row(
                category,
                size,
                row["l1_miss_rate"],
                row["l1_opportunity"],
                row["l2_miss_rate"],
                row["l2_opportunity"],
                row["l2_false_sharing"],
            )
    return table
