"""Figure 7 — PHT storage sensitivity of PC+address versus PC+offset.

Sweeps the Pattern History Table capacity for the two strongest index schemes
of Figure 6.  Paper claims checked by the benchmark: PC+offset reaches (close
to) its peak coverage with a practical 16k-entry PHT, whereas PC+address —
whose key space scales with the data set — needs far more storage to approach
its unbounded coverage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.coverage import coverage_from_result
from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common

#: PHT sizes swept (entries); ``None`` is the unbounded PHT.
PHT_SIZES: List[Optional[int]] = [256, 1024, 4096, 16384, None]

#: Index schemes compared by Figure 7.
SCHEMES: List[str] = ["pc+address", "pc+offset"]


def _size_label(size: Optional[int]) -> str:
    return "infinite" if size is None else str(size)


def run_category(
    category: str,
    sizes: Optional[List[Optional[int]]] = None,
    schemes: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    backend: str = "dict",
    pht_shards: int = 1,
) -> Dict[Tuple[str, Optional[int]], float]:
    """Return coverage keyed by (scheme, pht_size) for one category.

    ``backend``/``pht_shards`` select the PHT storage backend the sweep runs
    on (coverage is backend-invariant; large ``sizes`` points stop being
    memory-bound on the packed backends).
    """
    sizes = sizes if sizes is not None else PHT_SIZES
    schemes = schemes or SCHEMES
    trace, metadata = common.representative_trace(category, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    coverage: Dict[Tuple[str, Optional[int]], float] = {}
    for scheme in schemes:
        for size in sizes:
            sms_config = SMSConfig(
                index_scheme=scheme,
                pht_entries=size,
                filter_entries=None,
                accumulation_entries=None,
                pht_backend=backend,
                pht_shards=pht_shards,
            )
            result = common.simulate(
                trace,
                common.sms_factory(sms_config),
                config=config,
                name=f"{category}-{scheme}-{_size_label(size)}",
                metadata=metadata,
            )
            report = coverage_from_result(result, level="L1")
            coverage[(scheme, size)] = report.coverage
    return coverage


def run(
    categories: Optional[List[str]] = None,
    sizes: Optional[List[Optional[int]]] = None,
    schemes: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
    backend: str = "dict",
    pht_shards: int = 1,
) -> ResultTable:
    """Regenerate Figure 7's curves."""
    categories = categories or list(common.CATEGORY_REPRESENTATIVE)
    sizes = sizes if sizes is not None else PHT_SIZES
    schemes = schemes or SCHEMES
    table = ResultTable(
        title="Figure 7: PHT storage sensitivity (PC+address vs PC+offset)",
        headers=["category", "index", "pht_entries", "coverage"],
    )
    sweep = common.run_sweep(
        run_category,
        categories,
        workers=workers,
        sizes=sizes,
        schemes=schemes,
        scale=scale,
        num_cpus=num_cpus,
        backend=backend,
        pht_shards=pht_shards,
    )
    for category, coverage in zip(categories, sweep):
        for scheme in schemes:
            for size in sizes:
                table.add_row(category, scheme, _size_label(size), coverage[(scheme, size)])
    return table
