"""Markdown report generation.

Turns experiment tables into a Markdown report comparing the paper's reported
values with the values measured by this reproduction.  ``EXPERIMENTS.md`` at
the repository root is maintained with these helpers; the CLI and the
benchmark harness can also emit ad-hoc reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.reporting import ResultTable

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def table_to_markdown(table: ResultTable, caption: str = "") -> str:
    """Render a :class:`ResultTable` as a GitHub-flavoured Markdown table."""
    lines: List[str] = []
    if caption:
        lines.append(f"**{caption}**")
        lines.append("")
    lines.append("| " + " | ".join(table.headers) + " |")
    lines.append("|" + "|".join([" --- "] * len(table.headers)) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


@dataclass
class ClaimComparison:
    """One paper claim compared against the reproduction's measurement."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool
    note: str = ""

    def as_row(self) -> List[str]:
        status = "reproduced" if self.holds else "deviates"
        return [self.claim, self.paper_value, self.measured_value, status, self.note]


@dataclass
class ExperimentSection:
    """One figure/table's section of the report."""

    identifier: str
    title: str
    summary: str = ""
    claims: List[ClaimComparison] = field(default_factory=list)
    tables: List[ResultTable] = field(default_factory=list)

    def add_claim(
        self,
        claim: str,
        paper_value: str,
        measured_value: str,
        holds: bool,
        note: str = "",
    ) -> None:
        self.claims.append(
            ClaimComparison(
                claim=claim,
                paper_value=paper_value,
                measured_value=measured_value,
                holds=holds,
                note=note,
            )
        )

    def add_table(self, table: ResultTable) -> None:
        self.tables.append(table)

    @property
    def reproduced_count(self) -> int:
        return sum(1 for claim in self.claims if claim.holds)

    def to_markdown(self) -> str:
        lines = [f"## {self.identifier}: {self.title}", ""]
        if self.summary:
            lines.extend([self.summary, ""])
        if self.claims:
            claims_table = ResultTable(
                title="",
                headers=["claim", "paper", "measured", "status", "note"],
            )
            for claim in self.claims:
                claims_table.add_row(*claim.as_row())
            lines.append(table_to_markdown(claims_table))
            lines.append("")
        for table in self.tables:
            lines.append(table_to_markdown(table, caption=table.title))
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


@dataclass
class ExperimentReport:
    """A full paper-versus-measured report."""

    title: str
    preamble: str = ""
    sections: List[ExperimentSection] = field(default_factory=list)

    def add_section(self, section: ExperimentSection) -> None:
        self.sections.append(section)

    def section(self, identifier: str) -> Optional[ExperimentSection]:
        for section in self.sections:
            if section.identifier == identifier:
                return section
        return None

    @property
    def total_claims(self) -> int:
        return sum(len(section.claims) for section in self.sections)

    @property
    def reproduced_claims(self) -> int:
        return sum(section.reproduced_count for section in self.sections)

    def summary_table(self) -> ResultTable:
        table = ResultTable(
            title="Summary",
            headers=["experiment", "title", "claims checked", "claims reproduced"],
        )
        for section in self.sections:
            table.add_row(
                section.identifier, section.title, len(section.claims), section.reproduced_count
            )
        return table

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        if self.preamble:
            lines.extend([self.preamble, ""])
        if self.sections:
            lines.append(table_to_markdown(self.summary_table(), caption="Summary"))
            lines.append("")
        for section in self.sections:
            lines.append(section.to_markdown())
        return "\n".join(lines).rstrip() + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_markdown(), encoding="utf-8")
        return path
