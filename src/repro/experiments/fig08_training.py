"""Figure 8 — comparison of training structures.

Compares the decoupled sectored cache (DS), the logical sectored tag array
(LS), and the paper's Active Generation Table (AGT) as the structure that
observes spatial region generations, with an unbounded PHT so that only the
training organisation differs.

Paper claims checked by the benchmark: in the commercial workloads, DS's
constraints on cache contents cost it coverage relative to both LS and AGT;
LS and AGT achieve similar coverage; in the scientific workloads all three
behave similarly because blocks of a sector tend to live and die together.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.coverage import CoverageReport, compare_coverage
from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common

#: Training structures in the paper's presentation order.
TRAINERS: List[str] = ["decoupled-sectored", "logical-sectored", "agt"]

_SHORT_NAMES = {"decoupled-sectored": "DS", "logical-sectored": "LS", "agt": "AGT"}


def run_category(
    category: str,
    trainers: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
) -> Dict[str, CoverageReport]:
    """Run every training structure over one category's representative trace."""
    trainers = trainers or TRAINERS
    trace, metadata = common.representative_trace(category, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    baseline = common.simulate(trace, None, config=config, name=f"{category}-base", metadata=metadata)
    reports: Dict[str, CoverageReport] = {}
    for trainer in trainers:
        sms_config = SMSConfig(
            trainer=trainer,
            pht_entries=None,
            trained_cache_capacity=config.l1_capacity,
            trained_cache_associativity=config.l1_associativity,
        )
        result = common.simulate(
            trace,
            common.sms_factory(sms_config),
            config=config,
            name=f"{category}-{trainer}",
            metadata=metadata,
        )
        # Coverage is measured against the no-prefetch baseline cache so that
        # the extra conflict misses of the decoupled sectored organisation
        # show up as lost coverage, exactly as in the paper.
        reports[trainer] = compare_coverage(baseline, result, level="L1", name=trainer)
    return reports


def run(
    categories: Optional[List[str]] = None,
    trainers: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 8's bars."""
    categories = categories or list(common.CATEGORY_REPRESENTATIVE)
    trainers = trainers or TRAINERS
    table = ResultTable(
        title="Figure 8: training structure comparison (unbounded PHT, L1 read misses)",
        headers=["category", "trainer", "coverage", "uncovered", "overpredictions"],
    )
    sweep = common.run_sweep(
        run_category, categories, workers=workers, trainers=trainers, scale=scale, num_cpus=num_cpus
    )
    for category, reports in zip(categories, sweep):
        for trainer in trainers:
            report = reports[trainer]
            table.add_row(
                category,
                _SHORT_NAMES.get(trainer, trainer),
                report.coverage,
                report.uncovered_fraction,
                report.overprediction_fraction,
            )
    return table
