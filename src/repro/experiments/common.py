"""Shared infrastructure for the experiment runners.

Centralises trace construction (with per-application scaling chosen so the
synthetic traces exercise enough of the cache hierarchy to train SMS), the
prefetcher factories each experiment compares, trace caching so that one
benchmark module can run several configurations over the same trace without
regenerating it, and the parallel sweep entry point (:func:`sweep_map`) the
fig04–fig13 runners fan their per-item work through.

Trace caching has two layers: an in-process ``lru_cache`` (always on), and
an opt-in on-disk layer that memoizes each generated trace as a binary
``.strc`` file keyed by (workload, cpus, accesses, seed) plus the package's
code fingerprint.  Synthetic generation runs at ~200k records/s while the
binary decoder runs at ~2.6M records/s, so full-scale sweeps — and every
parallel worker, which otherwise regenerates its own traces — cut their
per-trace warmup by roughly an order of magnitude on a warm cache.  Enable
it with :func:`set_trace_cache` or ``REPRO_TRACE_CACHE=1`` (the CLI turns it
on by default; ``--no-trace-cache`` is the escape hatch); the files live in
a ``traces/`` directory next to the sweep result cache.
"""

from __future__ import annotations

import os
import warnings
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import _env, obs
from repro.core import SMSConfig, SpatialMemoryStreaming
from repro.prefetch import GHBConfig, GlobalHistoryBuffer, NullPrefetcher, StridePrefetcher
from repro.prefetch.base import Prefetcher
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.result_cache import TRACES_SUBDIR, code_fingerprint, default_cache_dir
from repro.simulation.sweep import sweep_map
from repro.trace.binary import BinaryTraceStream, write_trace_binary
from repro.trace.record import MemoryAccess
from repro.workloads import make_workload
from repro.workloads.base import WorkloadMetadata
from repro.workloads.suite import APPLICATION_NAMES, CATEGORIES, category_members

#: Default number of processors for experiment traces.  The paper simulates
#: 16; the experiments default to 4 so that each processor sees enough of the
#: synthetic trace to warm its private L1 within a tractable trace length.
DEFAULT_NUM_CPUS = 4

#: Per-application accesses-per-CPU.  Streaming scientific workloads need
#: longer traces than the commercial ones because their spatial region
#: generations only end after a full L1 capacity of new data has streamed by.
ACCESSES_PER_CPU: Dict[str, int] = {
    "oltp-db2": 12000,
    "oltp-oracle": 12000,
    "dss-qry1": 12000,
    "dss-qry2": 12000,
    "dss-qry16": 12000,
    "dss-qry17": 12000,
    "web-apache": 12000,
    "web-zeus": 12000,
    "em3d": 20000,
    "ocean": 25000,
    "sparse": 25000,
}

#: The application that represents each category in the class-level studies
#: (Figures 6-10 report per-category bars/lines).
CATEGORY_REPRESENTATIVE: Dict[str, str] = {
    "OLTP": "oltp-db2",
    "DSS": "dss-qry2",
    "Web": "web-apache",
    "Scientific": "ocean",
}

#: Default seed for experiment traces.
DEFAULT_SEED = 7


def default_config(num_cpus: int = DEFAULT_NUM_CPUS) -> SimulationConfig:
    """Simulation configuration used by the experiments (paper L1, smaller L2)."""
    return SimulationConfig.small(num_cpus=num_cpus)


# --------------------------------------------------------------------------- #
# On-disk trace memoization
# --------------------------------------------------------------------------- #
#: Environment variable enabling the on-disk trace cache ("1" to enable).
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Explicit override of the environment default (None = follow the env).
_trace_cache_override: Optional[bool] = None


def set_trace_cache(enabled: Optional[bool]) -> Optional[bool]:
    """Enable/disable the on-disk trace cache for this process.

    ``None`` restores the ambient default (the ``REPRO_TRACE_CACHE``
    environment variable).  Returns the previous override so scoped callers
    (the CLI, tests) can restore it.
    """
    global _trace_cache_override
    previous = _trace_cache_override
    _trace_cache_override = enabled
    return previous


def trace_cache_enabled() -> bool:
    """True when generated traces are memoized as ``.strc`` files on disk."""
    if _trace_cache_override is not None:
        return _trace_cache_override
    return _env.flag(TRACE_CACHE_ENV)


def trace_cache_dir() -> Path:
    """Trace cache directory — ``traces/`` next to the sweep result cache."""
    return default_cache_dir() / TRACES_SUBDIR


def _trace_cache_path(name: str, num_cpus: int, accesses_per_cpu: int, seed: int) -> Path:
    # The code fingerprint keys the entry to the exact generator source, so
    # any change to the workload (or anything else in the package) regenerates
    # rather than silently replaying a stale trace.
    fingerprint = code_fingerprint()[:16]
    return trace_cache_dir() / (
        f"{name}-c{num_cpus}-a{accesses_per_cpu}-s{seed}-{fingerprint}.strc"
    )


def _load_or_generate(workload, name: str, num_cpus: int, accesses_per_cpu: int, seed: int):
    """Replay the trace from its ``.strc`` cache file, generating it on a miss."""
    path = _trace_cache_path(name, num_cpus, accesses_per_cpu, seed)
    try:
        if path.exists():
            records: List[MemoryAccess] = []
            for chunk in BinaryTraceStream(path).iter_chunks():
                records.extend(chunk)
            obs.note_cache_op("trace", "hit")
            return tuple(records)
    except (OSError, ValueError) as exc:  # corrupt/truncated entry: regenerate
        from repro.simulation.result_cache import quarantine_file

        # Quarantined next to the sweep cache's corrupt entries (same
        # side directory, same post-mortem workflow) rather than deleted.
        quarantine_file(path, trace_cache_dir().parent)
        obs.note_cache_op("trace", "error", "quarantine")
        warnings.warn(
            f"quarantining unreadable trace cache entry {path.name}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
    generated = tuple(workload)
    obs.note_cache_op("trace", "miss")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # A code change re-fingerprints every entry, so siblings for the same
        # (workload, cpus, accesses, seed) under an old fingerprint are
        # permanently unreachable — prune them instead of hoarding them.
        prefix = path.name.rsplit("-", 1)[0]
        for stale in path.parent.glob(f"{prefix}-*.strc"):
            if stale.name != path.name:
                try:
                    stale.unlink()
                except OSError:
                    pass
        # Unique temp name + atomic replace: concurrent sweep workers filling
        # the same entry can never expose a half-written trace.
        tmp_path = path.with_name(f".tmp-{os.getpid()}-{path.name}")
        write_trace_binary(tmp_path, generated, compress=False)
        os.replace(tmp_path, path)
    except OSError as exc:
        obs.note_cache_op("trace", "error")
        warnings.warn(f"could not store trace cache entry: {exc}", RuntimeWarning, stacklevel=2)
        return generated
    obs.note_cache_op("trace", "store")
    return generated


@lru_cache(maxsize=32)
def _cached_trace(name: str, num_cpus: int, accesses_per_cpu: int, seed: int) -> Tuple:
    workload = make_workload(
        name, num_cpus=num_cpus, accesses_per_cpu=accesses_per_cpu, seed=seed
    )
    if trace_cache_enabled():
        records = _load_or_generate(workload, name, num_cpus, accesses_per_cpu, seed)
    else:
        records = tuple(workload)
    return (records, workload.metadata)


def build_trace(
    name: str,
    num_cpus: int = DEFAULT_NUM_CPUS,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> Tuple[Sequence[MemoryAccess], WorkloadMetadata]:
    """Build (and cache) the experiment trace for application ``name``.

    ``scale`` multiplies the per-application default trace length; benchmark
    runs use ``scale<1`` to keep wall-clock time down, full runs use 1.0+.
    The returned record sequence is the cached immutable tuple — do not
    mutate it; every configuration of a figure streams the same instance.
    """
    accesses = max(1000, int(ACCESSES_PER_CPU[name] * scale))
    records, metadata = _cached_trace(name, num_cpus, accesses, seed)
    return records, metadata


def representative_trace(
    category: str,
    num_cpus: int = DEFAULT_NUM_CPUS,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> Tuple[Sequence[MemoryAccess], WorkloadMetadata]:
    """Trace of the representative application for ``category``."""
    if category not in CATEGORY_REPRESENTATIVE:
        raise ValueError(f"unknown category {category!r}; choose from {CATEGORIES}")
    return build_trace(CATEGORY_REPRESENTATIVE[category], num_cpus=num_cpus, scale=scale, seed=seed)


# --------------------------------------------------------------------------- #
# Prefetcher factories
# --------------------------------------------------------------------------- #
def sms_factory(config: Optional[SMSConfig] = None) -> Callable[[int], Prefetcher]:
    """Per-CPU factory for SMS with ``config`` (practical paper config by default)."""
    sms_config = config or SMSConfig()
    return lambda cpu: SpatialMemoryStreaming(sms_config)


def ghb_factory(buffer_entries: int = 256, degree: int = 4) -> Callable[[int], Prefetcher]:
    """Per-CPU factory for the GHB PC/DC baseline."""
    return lambda cpu: GlobalHistoryBuffer(GHBConfig(buffer_entries=buffer_entries, degree=degree))


def stride_factory(degree: int = 4) -> Callable[[int], Prefetcher]:
    """Per-CPU factory for the stride prefetcher baseline."""
    return lambda cpu: StridePrefetcher(degree=degree)


def null_factory() -> Callable[[int], Prefetcher]:
    """Per-CPU factory for the no-prefetching baseline."""
    return lambda cpu: NullPrefetcher()


# --------------------------------------------------------------------------- #
# Simulation helpers
# --------------------------------------------------------------------------- #
def simulate(
    trace: Iterable[MemoryAccess],
    prefetcher_factory: Optional[Callable[[int], Prefetcher]] = None,
    config: Optional[SimulationConfig] = None,
    name: str = "",
    metadata: Optional[WorkloadMetadata] = None,
) -> SimulationResult:
    """Run one configuration over ``trace`` and return its result."""
    engine = SimulationEngine(
        config=config or default_config(),
        prefetcher_factory=prefetcher_factory or null_factory(),
        name=name,
    )
    result = engine.run(trace)
    if metadata is not None:
        result.workload = metadata
    return result


def simulate_pair(
    trace: Iterable[MemoryAccess],
    prefetcher_factory: Callable[[int], Prefetcher],
    config: Optional[SimulationConfig] = None,
    name: str = "",
    metadata: Optional[WorkloadMetadata] = None,
) -> Tuple[SimulationResult, SimulationResult]:
    """Run the no-prefetch baseline and the prefetching configuration on ``trace``."""
    base = simulate(trace, null_factory(), config=config, name=f"{name}-base", metadata=metadata)
    with_prefetcher = simulate(
        trace, prefetcher_factory, config=config, name=name, metadata=metadata
    )
    return base, with_prefetcher


def application_names(categories: Optional[List[str]] = None) -> List[str]:
    """All application names, optionally restricted to ``categories``."""
    if categories is None:
        return list(APPLICATION_NAMES)
    names: List[str] = []
    for category in categories:
        names.extend(category_members(category))
    return names


# --------------------------------------------------------------------------- #
# Parallel sweeps
# --------------------------------------------------------------------------- #
def run_sweep(
    fn: Callable,
    items: Iterable,
    workers: Optional[int] = None,
    cache=None,
    **fixed_kwargs,
) -> List:
    """Map ``fn(item, **fixed_kwargs)`` over ``items``, optionally in parallel.

    This is the fan-out point of every figure runner: ``workers=None`` (or
    ``<=1``) runs serially in-process, larger values spread the per-item work
    (one application or category per task) over that many worker processes
    via :class:`~repro.simulation.sweep.SweepRunner`.  ``fn`` must be a
    module-level callable for parallel runs; each worker rebuilds its own
    traces, so results are identical to a serial sweep.

    ``cache`` (a :class:`~repro.simulation.result_cache.SweepResultCache`)
    memoizes completed task results on disk; when omitted, the ambient
    default configured by the CLI / ``REPRO_SWEEP_CACHE=1`` applies, so
    repeated sweeps over the same configuration reuse prior results across
    figures and runs.
    """
    return sweep_map(fn, items, workers=workers, cache=cache, **fixed_kwargs)
