"""Figure 13 — execution time breakdown, base versus SMS.

For every application the base and SMS configurations are simulated over the
same trace, converted into per-category cycle counts by the timing model, and
normalised to the base system's CPI so that (as in the paper) the two bars of
one application represent the same amount of completed work and their
relative height equals the speedup.

Paper claims checked by the benchmark: SMS's gains come from reducing the
off-chip read stall component; busy time per unit work is unchanged; Qry1's
store-buffer component is not reduced (and limits its speedup).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common
from repro.simulation.breakdown import CATEGORY_ORDER, BreakdownCategory, ExecutionBreakdown
from repro.simulation.timing import TimingModel


def run_application(
    name: str,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    timing_model: Optional[TimingModel] = None,
) -> Tuple[ExecutionBreakdown, ExecutionBreakdown]:
    """Return the (base, SMS) execution breakdowns for one application."""
    timing_model = timing_model or TimingModel()
    config = common.default_config(num_cpus=num_cpus)
    trace, metadata = common.build_trace(name, num_cpus=num_cpus, scale=scale)
    base, sms = common.simulate_pair(
        trace,
        common.sms_factory(SMSConfig.paper_practical()),
        config=config,
        name=name,
        metadata=metadata,
    )
    base_timing, sms_timing = timing_model.evaluate_pair(base, sms, workload=metadata)
    return base_timing.breakdown, sms_timing.breakdown


def run(
    applications: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 13's stacked bars (normalised to the base system)."""
    applications = applications or common.application_names()
    category_headers = [category.value for category in CATEGORY_ORDER]
    table = ResultTable(
        title="Figure 13: normalized execution time breakdown (base vs SMS)",
        headers=["application", "system", "total"] + category_headers,
    )
    sweep = common.run_sweep(
        run_application, applications, workers=workers, scale=scale, num_cpus=num_cpus
    )
    for name, (base_breakdown, sms_breakdown) in zip(applications, sweep):
        for label, breakdown in (("base", base_breakdown), ("SMS", sms_breakdown)):
            normalized = breakdown.normalized(reference=base_breakdown)
            table.add_row(
                name,
                label,
                sum(normalized.values()),
                *[normalized.get(category, 0.0) for category in CATEGORY_ORDER],
            )
    return table
