"""Figure 10 — spatial region size sweep.

Sweeps the spatial region size from 128 B (two blocks) to the 8 kB OS page
with PC+offset indexing, AGT training, and an unbounded PHT.

Paper claims checked by the benchmark: coverage rises steeply up to ~2 kB
regions for every category; OLTP (page-aligned structures) keeps improving
slightly beyond 2 kB, while the other categories flatten or decline as larger
regions start spanning unrelated data structures — making 2 kB the chosen
operating point.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.coverage import coverage_from_result
from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common

#: Region sizes swept by the paper's Figure 10.
REGION_SIZES: List[int] = [128, 256, 512, 1024, 2048, 4096, 8192]


def run_category(
    category: str,
    region_sizes: Optional[List[int]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
) -> Dict[int, float]:
    """Return coverage keyed by region size for one category."""
    region_sizes = region_sizes or REGION_SIZES
    trace, metadata = common.representative_trace(category, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    coverage: Dict[int, float] = {}
    for region_size in region_sizes:
        sms_config = SMSConfig.unbounded(region_size=region_size)
        result = common.simulate(
            trace,
            common.sms_factory(sms_config),
            config=config,
            name=f"{category}-{region_size}B",
            metadata=metadata,
        )
        coverage[region_size] = coverage_from_result(result, level="L1").coverage
    return coverage


def run(
    categories: Optional[List[str]] = None,
    region_sizes: Optional[List[int]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 10's curves."""
    categories = categories or list(common.CATEGORY_REPRESENTATIVE)
    region_sizes = region_sizes or REGION_SIZES
    table = ResultTable(
        title="Figure 10: coverage vs spatial region size (PC+offset, AGT, unbounded PHT)",
        headers=["category", "region_size", "coverage"],
    )
    sweep = common.run_sweep(
        run_category,
        categories,
        workers=workers,
        region_sizes=region_sizes,
        scale=scale,
        num_cpus=num_cpus,
    )
    for category, coverage in zip(categories, sweep):
        for region_size in region_sizes:
            table.add_row(category, region_size, coverage[region_size])
    return table
