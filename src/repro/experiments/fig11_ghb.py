"""Figure 11 — practical SMS versus the Global History Buffer.

Compares the practical SMS configuration (32-entry filter table, 64-entry
accumulation table, 2 kB regions, 16k-entry 16-way PHT) against GHB PC/DC
with 256-entry and 16k-entry history buffers, reporting off-chip read-miss
coverage and overpredictions for every application.

Paper claims checked by the benchmark: SMS outperforms GHB on OLTP and web
workloads (whose interleaved access sequences disrupt delta correlation);
GHB nearly matches SMS on DSS and the scientific applications; and the
larger 16k-entry GHB helps little where interleaving is the problem.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.coverage import CoverageReport, coverage_from_result
from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common

#: Configurations compared, in the paper's presentation order.
CONFIGURATIONS: List[str] = ["ghb-256", "ghb-16k", "sms"]


def _factory_for(configuration: str):
    if configuration == "ghb-256":
        return common.ghb_factory(buffer_entries=256)
    if configuration == "ghb-16k":
        return common.ghb_factory(buffer_entries=16384)
    if configuration == "sms":
        return common.sms_factory(SMSConfig.paper_practical())
    raise ValueError(f"unknown configuration {configuration!r}")


def run_application(
    name: str,
    configurations: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
) -> Dict[str, CoverageReport]:
    """Run every configuration over one application's trace (off-chip coverage)."""
    configurations = configurations or CONFIGURATIONS
    trace, metadata = common.build_trace(name, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    reports: Dict[str, CoverageReport] = {}
    for configuration in configurations:
        result = common.simulate(
            trace,
            _factory_for(configuration),
            config=config,
            name=f"{name}-{configuration}",
            metadata=metadata,
        )
        reports[configuration] = coverage_from_result(result, level="L2", name=configuration)
    return reports


def run(
    applications: Optional[List[str]] = None,
    configurations: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 11's bars."""
    applications = applications or common.application_names()
    configurations = configurations or CONFIGURATIONS
    table = ResultTable(
        title="Figure 11: off-chip read miss coverage, SMS vs GHB",
        headers=["application", "configuration", "coverage", "uncovered", "overpredictions"],
    )
    sweep = common.run_sweep(
        run_application,
        applications,
        workers=workers,
        configurations=configurations,
        scale=scale,
        num_cpus=num_cpus,
    )
    for name, reports in zip(applications, sweep):
        for configuration in configurations:
            report = reports[configuration]
            table.add_row(
                name,
                configuration,
                report.coverage,
                report.uncovered_fraction,
                report.overprediction_fraction,
            )
    return table
