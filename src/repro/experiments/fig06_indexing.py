"""Figure 6 — prediction index comparison.

Compares Address, PC+address, PC, and PC+offset indexing with an unbounded
PHT, reporting L1 read-miss coverage, the uncovered remainder, and
overpredictions as fractions of the baseline miss count.

Paper claims checked by the benchmark: PC+offset achieves the highest (or
tied-highest) coverage in every category; address-based indices collapse on
DSS because its scans touch data only once; PC-only indexing overpredicts
more than PC+offset because it cannot distinguish different traversals by the
same code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.coverage import CoverageReport, coverage_from_result
from repro.analysis.reporting import ResultTable
from repro.core import SMSConfig
from repro.experiments import common

#: Index schemes in the paper's presentation order.
INDEX_SCHEMES: List[str] = ["address", "pc+address", "pc", "pc+offset"]


def run_category(
    category: str,
    schemes: Optional[List[str]] = None,
    region_size: int = 2048,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
) -> Dict[str, CoverageReport]:
    """Run every index scheme over one category's representative trace."""
    schemes = schemes or INDEX_SCHEMES
    trace, metadata = common.representative_trace(category, num_cpus=num_cpus, scale=scale)
    config = common.default_config(num_cpus=num_cpus)
    reports: Dict[str, CoverageReport] = {}
    for scheme in schemes:
        sms_config = SMSConfig.unbounded(index_scheme=scheme, region_size=region_size)
        result = common.simulate(
            trace,
            common.sms_factory(sms_config),
            config=config,
            name=f"{category}-{scheme}",
            metadata=metadata,
        )
        reports[scheme] = coverage_from_result(result, level="L1", name=scheme)
    return reports


def run(
    categories: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
    scale: float = 1.0,
    num_cpus: int = common.DEFAULT_NUM_CPUS,
    workers: Optional[int] = None,
) -> ResultTable:
    """Regenerate Figure 6's bars."""
    categories = categories or list(common.CATEGORY_REPRESENTATIVE)
    schemes = schemes or INDEX_SCHEMES
    table = ResultTable(
        title="Figure 6: index comparison (unbounded PHT, L1 read misses)",
        headers=["category", "index", "coverage", "uncovered", "overpredictions"],
    )
    sweep = common.run_sweep(
        run_category, categories, workers=workers, schemes=schemes, scale=scale, num_cpus=num_cpus
    )
    for category, reports in zip(categories, sweep):
        for scheme in schemes:
            report = reports[scheme]
            table.add_row(
                category,
                scheme,
                report.coverage,
                report.uncovered_fraction,
                report.overprediction_fraction,
            )
    return table
