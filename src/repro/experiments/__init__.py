"""Experiment runners — one module per table/figure of the paper.

Each module exposes a ``run(...)`` function that regenerates the rows/series
of its figure using the synthetic workload suite and returns a
:class:`repro.analysis.reporting.ResultTable` (plus, where useful, the raw
results).  The benchmark harness under ``benchmarks/`` simply calls these
runners with its scaled-down defaults and asserts the paper's qualitative
claims on the output, and ``EXPERIMENTS.md`` records the paper-vs-measured
comparison.

| Module | Paper artifact |
| --- | --- |
| :mod:`repro.experiments.fig04_block_size` | Fig. 4 — miss rate vs block/region size + oracle opportunity |
| :mod:`repro.experiments.fig05_density` | Fig. 5 — memory access density |
| :mod:`repro.experiments.fig06_indexing` | Fig. 6 — index scheme comparison |
| :mod:`repro.experiments.fig07_pht_storage` | Fig. 7 — PHT storage sensitivity (PC+addr vs PC+off) |
| :mod:`repro.experiments.fig08_training` | Fig. 8 — training structure comparison (DS/LS/AGT) |
| :mod:`repro.experiments.fig09_training_storage` | Fig. 9 — PHT storage sensitivity (LS vs AGT) |
| :mod:`repro.experiments.fig10_region_size` | Fig. 10 — spatial region size sweep |
| :mod:`repro.experiments.fig11_ghb` | Fig. 11 — SMS vs GHB off-chip coverage |
| :mod:`repro.experiments.fig12_speedup` | Fig. 12 — speedup with confidence intervals |
| :mod:`repro.experiments.fig13_breakdown` | Fig. 13 — execution time breakdown |
| :mod:`repro.experiments.tab01_config` | Table 1 — system and application parameters |
"""

from repro.experiments import common

__all__ = ["common"]
