"""Table 1 — system and application parameters.

Table 1 of the paper lists the simulated machine (processing nodes, cache
hierarchy, memory, protocol controller, interconnect) and the application
suite.  This runner materialises the same information from the repository's
configuration objects and workload registry, so the benchmark can verify that
the reproduced system matches the paper's parameters and that every listed
application is available.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.reporting import ResultTable
from repro.simulation.config import MachineConfig, SimulationConfig
from repro.workloads.suite import APPLICATION_NAMES, make_workload


def system_table(
    machine: MachineConfig = None,
    simulation: SimulationConfig = None,
) -> ResultTable:
    """The machine-parameter half of Table 1."""
    machine = machine or MachineConfig.paper_default()
    simulation = simulation or SimulationConfig.paper_default()
    table = ResultTable(
        title="Table 1 (left): system parameters",
        headers=["parameter", "value"],
    )
    table.add_row("processors", simulation.num_cpus)
    table.add_row("clock (GHz)", machine.clock_ghz)
    table.add_row("dispatch width", machine.dispatch_width)
    table.add_row("ROB entries", machine.rob_entries)
    table.add_row("store buffer entries", machine.store_buffer_entries)
    table.add_row("L1 capacity (kB)", simulation.l1_capacity // 1024)
    table.add_row("L1 associativity", simulation.l1_associativity)
    table.add_row("L1 load-to-use (cycles)", machine.l1_load_to_use_cycles)
    table.add_row("L1 MSHRs", simulation.l1_mshrs)
    table.add_row("SMS stream requests", simulation.sms_stream_slots)
    table.add_row("L2 capacity (MB)", simulation.l2_capacity // (1024 * 1024))
    table.add_row("L2 associativity", simulation.l2_associativity)
    table.add_row("L2 hit latency (cycles)", machine.l2_hit_cycles)
    table.add_row("memory latency (ns)", machine.memory_latency_ns)
    table.add_row("coherence unit (B)", simulation.block_size)
    table.add_row("interconnect", f"{machine.torus.width}x{machine.torus.height} 2D torus")
    table.add_row("hop latency (ns)", machine.torus.hop_latency_ns)
    table.add_row("peak bisection bandwidth (GB/s)", machine.peak_bisection_gb_per_s)
    return table


def application_table() -> ResultTable:
    """The application-suite half of Table 1."""
    table = ResultTable(
        title="Table 1 (right): application suite",
        headers=["application", "category", "description"],
    )
    for name in APPLICATION_NAMES:
        workload = make_workload(name, num_cpus=1, accesses_per_cpu=1000)
        table.add_row(name, workload.metadata.category, workload.metadata.description)
    return table


def run() -> Tuple[ResultTable, ResultTable]:
    """Regenerate both halves of Table 1."""
    return system_table(), application_table()
