"""Dataflow-lite helpers: name resolution and per-function taint tracking.

The DET taint rules need to know three things about a function body without
a real dataflow engine:

* which local names hold *set-valued* expressions (iteration order depends
  on the interpreter's salted string hash, so letting one flow into a cache
  key or serialization call is a cross-process nondeterminism bug);
* which local names hold results of the builtin ``hash()`` (salted the same
  way); and
* whether the function contains a *sink* — a digest update, a cache-key
  builder, or a serialization call.

One linear pass per function collects all three; this deliberately ignores
reassignment order and aliasing through containers — the goal is catching
the obvious leak, not proving absence.  Import tracking maps the names a
module binds (``import hashlib``, ``from random import random as rnd``)
back to their dotted origins so rules can match call sites canonically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.devtools.config import (
    DIGEST_RECEIVER_FRAGMENTS,
    HASHLIB_CONSTRUCTORS,
    SINK_CALLEES,
    SINK_NAME_FRAGMENTS,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
LOOP_NODES = (ast.For, ast.While)
COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attr_chain_depth(node: ast.AST) -> int:
    """Number of Attribute hops above a Name base (0 when not a pure chain)."""
    depth = 0
    while isinstance(node, ast.Attribute):
        depth += 1
        node = node.value
    return depth if isinstance(node, ast.Name) else 0


class ImportMap:
    """Maps locally-bound names to the dotted origin they were imported as."""

    def __init__(self, tree: ast.Module) -> None:
        self.bound: Dict[str, str] = {}
        self.star_modules: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bound[local] = origin
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        self.star_modules.add(module)
                        continue
                    local = alias.asname or alias.name
                    origin = f"{module}.{alias.name}" if module else alias.name
                    self.bound[local] = origin

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite a call-site dotted name through the import bindings.

        ``from datetime import datetime as dt`` makes ``dt.now`` resolve to
        ``datetime.datetime.now``; an unimported base name passes through
        unchanged so ``self.foo`` stays ``self.foo``.
        """
        if dotted is None:
            return None
        base, _, rest = dotted.partition(".")
        origin = self.bound.get(base)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def is_set_expression(node: ast.AST, set_valued: Set[str]) -> bool:
    """True when ``node`` is syntactically set-valued.

    Covers set displays, ``set()``/``frozenset()`` calls, set comprehensions,
    set-algebra operators over set-valued operands, ``.keys()`` views are
    *not* included (dict order is insertion order, deterministic), and names
    recorded in ``set_valued`` by the enclosing function scan.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_valued
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            return is_set_expression(node.func.value, set_valued)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return is_set_expression(node.left, set_valued) or is_set_expression(
            node.right, set_valued
        )
    return False


def is_builtin_hash_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "hash"
    )


def sink_call_name(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """A human-readable sink description when ``node`` is a sink call."""
    dotted = imports.resolve(dotted_name(node.func))
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    lowered = last.lower()
    if dotted in SINK_CALLEES:
        return dotted
    if dotted.startswith("hashlib.") and last in HASHLIB_CONSTRUCTORS:
        return dotted
    if any(fragment in lowered for fragment in SINK_NAME_FRAGMENTS):
        return dotted
    if isinstance(node.func, ast.Attribute) and node.func.attr in ("update", "hexdigest"):
        receiver = dotted_name(node.func.value)
        if receiver is not None:
            receiver_last = receiver.rsplit(".", 1)[-1].lower()
            if any(fragment in receiver_last for fragment in DIGEST_RECEIVER_FRAGMENTS):
                return dotted
    return None


@dataclass
class FunctionFacts:
    """What one function-body scan learned (see module docstring)."""

    node: FunctionNode
    set_valued: Set[str] = field(default_factory=set)
    hash_valued: Set[str] = field(default_factory=set)
    sink_calls: List[Tuple[ast.Call, str]] = field(default_factory=list)

    @property
    def has_sink(self) -> bool:
        return bool(self.sink_calls)


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


#: Substring of a function name that puts it on the engine's lane fast path
#: (``_step_lanes``, ``lane_hook``, ``decode_record_lanes``, ...).
LANE_NAME_FRAGMENT = "lane"


def iter_lane_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Functions on the lane fast path, in any module.

    A function qualifies when its own name contains :data:`LANE_NAME_FRAGMENT`
    or when it is nested (at any depth) inside one that does — the fused
    closures a ``lane_hook()`` builder returns are the hottest code in the
    tree despite carrying short names like ``hook``.  Class bodies do not
    propagate the mark: ``LaneChunk.records`` is not a lane function merely
    for living on a lane-named class.
    """

    def walk(node: ast.AST, in_lane: bool) -> Iterator[FunctionNode]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lane = in_lane or LANE_NAME_FRAGMENT in child.name.lower()
                if lane:
                    yield child
                yield from walk(child, lane)
            else:
                yield from walk(child, in_lane)

    yield from walk(tree, False)


def scan_function(fn: FunctionNode, imports: ImportMap) -> FunctionFacts:
    """One pass over a function body collecting taint and sink facts."""
    facts = FunctionFacts(node=fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            value = node.value
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if targets:
                if is_set_expression(value, facts.set_valued):
                    facts.set_valued.update(targets)
                if is_builtin_hash_call(value):
                    facts.hash_valued.update(targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                if is_set_expression(node.value, facts.set_valued):
                    facts.set_valued.add(node.target.id)
                if is_builtin_hash_call(node.value):
                    facts.hash_valued.add(node.target.id)
        elif isinstance(node, ast.Call):
            sink = sink_call_name(node, imports)
            if sink is not None:
                facts.sink_calls.append((node, sink))
    return facts


def call_argument_names(node: ast.Call) -> Iterator[ast.AST]:
    for arg in node.args:
        yield arg
    for keyword in node.keywords:
        yield keyword.value


def loops_in(fn: FunctionNode) -> Iterator[Union[ast.For, ast.While]]:
    """Loop statements in ``fn``, excluding those in nested function defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, LOOP_NODES):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def loop_body_nodes(loop: Union[ast.For, ast.While]) -> Iterator[ast.AST]:
    """AST nodes in a loop body, excluding nested functions and nested loops'
    own reporting (nested loops are yielded by :func:`loops_in` separately —
    their bodies are still walked here because work in them repeats for the
    outer loop too; dedup happens on line numbers at report time)."""
    stack: List[ast.AST] = []
    for stmt in loop.body + (loop.orelse or []):
        stack.append(stmt)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
