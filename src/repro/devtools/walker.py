"""File walking, suppression collection, and rule dispatch.

The walker turns one source file into a :class:`FileReport`: it parses the
module, classifies it against the :class:`~repro.devtools.config.LintConfig`
(hot? env-allowlisted? result-producing?), runs every registered rule, and
applies per-line suppressions.

Suppression syntax (one comment, end of the offending line)::

    # repro: ignore[DET001] -- explicit seed is wired in by the caller
    # repro: ignore[HOT002,HOT003] -- cold slow path, clarity wins

The justification after ``--`` is mandatory: a suppression without one (or
naming an unknown rule) suppresses nothing and is itself reported as
``SUP001``.  A suppression whose rules never fire on its line is reported
as ``SUP002`` so stale tags cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.devtools import checks  # noqa: F401 - imported to populate RULES
from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.rules import (
    RULES,
    Finding,
    ModuleContext,
    expand_rule_tokens,
    family_of,
    is_known_rule_token,
)

SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[^\]]*)\](?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    line: int
    tokens: List[str]
    justification: str
    used: bool = False

    @property
    def active(self) -> bool:
        return bool(self.justification) and all(
            is_known_rule_token(token) for token in self.tokens
        )

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.tokens or family_of(rule_id) in self.tokens


@dataclass
class FileReport:
    """Findings for one file plus the source lines baselining needs."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def collect_suppressions(source: str) -> List[Suppression]:
    """All ``# repro: ignore[...]`` comments with their line numbers."""
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(tok.string)
            if match is None:
                continue
            rule_tokens = [t.strip() for t in match.group("rules").split(",") if t.strip()]
            suppressions.append(
                Suppression(
                    line=tok.start[0],
                    tokens=rule_tokens,
                    justification=(match.group("why") or "").strip(),
                )
            )
    except tokenize.TokenError:
        pass  # the AST parse reports the real problem as SYN001
    return suppressions


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
    package: str = "repro",
    select: Optional[Set[str]] = None,
) -> FileReport:
    """Lint one module's source; ``path`` doubles as the classification key."""
    relpath = path.replace("\\", "/")
    report = FileReport(path=path, lines=source.splitlines())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule="SYN001",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        )
        return report

    ctx = ModuleContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=report.lines,
        is_hot=config.is_hot(relpath),
        is_env_allowlisted=config.is_env_allowlisted(relpath),
        is_result_producing=config.is_result_producing(relpath),
        package=package,
    )

    raw: List[Finding] = []
    for rule_id in sorted(RULES):
        if select is not None and rule_id not in select:
            continue
        rule = RULES[rule_id]
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))

    suppressions = collect_suppressions(source)
    by_line: Dict[int, List[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)

    kept: List[Finding] = []
    for finding in raw:
        suppressed = False
        for sup in by_line.get(finding.line, ()):
            if sup.active and sup.covers(finding.rule):
                sup.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)

    for sup in suppressions:
        if not sup.active:
            if select is not None and "SUP001" not in select:
                continue
            reason = (
                "missing justification (use # repro: ignore[RULE] -- <why>)"
                if not sup.justification
                else "unknown rule " + ", ".join(
                    repr(t) for t in sup.tokens if not is_known_rule_token(t)
                )
            )
            kept.append(
                Finding(
                    rule="SUP001", path=path, line=sup.line, col=0,
                    message=f"ineffective suppression: {reason}",
                )
            )
        elif not sup.used:
            if select is not None and "SUP002" not in select:
                continue
            kept.append(
                Finding(
                    rule="SUP002", path=path, line=sup.line, col=0,
                    message=(
                        "suppression for "
                        + ",".join(sup.tokens)
                        + " matches no finding on this line; remove it"
                    ),
                )
            )

    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    report.findings = kept
    return report


def lint_file(
    path: Union[str, Path],
    config: LintConfig = DEFAULT_CONFIG,
    package: str = "repro",
    select: Optional[Set[str]] = None,
) -> FileReport:
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return FileReport(
            path=str(path),
            findings=[
                Finding(
                    rule="SYN001", path=str(path), line=1, col=0,
                    message=f"cannot read file: {exc}",
                )
            ],
        )
    return lint_source(source, str(path), config=config, package=package, select=select)


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            candidates: Iterable[Path] = sorted(entry_path.rglob("*.py"))
        else:
            candidates = [entry_path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def resolve_select(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Optional[Set[str]]:
    """Combine --select/--ignore tokens into a rule-ID set (None = all).

    Raises :class:`ValueError` on an unknown rule or family token.
    """
    chosen: Set[str] = set(RULES)
    if select:
        expanded = expand_rule_tokens(select)
        if expanded is None:
            raise ValueError(f"unknown rule in --select: {','.join(select)}")
        chosen = expanded
    if ignore:
        expanded = expand_rule_tokens(ignore)
        if expanded is None:
            raise ValueError(f"unknown rule in --ignore: {','.join(ignore)}")
        chosen -= expanded
    return chosen if chosen != set(RULES) else None
