"""Rule framework for the :mod:`repro.devtools` static analyzer.

A *rule* is a callable over one parsed module (:class:`ModuleContext`) that
yields :class:`Finding` objects.  Rules register themselves in :data:`RULES`
via the :func:`register` decorator; the walker runs every registered rule
whose :attr:`Rule.applies` predicate accepts the module.

Rule IDs are ``<FAMILY><3 digits>`` (``DET001``); suppressions may name
either the full ID or the bare family (``# repro: ignore[DET]``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RULES",
    "register",
    "all_rule_ids",
    "family_of",
    "is_known_rule_token",
]


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to a source line."""

    rule: str
    path: str  # path as given to the walker (repo-relative in CI)
    line: int  # 1-based
    col: int  # 0-based, as in the AST
    message: str

    def format_human(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module under analysis."""

    path: str  # display path (as passed on the command line)
    relpath: str  # path relative to the package root, '/'-separated
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: Module is on the hot-path list (HOT rules apply).
    is_hot: bool = False
    #: Module is the sanctioned ambient-environment accessor (ENV rules skip).
    is_env_allowlisted: bool = False
    #: Module feeds simulation results / cache keys (DET rules apply).
    is_result_producing: bool = True
    #: Top-level package name whose internal imports the IMP rule allows.
    package: str = "repro"

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``."""

    id: str = ""
    family: str = ""
    title: str = ""
    rationale: str = ""
    example_bad: str = ""
    example_fix: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Registry of every rule, keyed by rule ID.
RULES: Dict[str, Rule] = {}


def register(cls: Callable[[], Rule]):
    """Class decorator adding one rule instance to :data:`RULES`."""
    instance = cls()
    if not instance.id or not instance.family:
        raise ValueError(f"rule {cls.__name__} must define id and family")
    if instance.id in RULES:
        raise ValueError(f"duplicate rule id {instance.id}")
    RULES[instance.id] = instance
    return cls


def all_rule_ids() -> List[str]:
    return sorted(RULES)


def all_families() -> Set[str]:
    return {rule.family for rule in RULES.values()}


def family_of(rule_id: str) -> str:
    rule = RULES.get(rule_id)
    return rule.family if rule is not None else rule_id.rstrip("0123456789")


def is_known_rule_token(token: str) -> bool:
    """True when ``token`` names a registered rule ID or rule family."""
    return token in RULES or token in all_families()


def expand_rule_tokens(tokens: Iterable[str]) -> Optional[Set[str]]:
    """Expand IDs/families to a set of rule IDs; ``None`` on an unknown token."""
    expanded: Set[str] = set()
    for token in tokens:
        if token in RULES:
            expanded.add(token)
        elif token in all_families():
            expanded.update(rid for rid, rule in RULES.items() if rule.family == token)
        else:
            return None
    return expanded
