"""The registered rules.  See :mod:`repro.devtools` for the catalog.

Every rule here is deliberately *narrow*: the analyzer gates CI, so a rule
that cries wolf gets suppressed into noise.  Each one targets a pattern
that has a concrete failure mode in this repository (cross-process
nondeterminism breaking byte-identity, ambient state breaking cache keys,
third-party imports breaking the stdlib-only deployment story, per-record
overhead in the measured hot loops, broad excepts swallowing real bugs).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.devtools import dataflow
from repro.devtools.config import (
    BLOCKING_RECEIVER_FRAGMENTS,
    BLOCKING_RECV_METHODS,
    BLOCKING_RECV_PREFIXES,
    ENTROPY_CALLS,
    ENTROPY_MODULES,
    HOT_ATTR_CHAIN_DEPTH,
    UNSEEDED_RANDOM_FUNCTIONS,
    WALL_CLOCK_CALLS,
    stdlib_module_names,
)
from repro.devtools.rules import Finding, ModuleContext, Rule, register


def _resolved_calls(ctx: ModuleContext) -> Iterator[Tuple[ast.Call, str]]:
    """Every call in the module with its import-resolved dotted callee."""
    imports = dataflow.ImportMap(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = imports.resolve(dataflow.dotted_name(node.func))
            if dotted is not None:
                yield node, dotted


# --------------------------------------------------------------------------- #
# DET — determinism
# --------------------------------------------------------------------------- #
class _ResultModuleRule(Rule):
    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.is_result_producing


@register
class UnseededRandom(_ResultModuleRule):
    id = "DET001"
    family = "DET"
    title = "unseeded global RNG"
    rationale = (
        "The module-level random.* functions draw from an interpreter-global, "
        "time-seeded RNG; any result they touch differs run to run, which "
        "breaks golden-counter tests and poisons content-addressed cache keys."
    )
    example_bad = "jitter = random.random()"
    example_fix = "rng = random.Random(config.seed); jitter = rng.random()"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, dotted in _resolved_calls(ctx):
            module, _, func = dotted.rpartition(".")
            if module == "random" and func in UNSEEDED_RANDOM_FUNCTIONS:
                yield self.finding(
                    ctx, node,
                    f"call to the unseeded global RNG ({dotted}); "
                    "use an explicitly seeded random.Random instance",
                )
            elif dotted == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "random.Random() without a seed falls back to OS entropy; "
                    "pass an explicit seed",
                )


@register
class WallClockRead(_ResultModuleRule):
    id = "DET002"
    family = "DET"
    title = "wall-clock read"
    rationale = (
        "Wall-clock values (time.time, datetime.now) differ on every run; "
        "flowing one into a result, file payload, or cache key silently "
        "breaks byte-identical reproduction.  Monotonic/perf counters for "
        "duration display are fine and not flagged."
    )
    example_bad = "stamp = time.time()"
    example_fix = "pass timestamps in explicitly, or keep them out of results"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, dotted in _resolved_calls(ctx):
            if dotted in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read ({dotted}) in a result-producing module",
                )


@register
class AmbientEntropy(_ResultModuleRule):
    id = "DET003"
    family = "DET"
    title = "ambient entropy source"
    rationale = (
        "uuid1/uuid4, os.urandom, secrets.* and random.SystemRandom draw "
        "OS entropy that can never be replayed; nothing in a deterministic "
        "reproduction may depend on them."
    )
    example_bad = "token = uuid.uuid4().hex"
    example_fix = "derive identifiers from the (seeded) content being named"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, dotted in _resolved_calls(ctx):
            if dotted in ENTROPY_CALLS or dotted.split(".")[0] in ENTROPY_MODULES:
                yield self.finding(
                    ctx, node, f"ambient entropy source ({dotted})"
                )


@register
class BuiltinHashIntoDigest(_ResultModuleRule):
    id = "DET004"
    family = "DET"
    title = "builtin hash() feeding a digest"
    rationale = (
        "hash() over str/bytes is salted per process (PYTHONHASHSEED); a "
        "digest, fingerprint, or cache key derived from it differs across "
        "processes, so sweep workers stop sharing cache entries."
    )
    example_bad = "digest.update(str(hash(key)).encode())"
    example_fix = "use repro.core.pht.stable_hash or hash the encoded value"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = dataflow.ImportMap(ctx.tree)
        for fn in dataflow.iter_functions(ctx.tree):
            facts = dataflow.scan_function(fn, imports)
            if not facts.has_sink:
                continue
            for call, sink in facts.sink_calls:
                for arg in dataflow.call_argument_names(call):
                    tainted = self._tainted_use(arg, facts.hash_valued)
                    if tainted is not None:
                        yield self.finding(
                            ctx, tainted,
                            f"builtin hash() result flows into {sink}(); "
                            "builtin hash is process-salted — use a stable digest",
                        )
                        break

    @staticmethod
    def _tainted_use(node: ast.AST, hash_valued: Set[str]):
        for sub in ast.walk(node):
            if dataflow.is_builtin_hash_call(sub):
                return sub
            if isinstance(sub, ast.Name) and sub.id in hash_valued:
                return sub
        return None


@register
class UnorderedIterationIntoSink(_ResultModuleRule):
    id = "DET005"
    family = "DET"
    title = "unordered set iteration near a cache key / serialization"
    rationale = (
        "Set iteration order follows the process-salted string hash; in a "
        "function that builds a digest, cache key, or serialized payload, "
        "iterating a set unsorted makes the output order — and therefore "
        "the bytes — differ across processes."
    )
    example_bad = "for name in {a, b}: digest.update(name.encode())"
    example_fix = "for name in sorted({a, b}): digest.update(name.encode())"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = dataflow.ImportMap(ctx.tree)
        for fn in dataflow.iter_functions(ctx.tree):
            facts = dataflow.scan_function(fn, imports)
            if not facts.has_sink:
                continue
            seen: Set[Tuple[int, int]] = set()
            for node in ast.walk(fn):
                iters: List[ast.AST] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, dataflow.COMPREHENSION_NODES):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if dataflow.is_set_expression(it, facts.set_valued):
                        key = (node.lineno, node.col_offset)
                        if key not in seen:
                            seen.add(key)
                            yield self.finding(
                                ctx, node,
                                "unsorted set iteration in a function that "
                                "builds a digest/cache key/serialized payload; "
                                "wrap the iterable in sorted(...)",
                            )
            for call, sink in facts.sink_calls:
                for arg in dataflow.call_argument_names(call):
                    bad = self._unordered_argument(arg, facts.set_valued)
                    if bad is not None:
                        key = (bad.lineno, bad.col_offset)
                        if key not in seen:
                            seen.add(key)
                            yield self.finding(
                                ctx, bad,
                                f"set-valued expression passed to {sink}() "
                                "without sorted(...)",
                            )

    @staticmethod
    def _unordered_argument(node: ast.AST, set_valued: Set[str]):
        """A set-valued subexpression of ``node`` not shielded by sorted()."""
        if isinstance(node, ast.Call):
            callee = dataflow.dotted_name(node.func)
            if callee == "sorted":
                return None
        if dataflow.is_set_expression(node, set_valued):
            return node
        for child in ast.iter_child_nodes(node):
            found = UnorderedIterationIntoSink._unordered_argument(child, set_valued)
            if found is not None:
                return found
        return None


# --------------------------------------------------------------------------- #
# ENV — ambient environment access
# --------------------------------------------------------------------------- #
@register
class AmbientEnvironment(Rule):
    id = "ENV001"
    family = "ENV"
    title = "os.environ access outside repro._env"
    rationale = (
        "Ambient environment reads make behaviour depend on invisible state "
        "and break the scoped save/restore discipline; all access goes "
        "through repro._env (read/flag/export/scoped_env), the one audited "
        "allowlist module."
    )
    example_bad = 'enabled = os.environ.get("REPRO_TRACE_CACHE") == "1"'
    example_fix = 'from repro import _env; enabled = _env.flag("REPRO_TRACE_CACHE")'

    def applies(self, ctx: ModuleContext) -> bool:
        return not ctx.is_env_allowlisted

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = dataflow.ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            dotted = None
            if isinstance(node, ast.Attribute):
                dotted = imports.resolve(dataflow.dotted_name(node))
            elif isinstance(node, ast.Name):
                dotted = imports.resolve(node.id)
            if dotted == "os.environ":
                yield self.finding(
                    ctx, node,
                    "direct os.environ access; go through repro._env "
                    "(read/flag/export/scoped_env)",
                )
            elif isinstance(node, ast.Call):
                callee = imports.resolve(dataflow.dotted_name(node.func))
                if callee in ("os.getenv", "os.putenv", "os.unsetenv"):
                    yield self.finding(
                        ctx, node,
                        f"{callee}() bypasses repro._env; use _env.read/_env.scoped_env",
                    )


# --------------------------------------------------------------------------- #
# IMP — stdlib-only imports
# --------------------------------------------------------------------------- #
@register
class ThirdPartyImport(Rule):
    id = "IMP001"
    family = "IMP"
    title = "third-party import in a stdlib-only package"
    rationale = (
        "src/repro is deployable with a bare interpreter (the serve CI job "
        "proves it); a third-party import anywhere — even try/except-gated — "
        "adds an undeclared dependency and a divergent code path."
    )
    example_bad = "import numpy as np"
    example_fix = "use array/struct/math from the stdlib, or move the code out of src/repro"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed = stdlib_module_names()
        for node in ast.walk(ctx.tree):
            tops: List[str] = []
            if isinstance(node, ast.Import):
                tops = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and not node.level:
                tops = [(node.module or "").split(".")[0]]
            for top in tops:
                if top and top not in allowed and top != ctx.package:
                    yield self.finding(
                        ctx, node,
                        f"import of non-stdlib module {top!r} "
                        f"(package {ctx.package!r} is stdlib-only)",
                    )


# --------------------------------------------------------------------------- #
# HOT — hot-path discipline
# --------------------------------------------------------------------------- #
class _HotRule(Rule):
    """HOT rules cover every function of a hot module, plus lane functions
    (:func:`dataflow.iter_lane_functions`) wherever they live — the lane
    fast path spills into ``core/sms.py`` and ``trace/stream.py``, which are
    not hot modules wholesale."""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def hot_functions(self, ctx: ModuleContext):
        if ctx.is_hot:
            return dataflow.iter_functions(ctx.tree)
        return dataflow.iter_lane_functions(ctx.tree)


@register
class LoopAllocation(_HotRule):
    id = "HOT001"
    family = "HOT"
    title = "object construction inside a hot loop"
    rationale = (
        "Constructing class instances per record is the allocation cost the "
        "batch-lane work removes; in the tagged hot modules any constructor "
        "call inside a loop body must be hoisted or rewritten over flat "
        "lanes.  Exception constructors on raise statements are error paths "
        "and exempt."
    )
    example_bad = "for r in chunk: out.append(MemoryAccess(*r))"
    example_fix = "hoist construction out of the loop or use tuple.__new__ batches"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in self.hot_functions(ctx):
            seen: Set[Tuple[int, int]] = set()
            for loop in dataflow.loops_in(fn):
                raised: Set[int] = set()
                for node in dataflow.loop_body_nodes(loop):
                    if isinstance(node, ast.Raise) and node.exc is not None:
                        raised.update(id(sub) for sub in ast.walk(node.exc))
                for node in dataflow.loop_body_nodes(loop):
                    if not isinstance(node, ast.Call) or id(node) in raised:
                        continue
                    dotted = dataflow.dotted_name(node.func)
                    if dotted is None:
                        continue
                    last = dotted.rsplit(".", 1)[-1]
                    if last[:1].isupper():
                        key = (node.lineno, node.col_offset)
                        if key not in seen:
                            seen.add(key)
                            yield self.finding(
                                ctx, node,
                                f"constructor call {dotted}() inside a loop in a "
                                "hot module; hoist it or restructure over lanes",
                            )


@register
class LoopAttributeChain(_HotRule):
    id = "HOT002"
    family = "HOT"
    title = "deep attribute chain inside a hot loop"
    rationale = (
        "Each dot is a dict probe repeated every iteration; chains of "
        f"{HOT_ATTR_CHAIN_DEPTH}+ attributes in a hot loop body are loads "
        "the interpreter cannot cache — bind the target to a local before "
        "the loop."
    )
    example_bad = "for r in chunk: self.result.traffic.record(r)"
    example_fix = "record = self.result.traffic.record  # before the loop"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in self.hot_functions(ctx):
            seen: Set[Tuple[int, int]] = set()
            for loop in dataflow.loops_in(fn):
                value_children: Set[int] = set()
                chains: List[ast.Attribute] = []
                for node in dataflow.loop_body_nodes(loop):
                    if isinstance(node, ast.Attribute):
                        value_children.add(id(node.value))
                        chains.append(node)
                for node in chains:
                    if id(node) in value_children:
                        continue  # a longer chain subsumes this one
                    if dataflow.attr_chain_depth(node) >= HOT_ATTR_CHAIN_DEPTH:
                        key = (node.lineno, node.col_offset)
                        if key not in seen:
                            seen.add(key)
                            dotted = dataflow.dotted_name(node)
                            yield self.finding(
                                ctx, node,
                                f"attribute chain {dotted} re-resolved every "
                                "iteration; bind it to a local before the loop",
                            )


@register
class LoopTryExcept(_HotRule):
    id = "HOT003"
    family = "HOT"
    title = "try/except inside a hot loop"
    rationale = (
        "A try block inside the per-record loop adds setup cost on every "
        "iteration and hides the real control flow; hoist the try around "
        "the loop or pre-validate the batch."
    )
    example_bad = "for r in chunk:\n    try: step(r)\n    except KeyError: pass"
    example_fix = "validate before the loop, or wrap the whole loop in one try"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in self.hot_functions(ctx):
            seen: Set[Tuple[int, int]] = set()
            for loop in dataflow.loops_in(fn):
                for node in dataflow.loop_body_nodes(loop):
                    if isinstance(node, ast.Try):
                        key = (node.lineno, node.col_offset)
                        if key not in seen:
                            seen.add(key)
                            yield self.finding(
                                ctx, node,
                                "try statement inside a loop in a hot module; "
                                "hoist it around the loop",
                            )


#: Constructors whose call sites box one simulated record each — exactly the
#: allocation the lane decomposition removes.
BOXED_RECORD_CONSTRUCTORS = frozenset({"MemoryAccess"})

#: LaneChunk's sanctioned per-record escape hatches; calling them from a lane
#: function defeats the point of having lanes at all.
BOX_ESCAPE_METHODS = frozenset({"record", "records"})

#: Receiver-name substrings that mark the receiver as a lane chunk, so that
#: ``chunk.records()`` is a finding while ``self.result.traffic.record(x)``
#: (a stats call) is not.
BOX_RECEIVER_FRAGMENTS = ("chunk", "lane")


@register
class LaneBoxing(_HotRule):
    id = "HOT004"
    family = "HOT"
    title = "per-record boxing inside a lane-path function"
    rationale = (
        "Lane functions exist so the engine never materialises one object "
        "per record.  Calling the LaneChunk record()/records() escape "
        "hatches, or constructing MemoryAccess tuples (directly or via "
        "tuple.__new__) from lane data, reintroduces exactly the per-record "
        "allocation the fast path was built to remove — operate on the flat "
        "integer lanes, or hand the chunk to the boxed reference path."
    )
    example_bad = "def _step_lanes(...):\n    for r in chunk.records(): ..."
    example_fix = "for i in range(len(chunk)): use chunk.pc[i], chunk.address[i], ..."

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in dataflow.iter_lane_functions(ctx.tree):
            # Nested defs are lane functions in their own right (yielded
            # separately), so exclude their bodies here.
            stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.extend(ast.iter_child_nodes(node))
                if not isinstance(node, ast.Call):
                    continue
                dotted = dataflow.dotted_name(node.func)
                if dotted is None:
                    continue
                last = dotted.rsplit(".", 1)[-1]
                if isinstance(node.func, ast.Attribute) and last in BOX_ESCAPE_METHODS:
                    receiver = dataflow.dotted_name(node.func.value)
                    receiver_last = (receiver or "").rsplit(".", 1)[-1].lower()
                    if any(f in receiver_last for f in BOX_RECEIVER_FRAGMENTS):
                        yield self.finding(
                            ctx, node,
                            f"per-record boxing call .{last}() inside lane "
                            "function; stay on the flat lanes",
                        )
                elif last in BOXED_RECORD_CONSTRUCTORS or dotted == "tuple.__new__":
                    yield self.finding(
                        ctx, node,
                        f"boxed record construction {dotted}() inside lane "
                        "function; the lane path must not allocate records",
                    )


# --------------------------------------------------------------------------- #
# EXC — exception discipline
# --------------------------------------------------------------------------- #
@register
class BroadExcept(Rule):
    id = "EXC001"
    family = "EXC"
    title = "broad except without a justification tag"
    rationale = (
        "except Exception (or worse) swallows the very bugs the golden "
        "tests exist to surface.  Narrow it to the errors the block can "
        "actually raise; where broad really is correct (cleanup paths, "
        "crash isolation at a service boundary) say why on the line: "
        "# repro: ignore[EXC001] -- <why>."
    )
    example_bad = "except Exception:\n    pass"
    example_fix = "except (OSError, ValueError):  # or tag with a justification"

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(node.type)
            if label is not None:
                yield self.finding(
                    ctx, node,
                    f"broad except ({label}); narrow it to the expected "
                    "errors or justify with # repro: ignore[EXC001] -- <why>",
                )

    def _broad_label(self, type_node) -> "str | None":
        if type_node is None:
            return "bare except"
        names = []
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for sub in nodes:
            if isinstance(sub, ast.Name) and sub.id in self._BROAD:
                names.append(sub.id)
        return ", ".join(names) if names else None


# --------------------------------------------------------------------------- #
# ROB — service-layer robustness
# --------------------------------------------------------------------------- #
@register
class BlockingReceiveWithoutTimeout(Rule):
    id = "ROB001"
    family = "ROB"
    title = "blocking receive without a timeout in the service layer"
    rationale = (
        "A Queue.get / Connection.recv / socket accept with no deadline "
        "blocks forever when its peer dies; in repro.serve that wedges an "
        "executor thread, a dispatch path, or the whole shutdown sequence. "
        "Pass a timeout (or guard the recv with a timed poll); where "
        "unbounded blocking is the contract — an idle worker waiting for "
        "its next job under parent supervision — justify it in place: "
        "# repro: ignore[ROB001] -- <why>."
    )
    example_bad = "reply = handle.conn.recv()"
    example_fix = "if handle.conn.poll(deadline): reply = handle.conn.recv()"

    def applies(self, ctx: ModuleContext) -> bool:
        slashed = "/" + ctx.relpath
        return any(
            ctx.relpath.startswith(prefix) or ("/" + prefix) in slashed
            for prefix in BLOCKING_RECV_PREFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in BLOCKING_RECV_METHODS:
                continue
            receiver = (dataflow.dotted_name(node.func.value) or "").lower()
            if not any(frag in receiver for frag in BLOCKING_RECEIVER_FRAGMENTS):
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if method == "get" and len(node.args) >= 2:
                continue  # Queue.get(block, timeout): positional deadline
            yield self.finding(
                ctx, node,
                f"blocking .{method}() on {receiver or 'a queue/connection'} "
                "without a timeout; pass one, guard with a timed poll, or "
                "justify with # repro: ignore[ROB001] -- <why>",
            )


# --------------------------------------------------------------------------- #
# OBS — observability discipline
# --------------------------------------------------------------------------- #

#: Wall-clock sources whose differences masquerade as durations.
WALL_CLOCK_DURATION_SOURCES = frozenset({"time.time", "time.time_ns"})


@register
class WallClockDuration(Rule):
    id = "OBS001"
    family = "OBS"
    title = "duration measured with the wall clock"
    rationale = (
        "time.time() is subject to NTP slews and DST/admin step changes, so "
        "a time.time() delta is not a duration — metrics built on it go "
        "negative or jump by hours.  Durations come from time.perf_counter "
        "(or time.monotonic); see the repro.obs naming convention.  Applies "
        "everywhere, devtools included — DET002 already bans wall-clock in "
        "result-producing modules, this rule catches the measurement misuse "
        "in the rest."
    )
    example_bad = "start = time.time(); ...; elapsed = time.time() - start"
    example_fix = "start = time.perf_counter(); elapsed = time.perf_counter() - start"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = dataflow.ImportMap(ctx.tree)
        wall_named: Set[str] = set()
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            if targets and self._is_wall_read(node.value, imports):
                wall_named.update(
                    t.id for t in targets if isinstance(t, ast.Name)
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Sub):
                continue
            for side in (node.left, node.right):
                if self._is_wall_read(side, imports) or (
                    isinstance(side, ast.Name) and side.id in wall_named
                ):
                    yield self.finding(
                        ctx, node,
                        "duration computed from time.time(); wall-clock deltas "
                        "jump with NTP/DST — use time.perf_counter()",
                    )
                    break

    @staticmethod
    def _is_wall_read(node, imports: dataflow.ImportMap) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = imports.resolve(dataflow.dotted_name(node.func))
        return dotted in WALL_CLOCK_DURATION_SOURCES


@register
class RawClockPair(Rule):
    id = "OBS002"
    family = "OBS"
    title = "hand-rolled span: raw perf_counter start/stop pair"
    rationale = (
        "A bare start = time.perf_counter() ... delta measures a duration "
        "that goes nowhere the observability stack can see: it skips the "
        "repro_span_seconds histogram and never joins a trace.  Wrap the "
        "timed region in obs.span()/trace.span() instead, which record the "
        "same perf_counter delta *and* export it.  The instrumentation "
        "layer itself (repro/obs) is exempt — raw clock pairs are its job.  "
        "Where the numeric delta is genuinely needed in-line (a user-facing "
        "rate display), justify it: # repro: ignore[OBS002] -- <why>."
    )
    example_bad = "start = time.perf_counter(); ...; rate = n / (time.perf_counter() - start)"
    example_fix = "with obs.span('convert'): ...  # or trace.span() for request-scoped timing"

    def applies(self, ctx: ModuleContext) -> bool:
        slashed = "/" + ctx.relpath
        return not (ctx.relpath.startswith("obs/") or "/obs/" in slashed)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = dataflow.ImportMap(ctx.tree)
        assigns: Dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            if targets and self._is_perf_read(node.value, imports):
                for target in targets:
                    if isinstance(target, ast.Name):
                        assigns[target.id] = node
        flagged: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Sub):
                continue
            for side in (node.left, node.right):
                if not isinstance(side, ast.Name) or side.id not in assigns:
                    continue
                anchor = assigns[side.id]
                if id(anchor) in flagged:
                    continue
                flagged.add(id(anchor))
                # The finding anchors on the *assignment* line so one
                # justified ignore covers the whole start/stop pair.
                yield self.finding(
                    ctx, anchor,
                    f"raw perf_counter pair ({side.id} = time.perf_counter() "
                    "... delta); wrap the timed region in obs.span()/"
                    "trace.span(), or justify with # repro: ignore[OBS002] -- <why>",
                )
                break

    @staticmethod
    def _is_perf_read(node, imports: dataflow.ImportMap) -> bool:
        if not isinstance(node, ast.Call):
            return False
        return imports.resolve(dataflow.dotted_name(node.func)) == "time.perf_counter"


# --------------------------------------------------------------------------- #
# SUP / SYN — emitted by the walker, registered for the catalog
# --------------------------------------------------------------------------- #
class _WalkerEmitted(Rule):
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())


@register
class MalformedSuppression(_WalkerEmitted):
    id = "SUP001"
    family = "SUP"
    title = "suppression without justification (or unknown rule)"
    rationale = (
        "# repro: ignore[...] must name registered rules and carry a "
        "justification after ' -- '; an unexplained suppression is a "
        "finding in its own right and suppresses nothing."
    )
    example_bad = "except Exception:  # repro: ignore[EXC001]"
    example_fix = "except Exception:  # repro: ignore[EXC001] -- cleanup must not mask exit"


@register
class UnusedSuppression(_WalkerEmitted):
    id = "SUP002"
    family = "SUP"
    title = "suppression that suppresses nothing"
    rationale = (
        "A # repro: ignore[...] on a line where the named rule does not "
        "fire is stale documentation; remove it so real suppressions stay "
        "auditable."
    )
    example_bad = "x = 1  # repro: ignore[DET001] -- leftover"
    example_fix = "delete the stale comment"


@register
class UnparseableModule(_WalkerEmitted):
    id = "SYN001"
    family = "SYN"
    title = "module failed to parse"
    rationale = "A file the analyzer cannot parse cannot be certified clean."
    example_bad = "def f(:"
    example_fix = "fix the syntax error"
