"""Command-line driver: ``python -m repro.devtools.lint [paths...]``.

Exit codes are stable and scripted against in CI:

* ``0`` — no findings (or every finding is covered by the baseline);
* ``1`` — at least one new finding;
* ``2`` — usage or configuration error (bad path, unknown rule token,
  unreadable baseline).

Output is human-oriented by default (``path:line:col: RULE message``, one
per line, summary last) or machine-oriented with ``--format json`` — one
JSON object on stdout carrying every finding, counts per rule, and the
unused-baseline report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools import baseline as baseline_mod
from repro.devtools.rules import RULES
from repro.devtools.walker import discover_files, lint_file, resolve_select

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def default_target() -> str:
    """The installed ``repro`` package directory (lint ourselves by default)."""
    import repro

    return str(Path(repro.__file__).parent)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.devtools.lint",
        description=(
            "AST-based determinism / hot-path / fork-safety analyzer for the "
            "repro package (stdlib-only; see the repro.devtools docstring for "
            "the rule catalog)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human", dest="output_format"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{baseline_mod.DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the baseline instead of failing on them",
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated rule IDs/families to run"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule IDs/families to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _list_rules() -> int:
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        print(f"{rule_id}  {rule.title}")
        print(f"    {rule.rationale}")
    return EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()

    try:
        select = resolve_select(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    targets = args.paths or [default_target()]
    for target in targets:
        if not Path(target).exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return EXIT_USAGE
    files = discover_files(targets)
    if not files:
        print("error: no Python files under the given paths", file=sys.stderr)
        return EXIT_USAGE

    reports = [lint_file(path, select=select) for path in files]
    total = sum(len(report.findings) for report in reports)

    baseline_path = args.baseline
    if baseline_path is None and Path(baseline_mod.DEFAULT_BASELINE_NAME).is_file():
        baseline_path = baseline_mod.DEFAULT_BASELINE_NAME

    if args.write_baseline:
        out_path = baseline_path or baseline_mod.DEFAULT_BASELINE_NAME
        written = baseline_mod.save(out_path, reports)
        print(f"wrote {written} finding(s) to {out_path}")
        return EXIT_CLEAN

    baseline_counts = None
    if baseline_path is not None:
        try:
            baseline_counts = baseline_mod.load(baseline_path)
        except baseline_mod.BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if baseline_counts:
        new_findings, baselined, unused = baseline_mod.apply(reports, baseline_counts)
    else:
        new_findings = [f for report in reports for f in report.findings]
        baselined, unused = 0, []

    counts: dict = {}
    for finding in new_findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1

    if args.output_format == "json":
        payload = {
            "version": 1,
            "files": len(files),
            "findings": [f.as_dict() for f in new_findings],
            "counts": dict(sorted(counts.items())),
            "baselined": baselined,
            "unused_baseline": [
                {"rule": rule, "path": path, "content": content}
                for rule, path, content in unused
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in new_findings:
            print(finding.format_human())
        for rule, path, content in unused:
            print(
                f"note: unused baseline entry {rule} at {path}: {content!r}",
                file=sys.stderr,
            )
        summary = (
            f"{len(new_findings)} finding(s) in {len(files)} file(s)"
            if new_findings
            else f"clean: {len(files)} file(s), 0 finding(s)"
        )
        if baselined:
            summary += f" ({baselined} baselined)"
        print(summary)

    if new_findings:
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
