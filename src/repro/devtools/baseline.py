"""Committed baseline of grandfathered findings.

A baseline lets the linter gate CI from day one: pre-existing findings are
recorded once (``--write-baseline``) and matched on later runs, so only
*new* findings fail the build.  This repository ships an **empty** baseline
— every in-tree finding was fixed rather than grandfathered — but the
mechanism is part of the contract so future rules can land before their
cleanups do.

Entries are content-addressed, not line-addressed: a finding matches on
``(rule, path, stripped source line text)`` with a count, so unrelated
edits that shift line numbers do not invalidate the baseline, while any
edit to the offending line itself resurfaces the finding.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.devtools.rules import Finding
from repro.devtools.walker import FileReport

BASELINE_VERSION = 1

#: Default baseline file name, looked up in the current directory.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

Key = Tuple[str, str, str]  # (rule, path, stripped line text)


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def _key(finding: Finding, report: FileReport) -> Key:
    return (finding.rule, finding.path, report.line_text(finding.line))


def load(path: Union[str, Path]) -> Counter:
    """Load a baseline file into a key -> count multiset."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: expected a v{BASELINE_VERSION} baseline object"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a list")
    counts: Counter = Counter()
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("rule"), str)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("content"), str)
        ):
            raise BaselineError(f"baseline {path}: malformed entry {entry!r}")
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise BaselineError(f"baseline {path}: bad count in {entry!r}")
        counts[(entry["rule"], entry["path"], entry["content"])] += count
    return counts


def save(path: Union[str, Path], reports: List[FileReport]) -> int:
    """Write the findings in ``reports`` as the new baseline; return count."""
    counts: Counter = Counter()
    for report in reports:
        for finding in report.findings:
            counts[_key(finding, report)] += 1
    entries = [
        {"rule": rule, "path": rel, "content": content, "count": count}
        for (rule, rel, content), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sum(counts.values())


def apply(
    reports: List[FileReport], baseline: Counter
) -> Tuple[List[Finding], int, List[Key]]:
    """Split findings into (new, baselined_count, unused_entries).

    Matching consumes baseline counts greedily in report order, so N
    baselined occurrences admit exactly N matching findings and the N+1th
    is reported as new.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    baselined = 0
    for report in reports:
        for finding in report.findings:
            key = _key(finding, report)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                new.append(finding)
    unused = sorted(key for key, count in remaining.items() if count > 0)
    return new, baselined, unused
