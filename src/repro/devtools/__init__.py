"""Static analysis for the reproduction's correctness contracts.

``python -m repro.devtools.lint src/repro`` (or ``python -m repro.cli
lint``) runs a stdlib-only, AST-based analyzer over the package and fails
on any finding.  The rules are machine checks for invariants the rest of
the system silently depends on: byte-identical determinism (golden-counter
tests, the content-addressed sweep cache, serve-side request coalescing),
the stdlib-only deployment story, fork-safety of ambient state, and the
hot-loop allocation discipline.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.

Rule catalog
------------

**DET — determinism** (all result-producing modules, i.e. everything
outside ``devtools/``)

``DET001`` *unseeded global RNG.*  ``random.random()`` et al. draw from the
  time-seeded interpreter global; results differ run to run.
  Fix: a seeded ``random.Random(seed)`` instance.
  Example: ``jitter = random.random()`` → ``rng.random()``.

``DET002`` *wall-clock read.*  ``time.time`` / ``datetime.now`` /
  ``date.today`` values can leak into results or cache keys.  Monotonic and
  perf counters (duration display) are not flagged.

``DET003`` *ambient entropy.*  ``uuid.uuid1/uuid4``, ``os.urandom``,
  ``secrets.*``, ``random.SystemRandom`` can never be replayed.

``DET004`` *builtin hash() feeding a digest.*  ``hash()`` of str/bytes is
  salted per process (``PYTHONHASHSEED``); flowing it into a
  digest/fingerprint/cache-key sink desynchronizes sweep workers.
  Fix: ``repro.core.pht.stable_hash`` or hashing the encoded value.

``DET005`` *unordered set iteration near a serialization/cache-key sink.*
  Set iteration order follows the salted hash; in a function that builds a
  digest or serialized payload, iterate ``sorted(the_set)``.

**ENV — ambient environment** (everywhere except ``repro/_env.py``)

``ENV001`` *direct os.environ access.*  All environment access goes through
  :mod:`repro._env` (``read``/``flag``/``export``/``scoped_env``) so reads
  are auditable and writes are scoped-with-restore or explicit exports.

**IMP — stdlib-only imports**

``IMP001`` *third-party import.*  ``src/repro`` runs on a bare interpreter
  (the serve CI job deploys it with no installs); any non-stdlib,
  non-``repro`` import — even try/except-gated — is a finding.

**HOT — hot-path discipline** (every function of ``simulation/engine.py``,
``core/pht.py``, ``trace/binary.py``, plus *lane functions* — functions
whose name contains ``lane``, and closures nested in one — in any module:
the lane fast path spills into ``core/sms.py`` and ``trace/stream.py``)

``HOT001`` *object construction in a hot loop.*  Per-record constructor
  calls are the allocation cost the batch-lane work removes; hoist them.
  Exception constructors on ``raise`` (error paths) are exempt.

``HOT002`` *deep attribute chain in a hot loop.*  Chains of 3+ attributes
  (``self.result.traffic.record(...)``) re-resolve every iteration; bind a
  local before the loop.

``HOT003`` *try/except inside a hot loop.*  Hoist the ``try`` around the
  loop or pre-validate the batch.

``HOT004`` *per-record boxing inside a lane-path function.*  Calling the
  ``LaneChunk`` ``record()``/``records()`` escape hatches, or building
  ``MemoryAccess`` tuples (directly or via ``tuple.__new__``) from lane
  data, reintroduces the per-record allocation the lane path removes.

**EXC — exception discipline**

``EXC001`` *broad except without a justification tag.*  ``except
  Exception``/``BaseException``/bare ``except`` swallows the bugs the
  golden tests exist to catch.  Narrow it, or justify it in place (see
  below).

**ROB — service-layer robustness** (``serve/``)

``ROB001`` *blocking receive without a timeout.*  ``Queue.get()`` /
  ``Connection.recv()`` / socket ``accept()`` with no deadline blocks
  forever when the peer dies, wedging a dispatch thread or shutdown.
  Pass a timeout, guard with a timed ``poll``, or justify in place
  (an idle worker parked on its supervised pipe is the sanctioned case).

**OBS — observability** (everywhere, ``devtools/`` included)

``OBS001`` *duration measured with the wall clock.*  ``time.time()`` deltas
  are not durations — NTP slews and clock steps make them negative or
  hours long.  Metrics and timing spans use ``time.perf_counter`` (see the
  :mod:`repro.obs` naming convention).

**SUP / SYN — meta**

``SUP001`` malformed suppression (missing justification or unknown rule)
  — the suppression is ignored and reported.
``SUP002`` suppression on a line where the named rule does not fire.
``SYN001`` file does not parse / cannot be read.

Suppressing a finding
---------------------

Add, on the offending line::

    # repro: ignore[EXC001] -- cleanup must never mask the exit path

The rule list takes IDs or families (``ignore[HOT]``), and the
justification after ``--`` is required.  Findings can also be grandfathered
wholesale into a committed baseline (``--write-baseline``, see
:mod:`repro.devtools.baseline`); this repository's baseline is empty and
should stay that way.
"""

from repro.devtools.rules import RULES, Finding  # noqa: F401

__all__ = ["RULES", "Finding"]
