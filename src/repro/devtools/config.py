"""Configuration for the :mod:`repro.devtools` analyzer.

Everything path-shaped is matched against the module's path *relative to the
package root* with ``/`` separators (``core/pht.py``), so the same config
works for an installed package, a source checkout, and test fixtures.

The defaults encode this repository's contracts:

* hot modules — the batch-lane inner loops where per-record allocation and
  repeated deep attribute loads are measured regressions;
* the environment allowlist — :mod:`repro._env` is the one module allowed to
  touch ``os.environ`` (everything else goes through it, which is what makes
  the scoped save/restore and the worker export auditable);
* result-producing modules — DET rules apply everywhere except the analyzer
  itself, because every module here can sit upstream of a cache key.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

#: Modules whose inner loops are throughput-critical (HOT rules apply).
DEFAULT_HOT_MODULES: FrozenSet[str] = frozenset(
    {
        "simulation/engine.py",
        "core/pht.py",
        "trace/binary.py",
    }
)

#: The only modules allowed to read or write ``os.environ`` directly.
DEFAULT_ENV_ALLOWLIST: FrozenSet[str] = frozenset({"_env.py"})

#: Modules exempt from the DET family (not upstream of any result or cache
#: key).  The analyzer itself is the only exemption: timestamps or entropy
#: in devtools can never leak into simulation output.
DEFAULT_NON_RESULT_PREFIXES: Tuple[str, ...] = ("devtools/",)

#: Callee name fragments that mark a call as a digest / cache-key /
#: serialization sink for the DET taint rules.  Matched against the dotted
#: callee name's last segment (``dumps``) and the full dotted form
#: (``json.dumps``).
SINK_CALLEES: FrozenSet[str] = frozenset(
    {
        "json.dump",
        "json.dumps",
        "pickle.dump",
        "pickle.dumps",
        "marshal.dump",
        "marshal.dumps",
    }
)

#: Substrings of a (lowercased) function name that mark it as a sink in its
#: own right — our cache-key builders and fingerprint helpers.
SINK_NAME_FRAGMENTS: Tuple[str, ...] = (
    "fingerprint",
    "digest",
    "cache_key",
    "canonical",
    "stable_hash",
)

#: ``hashlib`` constructors (``hashlib.sha256(...)`` is a sink call).
HASHLIB_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"sha1", "sha224", "sha256", "sha384", "sha512", "md5", "blake2b", "blake2s",
     "sha3_224", "sha3_256", "sha3_384", "sha3_512", "shake_128", "shake_256", "new"}
)

#: Receiver-name substrings for which ``.update(...)`` / ``.hexdigest()``
#: counts as a digest sink (``digest.update(chunk)``).
DIGEST_RECEIVER_FRAGMENTS: Tuple[str, ...] = ("digest", "hash", "sha", "md5")

#: ``random`` module entry points that draw from the unseeded global RNG.
UNSEEDED_RANDOM_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "random", "randint", "randrange", "randbytes", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "seed",
    }
)

#: Wall-clock reads (monotonic/perf counters are fine: they measure
#: durations for display, they cannot reproduce across runs either way and
#: never feed results).
WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Ambient-entropy sources (DET003).
ENTROPY_CALLS: FrozenSet[str] = frozenset(
    {
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getrandom",
        "random.SystemRandom",
    }
)
ENTROPY_MODULES: FrozenSet[str] = frozenset({"secrets"})

#: Attribute-chain depth (number of dots) at which a loop-body load in a hot
#: module is reported.  ``self.result.traffic.record(...)`` has three.
HOT_ATTR_CHAIN_DEPTH: int = 3

#: Module prefixes where blocking receives must carry a timeout (ROB001):
#: the service layer, where one wedged ``recv`` parks an executor thread or
#: the whole worker-dispatch path forever.
BLOCKING_RECV_PREFIXES: Tuple[str, ...] = ("serve/",)

#: Methods that block without bound unless given a deadline.
BLOCKING_RECV_METHODS: FrozenSet[str] = frozenset(
    {"get", "recv", "recv_bytes", "accept"}
)

#: Receiver-name substrings marking the receiver as a queue/pipe/socket
#: (so ``reply.get("ok")`` on a dict is never confused with ``Queue.get()``).
BLOCKING_RECEIVER_FRAGMENTS: Tuple[str, ...] = (
    "conn", "queue", "sock", "pipe", "idle",
)


@dataclass(frozen=True)
class LintConfig:
    """Tunable classification used by the walker; tests build their own."""

    hot_modules: FrozenSet[str] = DEFAULT_HOT_MODULES
    env_allowlist: FrozenSet[str] = DEFAULT_ENV_ALLOWLIST
    non_result_prefixes: Tuple[str, ...] = DEFAULT_NON_RESULT_PREFIXES

    def is_hot(self, relpath: str) -> bool:
        return relpath in self.hot_modules or any(
            relpath.endswith("/" + suffix) for suffix in self.hot_modules
        )

    def is_env_allowlisted(self, relpath: str) -> bool:
        return relpath in self.env_allowlist or any(
            relpath.endswith("/" + suffix) for suffix in self.env_allowlist
        )

    def is_result_producing(self, relpath: str) -> bool:
        slashed = "/" + relpath
        return not any(
            relpath.startswith(prefix) or ("/" + prefix) in slashed
            for prefix in self.non_result_prefixes
        )


DEFAULT_CONFIG = LintConfig()


def stdlib_module_names() -> FrozenSet[str]:
    """Top-level stdlib module names for the running interpreter.

    ``sys.stdlib_module_names`` exists from Python 3.10; on 3.9 we fall back
    to a curated list that covers every stdlib module a ``repro`` module
    could plausibly import (the IMP rule only needs to classify imports that
    actually appear in the tree, and unknown names err on the side of a
    finding — exactly what a stdlib-only package wants).
    """
    names = getattr(sys, "stdlib_module_names", None)
    if names is not None:
        return frozenset(names)
    return _STDLIB_FALLBACK


_STDLIB_FALLBACK: FrozenSet[str] = frozenset(
    {
        "__future__", "abc", "aifc", "argparse", "array", "ast", "asyncio",
        "atexit", "base64", "bdb", "binascii", "bisect", "builtins", "bz2",
        "calendar", "cgi", "cgitb", "chunk", "cmath", "cmd", "code", "codecs",
        "codeop", "collections", "colorsys", "compileall", "concurrent",
        "configparser", "contextlib", "contextvars", "copy", "copyreg",
        "cProfile", "csv", "ctypes", "curses", "dataclasses", "datetime",
        "dbm", "decimal", "difflib", "dis", "distutils", "doctest", "email",
        "encodings", "ensurepip", "enum", "errno", "faulthandler", "fcntl",
        "filecmp", "fileinput", "fnmatch", "fractions", "ftplib", "functools",
        "gc", "getopt", "getpass", "gettext", "glob", "graphlib", "grp",
        "gzip", "hashlib", "heapq", "hmac", "html", "http", "idlelib",
        "imaplib", "imghdr", "imp", "importlib", "inspect", "io", "ipaddress",
        "itertools", "json", "keyword", "lib2to3", "linecache", "locale",
        "logging", "lzma", "mailbox", "mailcap", "marshal", "math",
        "mimetypes", "mmap", "modulefinder", "multiprocessing", "netrc",
        "nntplib", "ntpath", "numbers", "operator", "optparse", "os",
        "ossaudiodev", "pathlib", "pdb", "pickle", "pickletools", "pipes",
        "pkgutil", "platform", "plistlib", "poplib", "posix", "posixpath",
        "pprint", "profile", "pstats", "pty", "pwd", "py_compile", "pyclbr",
        "pydoc", "queue", "quopri", "random", "re", "readline", "reprlib",
        "resource", "rlcompleter", "runpy", "sched", "secrets", "select",
        "selectors", "shelve", "shlex", "shutil", "signal", "site", "smtplib",
        "sndhdr", "socket", "socketserver", "spwd", "sqlite3", "ssl", "stat",
        "statistics", "string", "stringprep", "struct", "subprocess", "sunau",
        "symtable", "sys", "sysconfig", "syslog", "tabnanny", "tarfile",
        "telnetlib", "tempfile", "termios", "test", "textwrap", "threading",
        "time", "timeit", "tkinter", "token", "tokenize", "trace",
        "traceback", "tracemalloc", "tty", "turtle", "turtledemo", "types",
        "typing", "unicodedata", "unittest", "urllib", "uu", "uuid", "venv",
        "warnings", "wave", "weakref", "webbrowser", "wsgiref", "xdrlib",
        "xml", "xmlrpc", "zipapp", "zipfile", "zipimport", "zlib", "zoneinfo",
    }
)
