"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is deliberately small and allocation-shy.  A metric *family*
is created once (``registry.counter(name, help, labels=(...))`` is
idempotent); each distinct label-value tuple materializes one *child*
holding the actual numbers.  Observations on a child are O(1) dict/array
operations under a per-child lock — no string formatting, no allocation —
so instrumented code can observe on warm paths and batch-flush from hot
ones (the engine flushes once per run, mirroring its per-chunk stat
tallies).

Children should be bound once and reused (``hist = H.labels("simulate")``)
on busy paths; ``labels()`` itself is a single dict lookup, so per-event
resolution is acceptable everywhere that is not a per-record loop.

Label cardinality is capped per family (``max_label_sets``, default
64).  Beyond the cap, observations collapse into a
shared overflow child whose every label value is ``"_other"`` — data is
aggregated, never silently dropped — and the family counts the collapsed
label sets (``dropped_label_sets`` in the JSON rendering).

Durations are measured with :func:`time.perf_counter` only; the registry
never reads the wall clock (rule ``OBS001``), so renderings carry no
timestamps and identical runs render identically.

``NullRegistry`` is the disabled form: every family it hands out is a
shared no-op, which is how ``REPRO_OBS=0`` turns instrumentation into a
few dead dict lookups for overhead measurement (see
``benchmarks/bench_throughput.py``).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "OVERFLOW_LABEL",
    "Registry",
    "NullRegistry",
    "MetricFamily",
    "Span",
]

#: Histogram bucket upper bounds (seconds) used when none are given:
#: request latencies from 1 ms to 1 min, plus the implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default cap on distinct label-value tuples per family.
DEFAULT_MAX_LABEL_SETS = 64

#: Label value every overflow child carries once the cap is hit.
OVERFLOW_LABEL = "_other"

_KINDS = ("counter", "gauge", "histogram")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Span:
    """Context manager timing a region into a histogram child.

    ``with histogram.labels("verb").time():`` — the elapsed
    :func:`time.perf_counter` interval is observed on exit, including the
    exceptional one, so error latencies are not invisible.
    """

    __slots__ = ("_sink", "_started")

    def __init__(self, sink: "_Child") -> None:
        self._sink = sink
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._sink.observe(time.perf_counter() - self._started)


class _Child:
    """One labeled time series.  The same class backs all three kinds;
    the family constrains which mutators its kind sanctions."""

    __slots__ = ("_lock", "_value", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Optional[Tuple[float, ...]] = None) -> None:
        self._lock = threading.Lock()
        self._value = 0
        self._bounds = bounds
        if bounds is not None:
            self._counts = [0] * (len(bounds) + 1)
            self._sum = 0.0
            self._count = 0

    # -- counter / gauge ------------------------------------------------ #
    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def sync_to(self, value: float) -> None:
        """Advance a mirrored counter to an externally maintained tally.

        For collectors that mirror pre-existing monotonic counts (the
        serve pool's crash/respawn tallies) without double-counting:
        the value only ever moves forward.
        """
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        return self._value

    # -- histogram ------------------------------------------------------ #
    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> Span:
        return Span(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def histogram_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        buckets: Dict[str, int] = {}
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, counts):
            cumulative += bucket_count
            buckets[_format_value(bound)] = cumulative
        buckets["+Inf"] = total
        return {"buckets": buckets, "count": total, "sum": acc}


class MetricFamily:
    """One named metric plus its labeled children."""

    __slots__ = (
        "name", "kind", "help", "label_names", "max_label_sets",
        "_buckets", "_children", "_lock", "dropped_label_sets",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be positive")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(str(label) for label in label_names)
        self.max_label_sets = max_label_sets
        if kind == "histogram":
            bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
            if not bounds:
                raise ValueError("histogram needs at least one bucket bound")
            self._buckets = bounds
        else:
            if buckets is not None:
                raise ValueError(f"{kind} metrics do not take buckets")
            self._buckets = None
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()
        self.dropped_label_sets = 0

    # ------------------------------------------------------------------ #
    def signature(self) -> Tuple[str, Tuple[str, ...], Optional[Tuple[float, ...]]]:
        return (self.kind, self.label_names, self._buckets)

    def labels(self, *values: Any) -> _Child:
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects {len(self.label_names)} label value(s) "
                f"({', '.join(self.label_names) or 'none'}), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_label_sets and key != self._overflow_key():
                self.dropped_label_sets += 1
                return self._overflow_child()
            child = _Child(self._buckets)
            self._children[key] = child
            return child

    def _overflow_key(self) -> Tuple[str, ...]:
        return (OVERFLOW_LABEL,) * len(self.label_names)

    def _overflow_child(self) -> _Child:
        # Called under self._lock.
        key = self._overflow_key()
        child = self._children.get(key)
        if child is None:
            child = _Child(self._buckets)
            self._children[key] = child
        return child

    # Convenience passthroughs for unlabeled families. ------------------ #
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def sync_to(self, value: float) -> None:
        self.labels().sync_to(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def time(self) -> Span:
        return self.labels().time()

    @property
    def value(self) -> float:
        return self.labels().value

    # ------------------------------------------------------------------ #
    def samples(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        with self._lock:
            return sorted(self._children.items())


class Registry:
    """A set of metric families plus collect-time hooks.

    ``counter``/``gauge``/``histogram`` are idempotent per name — calling
    twice with an identical signature returns the same family; a
    conflicting re-registration raises.  *Collectors* are zero-argument
    callables invoked just before every rendering, the hook gauges whose
    truth lives elsewhere (in-flight depth, pool occupancy, derived hit
    ratios) use to refresh themselves.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                candidate = MetricFamily(
                    name, kind, help_text, labels, buckets, max_label_sets
                )
                if existing.signature() != candidate.signature():
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"signature: {existing.signature()} vs {candidate.signature()}"
                    )
                return existing
            family = MetricFamily(name, kind, help_text, labels, buckets, max_label_sets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = (),
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> MetricFamily:
        return self._family(name, "counter", help_text, labels,
                            max_label_sets=max_label_sets)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = (),
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> MetricFamily:
        return self._family(name, "gauge", help_text, labels,
                            max_label_sets=max_label_sets)

    def histogram(
        self, name: str, help_text: str = "", labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help_text, labels,
                            buckets=buckets, max_label_sets=max_label_sets)

    # ------------------------------------------------------------------ #
    def add_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            self._collectors.append(collector)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:  # repro: ignore[EXC001] -- one broken collector must not take /metrics down with it
                continue

    # ------------------------------------------------------------------ #
    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4)."""
        self._collect()
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.samples():
                labels = _render_labels(family.label_names, key)
                if family.kind == "histogram":
                    snap = child.histogram_snapshot()
                    for bound, cumulative in snap["buckets"].items():
                        bucket_labels = _render_labels(
                            family.label_names + ("le",), key + (bound,)
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    lines.append(f"{family.name}_sum{labels} {_format_value(snap['sum'])}")
                    lines.append(f"{family.name}_count{labels} {snap['count']}")
                else:
                    lines.append(f"{family.name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def render_json(self) -> Dict[str, Any]:
        """The registry as one JSON-serializable dict (stable ordering)."""
        self._collect()
        metrics: Dict[str, Any] = {}
        for family in self.families():
            samples = []
            for key, child in family.samples():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    sample: Dict[str, Any] = {"labels": labels}
                    sample.update(child.histogram_snapshot())
                else:
                    sample = {"labels": labels, "value": child.value}
                samples.append(sample)
            metrics[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "dropped_label_sets": family.dropped_label_sets,
                "samples": samples,
            }
        return {"metrics": metrics}

    snapshot = render_json


def _render_labels(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _NullChild:
    """Shared no-op child: every mutator is a pass, every read a zero."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    dec = inc
    set = inc
    sync_to = inc
    observe = inc

    def labels(self, *values: Any) -> "_NullChild":
        return self

    def time(self) -> "_NullSpan":
        return _NULL_SPAN

    @property
    def value(self) -> float:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def histogram_snapshot(self) -> Dict[str, Any]:
        return {"buckets": {"+Inf": 0}, "count": 0, "sum": 0.0}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass


_NULL_CHILD = _NullChild()
_NULL_SPAN = _NullSpan()


class NullRegistry(Registry):
    """A registry whose metrics all discard their observations.

    Installed when ``REPRO_OBS=0``: call sites keep their exact code
    shape (so overhead can be measured as instrumented-vs-uninstrumented
    with no code difference) but every observation is a no-op.
    """

    def _family(self, name, kind, help_text, labels, buckets=None,
                max_label_sets=DEFAULT_MAX_LABEL_SETS):  # type: ignore[override]
        return _NULL_CHILD  # type: ignore[return-value]

    def add_collector(self, collector: Callable[[], None]) -> None:
        pass

    def render_prometheus(self) -> str:
        return "# metrics disabled (REPRO_OBS=0)\n"

    def render_json(self) -> Dict[str, Any]:
        return {"metrics": {}, "disabled": True}

    snapshot = render_json
