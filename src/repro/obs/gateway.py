"""Asyncio HTTP/JSON observability gateway.

A deliberately small HTTP/1.0-style server (stdlib only, ``GET`` only,
one response per connection) that runs on the same event loop as the
ndjson simulation service and exposes its runtime state:

``GET /metrics``
    The process metrics registry.  Prometheus text exposition format by
    default; JSON when the request says so (``?format=json`` or an
    ``Accept: application/json`` header).
``GET /healthz``
    Liveness: ``{"status": "ok", "uptime_seconds": ...}`` — cheap enough
    for a poll loop, no registry walk.
``GET /status``
    The same document the ndjson ``status`` verb returns, for HTTP-only
    clients (mirrors :meth:`repro.serve.server.SimulationServer.status`).

The gateway is scrape-grade, not internet-grade: it binds loopback by
default, caps the request head, answers exactly one request per
connection (``Connection: close``), and drops connections that go quiet
mid-request.  Anything fancier belongs behind a real reverse proxy.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs

__all__ = ["MetricsGateway"]

#: Upper bound on the request line + headers, bytes.
MAX_REQUEST_HEAD = 16 * 1024

#: Seconds a client may dawdle sending its request head.
REQUEST_TIMEOUT = 10.0

_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_TYPE = "application/json; charset=utf-8"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class _RequestError(Exception):
    """A bad request head, carrying the HTTP status it maps onto.

    Raised while parsing so :meth:`MetricsGateway._handle_connection` can
    answer with a proper status line (408 slow client, 431 oversized head,
    400 malformed) instead of silently dropping the connection — silent
    closes look like network faults to a scraper and hide misconfigured
    clients.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class MetricsGateway:
    """Serve the metrics registry (and an optional status document) over HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[Any] = None,
        status_provider: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._registry = registry
        self.status_provider = status_provider
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------ #
    @property
    def registry(self) -> Any:
        return self._registry if self._registry is not None else obs.get_registry()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=MAX_REQUEST_HEAD,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, headers = await asyncio.wait_for(
                    self._read_request_head(reader), REQUEST_TIMEOUT
                )
            except asyncio.TimeoutError:
                status, content_type, body = _json_reply(
                    408, {"error": "timed out reading request head"}
                )
            except _RequestError as exc:
                status, content_type, body = _json_reply(exc.status, {"error": str(exc)})
            except (ConnectionError, OSError):
                # The socket itself failed — there is no one to answer.
                writer.close()
                return
            else:
                status, content_type, body = self._respond(method, target, headers)
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            try:
                writer.write(head.encode("ascii") + body)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # scraper went away; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        """Parse ``(method, target, headers)`` up to the blank line.

        Raises :class:`_RequestError` with the right HTTP status: 431 when
        a line or the whole head busts :data:`MAX_REQUEST_HEAD` (asyncio's
        stream ``limit`` surfaces the former as ``ValueError``), 400 when
        the request line does not parse (including a request truncated
        before its target).
        """
        try:
            request_line = await reader.readline()
        except ValueError:
            raise _RequestError(431, "request line exceeds limit")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _RequestError(400, "malformed request line")
        consumed = len(request_line)
        headers: Dict[str, str] = {}
        while True:
            try:
                header = await reader.readline()
            except ValueError:
                raise _RequestError(431, "request head too large")
            consumed += len(header)
            if consumed > MAX_REQUEST_HEAD:
                raise _RequestError(431, "request head too large")
            if header in (b"\r\n", b"\n", b""):
                break
            name, sep, value = header.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return parts[0].upper(), parts[1], headers

    # ------------------------------------------------------------------ #
    def _respond(
        self, method: str, target: str, headers: Dict[str, str]
    ) -> Tuple[int, str, bytes]:
        """Route one request to ``(status, content_type, body)``."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if method != "GET":
            return _json_reply(405, {"error": f"method {method} not allowed"})
        try:
            if path == "/metrics":
                wants_json = (
                    query.get("format", [""])[0] == "json"
                    or "application/json" in headers.get("accept", "")
                )
                if wants_json:
                    return _json_reply(200, self.registry.render_json())
                return 200, _PROMETHEUS_TYPE, self.registry.render_prometheus().encode("utf-8")
            if path == "/healthz":
                return _json_reply(200, {
                    "status": "ok",
                    "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                    "metrics_enabled": obs.enabled() or self._registry is not None,
                })
            if path == "/status":
                if self.status_provider is None:
                    return _json_reply(404, {"error": "no status provider attached"})
                return _json_reply(200, self.status_provider())
        except Exception as exc:  # repro: ignore[EXC001] -- HTTP boundary: a 500 reply beats a dropped scrape
            return _json_reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        return _json_reply(404, {
            "error": f"no route for {path}",
            "routes": ["/metrics", "/metrics?format=json", "/healthz", "/status"],
        })


def _json_reply(status: int, payload: Dict[str, Any]) -> Tuple[int, str, bytes]:
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return status, _JSON_TYPE, body
