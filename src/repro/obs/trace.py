"""Structured tracing: request-scoped span trees across processes.

Where :mod:`repro.obs.registry` aggregates (*how many* requests, *what*
latency distribution), this module records causality: every traced request
becomes a tree of spans — ``trace_id``/``span_id``/``parent_id`` — whose
timing comes from :func:`time.perf_counter` and whose tree structure
survives process boundaries.  A span is created with the :func:`span`
context manager::

    with trace.span("sweep.point", {"key": key}) as sp:
        result = run_point()
        sp.set("outcome", "ok")

Sampling
--------

``REPRO_TRACE`` controls whether locally *originated* traces are recorded:

* ``off`` (default, also ``0``/``false``/``no``/empty) — :func:`span`
  returns a shared no-op span; nothing is buffered or written;
* ``on`` (also ``1``/``true``/``yes``) — every root span starts a trace;
* a float in ``(0, 1)`` — that fraction of root spans starts a trace,
  decided by a deterministic accumulator (no entropy: rule ``DET003``
  applies here like everywhere else), so ``0.25`` records exactly every
  fourth root.

Propagation is independent of local sampling: a span created under an
explicit remote parent (:func:`activate`, or ``parent=``) is always
recorded, because the sampling decision was made where the trace began —
the standard distributed-tracing contract.

Export
------

Finished spans buffer in a process-local collector and flush — grouped by
trace — to ``<cache>/traces/trace-<trace_id>.ndjson`` using the journal's
append discipline: one ``os.write`` to an ``O_APPEND`` descriptor per
flush, so concurrent writers (server, pool workers) interleave whole
records and a crash can only tear the final line.  :func:`load_trace_file`
applies the same torn-tail recovery as the sweep journal when reading.

Span ``start`` fields are raw :func:`time.perf_counter` readings and are
only comparable *within* one process; each record carries ``pid`` so a
renderer can re-anchor cross-process subtrees under their parent span
(see :mod:`repro.analysis.trace_report`).  No wall clock is recorded
anywhere — trace ids derive from :func:`time.monotonic_ns` and the pid.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import _env

__all__ = [
    "TRACE_ENV_VAR",
    "SpanContext",
    "TraceSpan",
    "span",
    "activate",
    "current",
    "sampling_rate",
    "tracing_enabled",
    "emit",
    "flush",
    "trace_dir",
    "trace_path",
    "load_trace_file",
    "list_trace_files",
]

#: Environment variable selecting the sampling mode (``off|on|<ratio>``).
TRACE_ENV_VAR = "REPRO_TRACE"

#: Buffered spans are force-flushed past this count even mid-trace, so a
#: long sweep's spans reach disk while it is still running.
FLUSH_THRESHOLD = 128

_OFF_VALUES = frozenset({"", "0", "off", "false", "no"})
_ON_VALUES = frozenset({"1", "on", "true", "yes"})


def sampling_rate() -> float:
    """The configured root-span sampling rate in ``[0.0, 1.0]``."""
    raw = (_env.read(TRACE_ENV_VAR) or "").strip().lower()
    if raw in _OFF_VALUES:
        return 0.0
    if raw in _ON_VALUES:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 0.0
    return min(max(rate, 0.0), 1.0)


def tracing_enabled() -> bool:
    """True when locally originated root spans can be recorded."""
    return sampling_rate() > 0.0


class SpanContext:
    """The propagated identity of a span: ``(trace_id, span_id)``.

    This is what crosses process boundaries — on the serve protocol's
    ``trace`` request/reply field and over the pool's worker pipe.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def as_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Any) -> Optional["SpanContext"]:
        """Parse a propagated context; ``None`` for anything malformed."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if isinstance(trace_id, str) and trace_id and isinstance(span_id, str) and span_id:
            return cls(trace_id, span_id)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


class _State(threading.local):
    def __init__(self) -> None:
        self.stack: List[Any] = []


_state = _State()
_lock = threading.Lock()
_buffer: List[dict] = []
_span_counter = 0
_sample_debt = 0.0
#: Set by :mod:`repro.obs` at import so finished spans also observe into
#: the ``repro_span_seconds`` metrics histogram (composition with the
#: registry's ``Span``).
_metrics_hook: Optional[Callable[[str, float], None]] = None


def _install_metrics_hook(hook: Callable[[str, float], None]) -> None:
    global _metrics_hook
    _metrics_hook = hook


def _next_span_id() -> str:
    global _span_counter
    with _lock:
        _span_counter += 1
        counter = _span_counter
    return f"{os.getpid():x}.{counter:x}"


def _new_trace_id() -> str:
    # monotonic_ns is strictly increasing within a boot and the pid
    # disambiguates concurrent processes — unique without OS entropy.
    return f"{os.getpid():x}-{time.monotonic_ns():x}"


def _should_sample() -> bool:
    rate = sampling_rate()
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    global _sample_debt
    with _lock:
        _sample_debt += rate
        if _sample_debt >= 1.0:
            _sample_debt -= 1.0
            return True
    return False


class TraceSpan:
    """One recorded node of a span tree; use via :func:`span`."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "status",
        "start",
        "duration",
        "_attached",
        "_local_root",
    )

    def __init__(self, name: str, trace_id: str, parent_id: Optional[str],
                 attrs: Optional[dict], attach: bool, local_root: bool) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _next_span_id()
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self.start = 0.0
        self.duration = 0.0
        self._attached = attach
        self._local_root = local_root

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def recording(self) -> bool:
        return True

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def mark_error(self, message: str = "") -> None:
        self.status = "error"
        if message:
            self.attrs["error"] = message

    def __enter__(self) -> "TraceSpan":
        if self._attached:
            _state.stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if self._attached:
            stack = _state.stack
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # pragma: no cover - unbalanced exit guard
                stack.remove(self)
        if exc_type is not None and self.status == "ok":
            self.mark_error(f"{exc_type.__name__}: {exc}")
        _collect(self._record(), flush_now=self._local_root)
        hook = _metrics_hook
        if hook is not None:
            hook(self.name, self.duration)
        return False

    def _record(self) -> dict:
        record = {
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": os.getpid(),
            "start": self.start,
            "dur": self.duration,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = _jsonable(self.attrs)
        return record


class _NullSpan:
    """Shared no-op span: the entire cost of tracing while sampled out."""

    __slots__ = ()

    context = None
    trace_id = None
    span_id = None
    status = "ok"

    @property
    def recording(self) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def mark_error(self, message: str = "") -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _RemoteAnchor:
    """Stack entry standing in for a parent span in another process."""

    __slots__ = ("context",)

    def __init__(self, context: SpanContext) -> None:
        self.context = context


def current() -> Optional[SpanContext]:
    """The ambient span context on this thread, if any."""
    stack = _state.stack
    return stack[-1].context if stack else None


def span(name: str, attrs: Optional[dict] = None,
         parent: Optional[SpanContext] = None, attach: bool = True,
         root: bool = True):
    """Open a span named ``name``.

    Parent resolution: an explicit ``parent`` context wins (and forces
    recording — propagation honours the originator's sampling decision);
    otherwise the ambient span on this thread is the parent; otherwise
    this is a root span and the ``REPRO_TRACE`` sampling decision applies.

    ``attach=False`` keeps the span off the thread's ambient stack — use
    it for spans held open across ``await`` points on an event loop,
    where concurrent tasks would otherwise interleave their stacks (pass
    ``parent=`` explicitly to children instead).

    ``root=False`` marks a span that only makes sense *inside* a trace
    (cache ops, journal appends): with no parent and no ambient context
    it is a no-op instead of starting a new single-span trace.
    """
    if parent is not None:
        return TraceSpan(name, parent.trace_id, parent.span_id, attrs,
                         attach, local_root=True)
    stack = _state.stack
    if stack:
        ctx = stack[-1].context
        local_root = isinstance(stack[-1], _RemoteAnchor)
        return TraceSpan(name, ctx.trace_id, ctx.span_id, attrs, attach,
                         local_root=local_root)
    if not root or not _should_sample():
        return _NULL_SPAN
    return TraceSpan(name, _new_trace_id(), None, attrs, attach,
                     local_root=True)


class activate:
    """Install a remote context as this thread's ambient parent::

        with trace.activate(ctx):
            execute_job()        # spans in here are children of ctx

    A ``None`` context is a no-op, so call sites need no conditionals.
    """

    __slots__ = ("_context", "_anchor")

    def __init__(self, context: Optional[SpanContext]) -> None:
        self._context = context
        self._anchor: Optional[_RemoteAnchor] = None

    def __enter__(self) -> Optional[SpanContext]:
        if self._context is not None:
            self._anchor = _RemoteAnchor(self._context)
            _state.stack.append(self._anchor)
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._anchor is not None:
            stack = _state.stack
            if stack and stack[-1] is self._anchor:
                stack.pop()
            elif self._anchor in stack:  # pragma: no cover
                stack.remove(self._anchor)
            self._anchor = None
        if self._context is not None:
            flush()
        return False


def emit(kind: str, parent: Optional[SpanContext], payload: dict) -> None:
    """Append a non-span record (e.g. ``telemetry``) to a trace's file.

    No-op when ``parent`` is ``None``, so instrumented code can emit
    unconditionally.
    """
    if parent is None:
        return
    record = dict(_jsonable(payload))
    record["kind"] = kind
    record["trace"] = parent.trace_id
    record["parent"] = parent.span_id
    record["pid"] = os.getpid()
    _collect(record, flush_now=False)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion so a span attr can never poison a flush."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _collect(record: dict, flush_now: bool) -> None:
    with _lock:
        _buffer.append(record)
        should_flush = flush_now or len(_buffer) >= FLUSH_THRESHOLD
    if should_flush:
        flush()


def flush() -> None:
    """Write all buffered records to their per-trace ndjson files.

    Called automatically when a local root span ends, when the buffer
    exceeds :data:`FLUSH_THRESHOLD`, and at interpreter exit.  Export is
    best-effort: an unwritable cache directory drops the batch rather
    than failing the traced operation.
    """
    with _lock:
        if not _buffer:
            return
        batch, _buffer[:] = list(_buffer), []
    by_trace: Dict[str, List[dict]] = {}
    for record in batch:
        by_trace.setdefault(record.get("trace", "unknown"), []).append(record)
    for trace_id, records in sorted(by_trace.items()):
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode("utf-8")
        path = trace_path(trace_id)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
        except OSError:
            pass


atexit.register(flush)


# --------------------------------------------------------------------------- #
# Trace files
# --------------------------------------------------------------------------- #
def trace_dir() -> Path:
    """``<cache>/traces`` — shared with the binary trace cache (distinct
    suffixes: span files are ``trace-*.ndjson``, cached traces ``*.strc``)."""
    from repro.simulation.result_cache import TRACES_SUBDIR, default_cache_dir

    return default_cache_dir() / TRACES_SUBDIR


def trace_path(trace_id: str) -> Path:
    safe = "".join(ch for ch in trace_id if ch.isalnum() or ch in "-._")
    return trace_dir() / f"trace-{safe}.ndjson"


def list_trace_files(directory: Optional[Path] = None) -> List[Path]:
    """Span files under ``directory`` (default: the cache trace dir),
    newest last."""
    base = Path(directory) if directory is not None else trace_dir()
    if not base.is_dir():
        return []
    files = [path for path in base.glob("trace-*.ndjson") if path.is_file()]
    files.sort(key=lambda path: (path.stat().st_mtime, path.name))
    return files


def _parse_line(line: str) -> Optional[dict]:
    """Parse one ndjson line, recovering from a torn tail.

    Same discipline as the sweep journal: if a crash tore the final
    append, the damage is a partial line, possibly fused with the start
    of a later record — retry the parse from each subsequent ``{``.
    """
    text = line.strip()
    while text:
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            brace = text.find("{", 1)
            if brace < 0:
                return None
            text = text[brace:]
            continue
        return record if isinstance(record, dict) else None
    return None


def load_trace_file(path: Path) -> List[dict]:
    """All parseable records in ``path``; torn/foreign lines are skipped."""
    try:
        content = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return []
    records: List[dict] = []
    for line in content.splitlines():
        record = _parse_line(line)
        if record is not None:
            records.append(record)
    return records


def iter_spans(records: List[dict]) -> Iterator[dict]:
    """Just the ``kind == "span"`` records of a loaded trace file."""
    for record in records:
        if record.get("kind") == "span":
            yield record
