"""Production observability: metrics registry, spans, and the HTTP gateway.

``repro.obs`` is the cross-cutting instrumentation layer.  Every other
subsystem records into one process-wide registry (counters, gauges,
fixed-bucket latency histograms — see :mod:`repro.obs.registry`), and the
asyncio HTTP gateway (:mod:`repro.obs.gateway`, ``repro.cli serve --http
PORT``) exposes it as ``GET /metrics`` in both the Prometheus text format
and JSON, next to ``/healthz`` and ``/status``.

Quick use::

    from repro import obs

    REQUESTS = obs.counter(
        "repro_serve_requests_total", "Requests by verb.", labels=("verb",))
    LATENCY = obs.histogram(
        "repro_serve_request_seconds", "Request latency.", labels=("verb",))

    REQUESTS.labels("simulate").inc()
    with LATENCY.labels("simulate").time():
        handle()

Metric naming convention
------------------------

All metric names are ``repro_<subsystem>_<noun>[_<unit>]`` in
``snake_case``:

* the ``repro_`` prefix namespaces the package in any shared scrape;
* ``<subsystem>`` is the owning module family: ``serve``, ``cache``,
  ``sweep``, ``engine``, ``span``;
* counters end in ``_total`` and only ever go up;
* anything holding a duration ends in ``_seconds`` (histograms observe
  :func:`time.perf_counter` intervals — never wall-clock deltas, which is
  rule ``OBS001`` in :mod:`repro.devtools`);
* gauges carry no unit suffix and report a current level (``
  repro_serve_inflight``), refreshed by a *collector* at scrape time;
* bounded enumerations ride in labels (``verb=``, ``outcome=``,
  ``cache=``, ``op=``, ``path=``), never in the metric name, and label
  values must be from a small fixed set — unbounded values trip the
  per-family cardinality cap and collapse into ``_other``.

The registry is per process.  Forked sweep/serve workers inherit a copy
at fork time and count into it privately; the numbers served by the
gateway are the front-end process's own (pool-wide execution tallies
reach it through ``WorkerPool.stats()`` mirroring, not through shared
memory).

``REPRO_OBS=0`` disables the whole layer: the module installs a
:class:`~repro.obs.registry.NullRegistry` and every observation becomes a
no-op with the call shape unchanged, which is how
``benchmarks/bench_throughput.py`` measures instrumented-vs-uninstrumented
engine overhead.

Structured tracing (:mod:`repro.obs.trace`, ``REPRO_TRACE=off|on|ratio``)
is the causal complement to this aggregate layer: request-scoped span
*trees* that cross the serve protocol and the pool fork boundary.  A
finished trace span also observes into ``repro_span_seconds``, so the
two layers always agree.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import _env
from repro.obs import trace
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    OVERFLOW_LABEL,
    MetricFamily,
    NullRegistry,
    Registry,
    Span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "OVERFLOW_LABEL",
    "MetricFamily",
    "NullRegistry",
    "Registry",
    "Span",
    "trace",
    "counter",
    "gauge",
    "histogram",
    "span",
    "note_cache_op",
    "add_collector",
    "get_registry",
    "install_registry",
    "enabled",
    "render_prometheus",
    "render_json",
]

#: Environment variable disabling instrumentation when set to ``0``.
OBS_ENV_VAR = "REPRO_OBS"


def _initial_registry() -> Registry:
    if _env.read(OBS_ENV_VAR, "1") in ("0", "false", "off", "no"):
        return NullRegistry()
    return Registry()


_active: Registry = _initial_registry()


def get_registry() -> Registry:
    """The process-wide active registry."""
    return _active


def install_registry(registry: Registry) -> Registry:
    """Swap the active registry; returns the previous one for restore.

    Instrumented code resolves families through the module functions at
    observation/creation time, so a swap takes effect for everything
    constructed afterwards (tests install a fresh registry, run a
    scenario, and restore).
    """
    global _active
    previous = _active
    _active = registry
    return previous


def enabled() -> bool:
    """False when the active registry discards observations."""
    return not isinstance(_active, NullRegistry)


def counter(name: str, help_text: str = "", labels: Sequence[str] = (),
            max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> MetricFamily:
    return _active.counter(name, help_text, labels, max_label_sets=max_label_sets)


def gauge(name: str, help_text: str = "", labels: Sequence[str] = (),
          max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> MetricFamily:
    return _active.gauge(name, help_text, labels, max_label_sets=max_label_sets)


def histogram(name: str, help_text: str = "", labels: Sequence[str] = (),
              buckets: Optional[Sequence[float]] = None,
              max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> MetricFamily:
    return _active.histogram(name, help_text, labels, buckets=buckets,
                             max_label_sets=max_label_sets)


def span(name: str) -> Span:
    """Time a region into ``repro_span_seconds{span="<name>"}``::

        with obs.span("fig10.sweep"):
            run_sweep(...)
    """
    family = _active.histogram(
        "repro_span_seconds", "Duration of instrumented spans.", labels=("span",)
    )
    return family.labels(name).time()


def _observe_span_seconds(name: str, seconds: float) -> None:
    _active.histogram(
        "repro_span_seconds", "Duration of instrumented spans.", labels=("span",)
    ).labels(name).observe(seconds)


# Trace spans compose with the metrics Span: every finished TraceSpan also
# lands in the repro_span_seconds histogram through this hook.
trace._install_metrics_hook(_observe_span_seconds)


def note_cache_op(cache: str, *ops: str) -> None:
    """Count cache operations and refresh the derived hit-ratio gauge.

    ``cache`` is the cache kind (``"sweep"``, ``"trace"``); each ``op`` is
    one of ``hit``/``miss``/``store``/``skip``/``error``/``quarantine``/
    ``prune``.  The ``repro_cache_hit_ratio`` gauge is recomputed from the
    process-wide hit/miss tallies whenever a lookup outcome lands, so the
    ratio is always consistent with the counters it derives from.
    """
    family = _active.counter(
        "repro_cache_ops_total",
        "Cache operations by cache kind and op "
        "(hit/miss/store/skip/error/quarantine/prune).",
        labels=("cache", "op"),
    )
    for op in ops:
        family.labels(cache, op).inc()
    hits = family.labels(cache, "hit").value
    lookups = hits + family.labels(cache, "miss").value
    if lookups:
        _active.gauge(
            "repro_cache_hit_ratio",
            "Derived hits / (hits + misses), per cache kind.",
            labels=("cache",),
        ).labels(cache).set(round(hits / lookups, 6))


def add_collector(collector) -> None:
    _active.add_collector(collector)


def render_prometheus() -> str:
    return _active.render_prometheus()


def render_json() -> dict:
    return _active.render_json()
