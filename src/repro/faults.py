"""Deterministic fault injection for the fault-tolerance layer.

Every robustness claim in this repository — resumable sweeps, worker
respawn, cache quarantine — is tested against *injected* faults, and an
injected fault must be as reproducible as a simulation result.  This module
provides seeded-by-construction fault *plans*: a plan names the injection
sites that misbehave, the kind of misbehaviour, and the exact occurrences
(1-based hit counts per site, counted per process) on which it fires.
Nothing here draws entropy or reads a clock; the same plan against the same
workload fails at exactly the same points, run after run.

Plans are activated two ways:

* programmatically, with :func:`install_plan` (tests, chaos drills); or
* ambiently, through the ``REPRO_FAULTS`` environment variable (read via
  :mod:`repro._env`), which forked sweep and serve workers inherit — the
  one channel that reaches a worker that was spawned before the test
  existed.

Plan syntax (``;``-separated entries)::

    site:kind@when[:param=value[,param=value...]]

    REPRO_FAULTS="pool.worker:crash@2"          # 2nd pool job kills its worker
    REPRO_FAULTS="sweep.point:crash@3"          # 3rd sweep point kills the process
    REPRO_FAULTS="cache.put:torn@1;pool.worker:hang@2:seconds=60"

``when`` selects occurrences: ``*`` (every hit), ``3`` (the 3rd), ``2,5``
(a list), or ``3+`` (the 3rd onward).  Each process counts its own hits
per site, so "the worker's 2nd job" and "the parent's 2nd point" are
distinct, deterministic events.

Fault kinds
-----------

``crash``
    ``os._exit(code)`` — the process dies as if SIGKILLed, mid-task, with
    no cleanup (param ``code``, default 137).
``hang``
    Sleep for ``seconds`` (default 3600) — a wedged task, for exercising
    deadlines.  The sleeping process still dies on SIGTERM.
``error``
    Raise :class:`InjectedFault` — a task failure without a process death.
``disconnect``
    Raise :class:`ConnectionResetError` — a dropped connection (an
    ``OSError``, so transport error paths handle it).
``enospc``
    Raise ``OSError(ENOSPC)`` — disk full at a write site.
``torn`` / ``flip``
    Byte-level write faults with no generic action: the write site passes
    its payload through :func:`mangle`, which truncates it mid-payload
    (``torn``) or corrupts one byte (``flip``, param ``offset``).

Sites wired in this package: ``sweep.point`` (per sweep-task execution,
parent or sweep worker), ``pool.worker`` (per job in a serve pool worker),
``cache.put`` (sweep result cache writes), ``journal.append`` (sweep
journal lines), ``client.send`` (serve client requests).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro import _env

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "check",
    "fire",
    "install_plan",
    "mangle",
]

#: Environment variable carrying the ambient fault plan (inherited by
#: forked workers; empty/unset means no faults).
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds with a generic action (:func:`act`); ``torn``/``flip`` are
#: byte-mangling kinds the write site applies itself via :func:`mangle`.
ACTING_KINDS = ("crash", "hang", "error", "disconnect", "enospc")
MANGLING_KINDS = ("torn", "flip")


class InjectedFault(RuntimeError):
    """The error raised by an ``error``-kind fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One plan entry: fire ``kind`` at ``site`` on selected occurrences."""

    site: str
    kind: str
    #: Explicit 1-based occurrence numbers (empty with ``every``/``after``).
    occurrences: Tuple[int, ...] = ()
    #: Fire on every occurrence (``@*``).
    every: bool = False
    #: Fire from this occurrence onward (``@3+``), 0 = disabled.
    after: int = 0
    params: Mapping[str, str] = field(default_factory=dict)

    def fires_on(self, occurrence: int) -> bool:
        if self.every:
            return True
        if self.after and occurrence >= self.after:
            return True
        return occurrence in self.occurrences

    def param(self, name: str, default: str) -> str:
        return self.params.get(name, default)


class FaultPlan:
    """A parsed set of :class:`FaultSpec` entries plus per-site hit counters.

    Counters live on the plan instance and count hits *in this process*;
    a forked child starts from a copy of the parent's counts, so plans
    aimed at worker-side sites should use sites the parent never hits.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...], text: str = "") -> None:
        self.specs = specs
        self.text = text
        self._counts: Dict[str, int] = {}

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``site:kind@when[:k=v,...]`` plan syntax (see module doc)."""
        specs = []
        for raw_entry in text.split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            specs.append(_parse_entry(entry))
        return cls(tuple(specs), text=text)

    def hit(self, site: str) -> Optional[FaultSpec]:
        """Count one hit of ``site``; return the spec that fires, if any."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for spec in self.specs:
            if spec.site == site and spec.fires_on(count):
                return spec
        return None

    def counts(self) -> Dict[str, int]:
        """Per-site hit counts so far (for assertions and reports)."""
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"FaultPlan({self.text!r})"


def _parse_entry(entry: str) -> FaultSpec:
    site, sep, kind_when = entry.partition(":")
    if not sep or not site:
        raise ValueError(f"fault entry {entry!r} is not site:kind@when")
    kind_when, _, param_text = kind_when.partition(":")
    kind, _, when = kind_when.partition("@")
    kind = kind.strip()
    if kind not in ACTING_KINDS + MANGLING_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} in {entry!r}; "
            f"choose from {sorted(ACTING_KINDS + MANGLING_KINDS)}"
        )
    occurrences: Tuple[int, ...] = ()
    every = False
    after = 0
    when = when.strip() or "1"
    if when == "*":
        every = True
    elif when.endswith("+"):
        after = _parse_occurrence(when[:-1], entry)
    else:
        occurrences = tuple(
            _parse_occurrence(part, entry) for part in when.split(",") if part.strip()
        )
    params: Dict[str, str] = {}
    if param_text:
        for pair in param_text.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise ValueError(f"fault param {pair!r} in {entry!r} is not key=value")
            params[key.strip()] = value.strip()
    return FaultSpec(
        site=site.strip(), kind=kind, occurrences=occurrences,
        every=every, after=after, params=params,
    )


def _parse_occurrence(text: str, entry: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise ValueError(f"bad occurrence {text!r} in fault entry {entry!r}") from exc
    if value < 1:
        raise ValueError(f"occurrences are 1-based, got {value} in {entry!r}")
    return value


# --------------------------------------------------------------------------- #
# Plan activation
# --------------------------------------------------------------------------- #
#: Sentinel distinguishing "never installed" from "explicitly disabled".
_PLAN_UNSET = object()
_installed_plan = _PLAN_UNSET
#: Cache of the env-activated plan, keyed by the raw env string so the same
#: string keeps one plan instance (and therefore one set of counters) per
#: process, while a changed env (tests using scoped_env) re-parses.
_env_plan_text: Optional[str] = None
_env_plan: Optional[FaultPlan] = None


def install_plan(plan) -> object:
    """Install ``plan`` (a :class:`FaultPlan`, plan string, or ``None``).

    ``None`` disables fault injection regardless of the environment.
    Returns an opaque token; pass it back to restore the previous state
    (including "never installed", which re-enables env activation)::

        previous = faults.install_plan("cache.put:torn@1")
        try:
            ...
        finally:
            faults.install_plan(previous)
    """
    global _installed_plan
    previous = _installed_plan
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _installed_plan = plan
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else the ``REPRO_FAULTS`` env plan, else ``None``."""
    global _env_plan_text, _env_plan
    if _installed_plan is not _PLAN_UNSET:
        return _installed_plan  # type: ignore[return-value]
    text = _env.read(FAULTS_ENV) or ""
    if not text:
        return None
    if text != _env_plan_text:
        _env_plan_text = text
        _env_plan = FaultPlan.parse(text)
    return _env_plan


# --------------------------------------------------------------------------- #
# Injection-site API
# --------------------------------------------------------------------------- #
def check(site: str) -> Optional[FaultSpec]:
    """Count one hit of ``site`` against the active plan; no action taken.

    Write sites use this to obtain ``torn``/``flip`` specs for
    :func:`mangle`; for self-acting kinds, call :func:`act` on the result
    (or use :func:`fire`, which does both).
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.hit(site)


def fire(site: str) -> None:
    """Count one hit of ``site`` and perform the fired fault's action."""
    spec = check(site)
    if spec is not None:
        act(spec)


def act(spec: FaultSpec) -> None:
    """Perform the generic action of a fired spec (see module doc)."""
    if spec.kind == "crash":
        os._exit(int(spec.param("code", "137")))
    if spec.kind == "hang":
        time.sleep(float(spec.param("seconds", "3600")))
        return
    if spec.kind == "error":
        raise InjectedFault(f"injected fault at {spec.site}")
    if spec.kind == "disconnect":
        raise ConnectionResetError(f"injected disconnect at {spec.site}")
    if spec.kind == "enospc":
        import errno

        raise OSError(errno.ENOSPC, f"injected ENOSPC at {spec.site}")
    # torn/flip have no generic action; the write site applies mangle().


def mangle(spec: FaultSpec, data: bytes) -> bytes:
    """Apply a byte-level write fault: truncate (``torn``) or corrupt (``flip``)."""
    if spec.kind == "torn":
        return data[: max(1, len(data) // 2)]
    if spec.kind == "flip":
        if not data:
            return data
        offset = int(spec.param("offset", str(len(data) // 2)))
        offset = min(max(offset, 0), len(data) - 1)
        corrupted = bytearray(data)
        corrupted[offset] ^= 0xFF
        return bytes(corrupted)
    return data
