"""Spatial Memory Streaming — the paper's primary contribution.

The public surface of this package mirrors the two hardware structures of the
design (Section 3):

* the :class:`~repro.core.agt.ActiveGenerationTable` (filter table +
  accumulation table) observes L1 accesses and records spatial patterns over
  the course of each spatial region generation; and
* the :class:`~repro.core.pht.PatternHistoryTable` stores previously observed
  patterns, indexed by a configurable prediction index (PC+offset by
  default), and is consulted at each trigger access to predict and stream the
  blocks of the new generation.

:class:`~repro.core.sms.SpatialMemoryStreaming` ties the two together behind
the generic :class:`repro.prefetch.base.Prefetcher` interface so the
simulation engine can swap SMS, GHB, and the oracle predictor freely.
"""

from repro.core.config import SMSConfig
from repro.core.region import RegionGeometry
from repro.core.pattern import SpatialPattern
from repro.core.indexing import (
    AddressIndex,
    IndexScheme,
    PCAddressIndex,
    PCIndex,
    PCOffsetIndex,
    make_index_scheme,
)
from repro.core.agt import ActiveGenerationTable, AGTEvent, GenerationRecord
from repro.core.pht import (
    PHT_BACKENDS,
    ArrayBackend,
    DictBackend,
    MmapBackend,
    PatternHistoryTable,
    PHTBackend,
    ShardedPHT,
    make_pht_store,
    stable_hash,
)
from repro.core.prediction import PredictionRegisterFile, StreamRequest
from repro.core.training import (
    AGTTrainer,
    CompletedGeneration,
    DecoupledSectoredTrainer,
    LogicalSectoredTrainer,
    SpatialTrainer,
    TrainerResponse,
    make_trainer,
)
from repro.core.sms import SpatialMemoryStreaming

__all__ = [
    "SMSConfig",
    "RegionGeometry",
    "SpatialPattern",
    "IndexScheme",
    "AddressIndex",
    "PCIndex",
    "PCAddressIndex",
    "PCOffsetIndex",
    "make_index_scheme",
    "ActiveGenerationTable",
    "AGTEvent",
    "GenerationRecord",
    "PatternHistoryTable",
    "PHT_BACKENDS",
    "PHTBackend",
    "DictBackend",
    "ArrayBackend",
    "MmapBackend",
    "ShardedPHT",
    "make_pht_store",
    "stable_hash",
    "PredictionRegisterFile",
    "StreamRequest",
    "SpatialTrainer",
    "AGTTrainer",
    "LogicalSectoredTrainer",
    "DecoupledSectoredTrainer",
    "CompletedGeneration",
    "TrainerResponse",
    "make_trainer",
    "SpatialMemoryStreaming",
]
