"""SMS configuration.

Default values follow the practical configuration evaluated in the paper
(Figure 11): 2 kB spatial regions over 64 B blocks, PC+offset indexing, AGT
training with a 32-entry filter table and 64-entry accumulation table, and a
16k-entry 16-way set-associative PHT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.pht import PHT_BACKENDS, PatternHistoryTable
from repro.core.region import RegionGeometry


@dataclass
class SMSConfig:
    """Configuration for :class:`repro.core.sms.SpatialMemoryStreaming`.

    Attributes
    ----------
    region_size, block_size:
        Spatial region geometry in bytes.
    index_scheme:
        Prediction index: ``"address"``, ``"pc"``, ``"pc+address"`` or
        ``"pc+offset"``.
    trainer:
        Training structure: ``"agt"`` (the paper's design), ``"logical-sectored"``
        or ``"decoupled-sectored"`` (the prior designs of Figure 8).
    filter_entries, accumulation_entries:
        AGT sizing; ``None`` means unbounded (used by opportunity studies).
    pht_entries, pht_associativity:
        Pattern History Table sizing; ``pht_entries=None`` means unbounded.
    pht_backend, pht_shards:
        PHT storage backend (``"dict"``, ``"array"`` or ``"mmap"``; see
        :mod:`repro.core.pht` for the trade-offs) and the number of shards
        the sets are partitioned across.  Neither affects simulated
        behaviour or :meth:`storage_bits` — only how (and how scalably) the
        host process stores predictor state.
    prediction_registers:
        Number of simultaneously-active streamed regions.
    stream_into_l1:
        SMS streams predicted blocks into the primary cache; set False to
        restrict streaming to the L2 (used in ablations).
    max_requests_per_access:
        Cap on stream requests drained per demand access (``None`` = drain
        everything immediately; the functional default).
    trained_cache_capacity, trained_cache_associativity:
        Geometry the sectored training structures mirror (the L1 by default).
    """

    region_size: int = 2048
    block_size: int = 64
    index_scheme: str = "pc+offset"
    trainer: str = "agt"
    filter_entries: Optional[int] = 32
    accumulation_entries: Optional[int] = 64
    pht_entries: Optional[int] = 16384
    pht_associativity: int = 16
    pht_backend: str = "dict"
    pht_shards: int = 1
    prediction_registers: int = 16
    stream_into_l1: bool = True
    max_requests_per_access: Optional[int] = None
    trained_cache_capacity: int = 64 * 1024
    trained_cache_associativity: int = 2

    def __post_init__(self) -> None:
        if self.pht_entries is not None and self.pht_entries <= 0:
            raise ValueError(f"pht_entries must be positive or None, got {self.pht_entries}")
        if self.pht_associativity <= 0:
            raise ValueError(f"pht_associativity must be positive, got {self.pht_associativity}")
        if self.pht_backend not in PHT_BACKENDS:
            raise ValueError(
                f"pht_backend must be one of {PHT_BACKENDS}, got {self.pht_backend!r}"
            )
        if self.pht_shards <= 0:
            raise ValueError(f"pht_shards must be positive, got {self.pht_shards}")
        if self.prediction_registers <= 0:
            raise ValueError(
                f"prediction_registers must be positive, got {self.prediction_registers}"
            )

    @property
    def geometry(self) -> RegionGeometry:
        return RegionGeometry(region_size=self.region_size, block_size=self.block_size)

    @property
    def unbounded_pht(self) -> bool:
        return self.pht_entries is None

    @classmethod
    def paper_practical(cls) -> "SMSConfig":
        """The practical configuration of Figure 11 (also the class defaults)."""
        return cls()

    @classmethod
    def unbounded(cls, index_scheme: str = "pc+offset", region_size: int = 2048) -> "SMSConfig":
        """Unbounded PHT/AGT configuration used by the opportunity studies."""
        return cls(
            region_size=region_size,
            index_scheme=index_scheme,
            filter_entries=None,
            accumulation_entries=None,
            pht_entries=None,
        )

    def replace(self, **overrides) -> "SMSConfig":
        """Return a copy of this configuration with ``overrides`` applied."""
        values = dict(vars(self))
        values.update(overrides)
        return SMSConfig(**values)

    def make_pht(self, num_blocks: Optional[int] = None) -> PatternHistoryTable:
        """Construct the configured Pattern History Table.

        The factory every consumer (:class:`repro.core.sms.SpatialMemoryStreaming`,
        experiments, benchmarks) goes through, so the backend/shard selection
        lives in exactly one place.
        """
        return PatternHistoryTable(
            num_blocks=num_blocks if num_blocks is not None else self.geometry.blocks_per_region,
            num_entries=self.pht_entries,
            associativity=self.pht_associativity,
            backend=self.pht_backend,
            shards=self.pht_shards,
        )

    def storage_bits(self) -> int:
        """Rough predictor storage estimate in bits (PHT tag+pattern entries).

        This models the *hardware* cost — a tag fragment plus one pattern
        bit per region block per entry — and is therefore independent of
        ``pht_backend``/``pht_shards``, which only decide how the host
        process lays the same entries out in memory.
        """
        if self.pht_entries is None:
            raise ValueError("cannot estimate storage for an unbounded PHT")
        pattern_bits = self.geometry.blocks_per_region
        tag_bits = 32  # PC (or address) fragment + offset
        return self.pht_entries * (pattern_bits + tag_bits)
