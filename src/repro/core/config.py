"""SMS configuration.

Default values follow the practical configuration evaluated in the paper
(Figure 11): 2 kB spatial regions over 64 B blocks, PC+offset indexing, AGT
training with a 32-entry filter table and 64-entry accumulation table, and a
16k-entry 16-way set-associative PHT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.region import RegionGeometry


@dataclass
class SMSConfig:
    """Configuration for :class:`repro.core.sms.SpatialMemoryStreaming`.

    Attributes
    ----------
    region_size, block_size:
        Spatial region geometry in bytes.
    index_scheme:
        Prediction index: ``"address"``, ``"pc"``, ``"pc+address"`` or
        ``"pc+offset"``.
    trainer:
        Training structure: ``"agt"`` (the paper's design), ``"logical-sectored"``
        or ``"decoupled-sectored"`` (the prior designs of Figure 8).
    filter_entries, accumulation_entries:
        AGT sizing; ``None`` means unbounded (used by opportunity studies).
    pht_entries, pht_associativity:
        Pattern History Table sizing; ``pht_entries=None`` means unbounded.
    prediction_registers:
        Number of simultaneously-active streamed regions.
    stream_into_l1:
        SMS streams predicted blocks into the primary cache; set False to
        restrict streaming to the L2 (used in ablations).
    max_requests_per_access:
        Cap on stream requests drained per demand access (``None`` = drain
        everything immediately; the functional default).
    trained_cache_capacity, trained_cache_associativity:
        Geometry the sectored training structures mirror (the L1 by default).
    """

    region_size: int = 2048
    block_size: int = 64
    index_scheme: str = "pc+offset"
    trainer: str = "agt"
    filter_entries: Optional[int] = 32
    accumulation_entries: Optional[int] = 64
    pht_entries: Optional[int] = 16384
    pht_associativity: int = 16
    prediction_registers: int = 16
    stream_into_l1: bool = True
    max_requests_per_access: Optional[int] = None
    trained_cache_capacity: int = 64 * 1024
    trained_cache_associativity: int = 2

    def __post_init__(self) -> None:
        if self.pht_entries is not None and self.pht_entries <= 0:
            raise ValueError(f"pht_entries must be positive or None, got {self.pht_entries}")
        if self.pht_associativity <= 0:
            raise ValueError(f"pht_associativity must be positive, got {self.pht_associativity}")
        if self.prediction_registers <= 0:
            raise ValueError(
                f"prediction_registers must be positive, got {self.prediction_registers}"
            )

    @property
    def geometry(self) -> RegionGeometry:
        return RegionGeometry(region_size=self.region_size, block_size=self.block_size)

    @property
    def unbounded_pht(self) -> bool:
        return self.pht_entries is None

    @classmethod
    def paper_practical(cls) -> "SMSConfig":
        """The practical configuration of Figure 11 (also the class defaults)."""
        return cls()

    @classmethod
    def unbounded(cls, index_scheme: str = "pc+offset", region_size: int = 2048) -> "SMSConfig":
        """Unbounded PHT/AGT configuration used by the opportunity studies."""
        return cls(
            region_size=region_size,
            index_scheme=index_scheme,
            filter_entries=None,
            accumulation_entries=None,
            pht_entries=None,
        )

    def replace(self, **overrides) -> "SMSConfig":
        """Return a copy of this configuration with ``overrides`` applied."""
        values = dict(vars(self))
        values.update(overrides)
        return SMSConfig(**values)

    def storage_bits(self) -> int:
        """Rough predictor storage estimate in bits (PHT tag+pattern entries)."""
        if self.pht_entries is None:
            raise ValueError("cannot estimate storage for an unbounded PHT")
        pattern_bits = self.geometry.blocks_per_region
        tag_bits = 32  # PC (or address) fragment + offset
        return self.pht_entries * (pattern_bits + tag_bits)
