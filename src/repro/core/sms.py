"""Spatial Memory Streaming predictor.

Ties together a training structure (AGT by default), an index scheme
(PC+offset by default), the Pattern History Table, and the prediction
register file into a single per-processor prefetcher implementing the
:class:`repro.prefetch.base.Prefetcher` interface.

Operation per the paper (Sections 3.1-3.2):

1. Every L1 data access trains the AGT.  Generations completed as a side
   effect (table victims) immediately train the PHT.
2. If the access is a *trigger* (the first access of a new spatial region
   generation), the PHT is consulted with the prediction index derived from
   the trigger's PC and spatial region offset.  On a hit, the region base and
   predicted pattern are copied to a prediction register and SMS begins
   streaming the predicted blocks into the primary cache.
3. Every L1 eviction or invalidation is forwarded to the AGT; an ended
   generation's accumulated pattern trains the PHT.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.core.agt import GenerationRecord
from repro.core.config import SMSConfig
from repro.core.indexing import IndexScheme, PCOffsetIndex, TriggerInfo, make_index_scheme
from repro.core.pht import PatternHistoryTable
from repro.core.prediction import PredictionRegisterFile
from repro.core.training import AGTTrainer, CompletedGeneration, SpatialTrainer, make_trainer
from repro.prefetch.base import EMPTY_RESPONSE, Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess


class SpatialMemoryStreaming(Prefetcher):
    """The SMS predictor for one processor."""

    name = "sms"

    def __init__(self, config: Optional[SMSConfig] = None) -> None:
        super().__init__()
        self.config = config or SMSConfig()
        self.geometry = self.config.geometry
        self.streams_into_l1 = self.config.stream_into_l1
        self.index_scheme: IndexScheme = make_index_scheme(
            self.config.index_scheme, self.geometry
        )
        self.trainer: SpatialTrainer = make_trainer(
            self.config.trainer,
            self.geometry,
            filter_entries=self.config.filter_entries,
            accumulation_entries=self.config.accumulation_entries,
            cache_capacity=self.config.trained_cache_capacity,
            cache_associativity=self.config.trained_cache_associativity,
        )
        # The config is the PHT factory: it owns backend/shard selection so
        # every consumer constructs storage the same way.
        self.pht: PatternHistoryTable = self.config.make_pht(self.geometry.blocks_per_region)
        self.registers = PredictionRegisterFile(
            geometry=self.geometry,
            num_registers=self.config.prediction_registers,
        )
        # Lane fast path: the plain AGT is the only trainer that never forces
        # evictions, so it is the only one whose per-access work can run
        # unboxed.  Sectored trainers keep the reference path.
        self._lane_agt = self.trainer.agt if type(self.trainer) is AGTTrainer else None
        self._lane_region_mask = ~(self.geometry.region_size - 1)
        self._lane_offset_mask = self.geometry.region_size - 1
        self._lane_block_shift = self.geometry.block_size.bit_length() - 1
        if type(self.index_scheme) is PCOffsetIndex:
            self._lane_key = self._lane_key_pc_offset
        else:
            self._lane_key = self._lane_key_generic

    # ------------------------------------------------------------------ #
    def _lane_key_pc_offset(self, pc: int, address: int, region: int, offset: int):
        # Inlined PCOffsetIndex.key: no TriggerInfo boxed on the hot path.
        return ("pc+off", pc, offset)

    def _lane_key_generic(self, pc: int, address: int, region: int, offset: int):
        return self.index_scheme.key(
            TriggerInfo(pc=pc, address=address, region=region, offset=offset)
        )

    def _train_record(self, record: GenerationRecord) -> None:
        """Lane-path :meth:`_train` for one raw AGT generation record."""
        key = self._lane_key(
            record.trigger_pc, record.trigger_address, record.region, record.trigger_offset
        )
        self.pht.store_bits(key, record.pattern_bits)
        self.stats.trained_patterns += 1

    def lane_hook(self):
        """Build the fused per-access closure for the engine's lane path.

        Bit-identical to :meth:`on_access` (for the plain AGT, which never
        forces evictions): the AGT transition from
        :meth:`~repro.core.agt.ActiveGenerationTable.observe_access_lane`,
        the PHT consult on a trigger, and the round-robin stream drain run
        as one function with every stable collaborator pre-bound.  Only
        objects assigned once in ``__init__`` are captured (AGT tables,
        stats, register file); ``registers._registers`` is read live because
        :meth:`~repro.core.prediction.PredictionRegisterFile.cancel_region`
        rebinds it.  The engine rebuilds hooks at the start of every run.
        """
        agt = self._lane_agt
        if agt is None:
            return None
        accumulation = agt._accumulation
        acc_move = accumulation.move_to_end
        filter_table = agt._filter
        filt_move = filter_table.move_to_end
        allocate_filter = agt._allocate_filter
        allocate_accumulation = agt._allocate_accumulation
        region_mask = self._lane_region_mask
        offset_mask = self._lane_offset_mask
        block_shift = self._lane_block_shift
        stats = self.stats
        lookup_bits = self.pht.lookup_bits
        lane_key = self._lane_key
        registers = self.registers
        drain_addresses = registers.drain_addresses
        allocate_bits = registers.allocate_bits
        max_requests = self.config.max_requests_per_access
        train = self._train_record

        def on_access_lane(pc: int, address: int) -> Optional[List[int]]:
            region = address & region_mask
            record = accumulation.get(region)
            if record is not None:
                # Accumulating generation: just set the offset bit.
                record.pattern_bits |= 1 << ((address & offset_mask) >> block_shift)
                acc_move(region)
            else:
                offset = (address & offset_mask) >> block_shift
                entry = filter_table.get(region)
                if entry is None:
                    # Trigger access: new generation, consult the PHT.
                    agt.trigger_accesses += 1
                    agt.generations_started += 1
                    allocate_filter(region, pc, offset, address)
                    stats.pht_lookups += 1
                    bits = lookup_bits(lane_key(pc, address, region, offset))
                    if bits:
                        stats.pht_hits += 1
                        stats.predictions += bin(bits).count("1")
                        allocate_bits(region, bits, exclude_offset=offset)
                elif entry.trigger_offset == offset:
                    filt_move(region)
                else:
                    # Second distinct block: move to the accumulation table;
                    # a table victim's generation completes and trains.
                    del filter_table[region]
                    victim = allocate_accumulation(
                        region,
                        GenerationRecord(
                            region=region,
                            trigger_pc=entry.trigger_pc,
                            trigger_offset=entry.trigger_offset,
                            trigger_address=entry.trigger_address,
                            pattern_bits=(1 << entry.trigger_offset) | (1 << offset),
                        ),
                    )
                    if victim is not None:
                        train(victim)
            if registers._registers:
                addresses = drain_addresses(max_requests)
                stats.issued += len(addresses)
                return addresses
            return None

        return on_access_lane

    def lane_eviction_hook(self):
        """Build the fused per-eviction closure (see :meth:`lane_hook`).

        Bit-identical to ``on_eviction(block_address, invalidated=False)``:
        the AGT never forces evictions or streams on eviction, so the ended
        generation (if any) trains the PHT and nothing else happens.
        """
        agt = self._lane_agt
        if agt is None:
            return None
        accumulation_pop = agt._accumulation.pop
        filter_table = agt._filter
        region_mask = self._lane_region_mask
        train = self._train_record

        def on_eviction_lane(block_address: int) -> None:
            region = block_address & region_mask
            if region in filter_table:
                del filter_table[region]
                agt.filter_only_generations += 1
                return
            record = accumulation_pop(region, None)
            if record is not None:
                agt.generations_completed += 1
                train(record)

        return on_eviction_lane

    # ------------------------------------------------------------------ #
    def _train(self, completed: List[CompletedGeneration]) -> None:
        for generation in completed:
            key = self.index_scheme.key(generation.trigger_info())
            self.pht.store(key, generation.pattern)
            self.stats.trained_patterns += 1

    def _drain_streams(self) -> List[PrefetchRequest]:
        requests = self.registers.drain(max_requests=self.config.max_requests_per_access)
        prefetches = []
        for request in requests:
            prefetches.append(
                PrefetchRequest(address=request.address, target_l1=self.config.stream_into_l1)
            )
        self.stats.issued += len(prefetches)
        return prefetches

    # ------------------------------------------------------------------ #
    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        trainer_response = self.trainer.observe_access(record.pc, record.address)
        self._train(trainer_response.completed)
        response.forced_evictions.extend(trainer_response.forced_evictions)

        if trainer_response.trigger is not None:
            trigger = trainer_response.trigger
            key = self.index_scheme.key(trigger)
            self.stats.pht_lookups += 1
            pattern = self.pht.lookup(key)
            if pattern is not None and not pattern.is_empty:
                self.stats.pht_hits += 1
                self.stats.predictions += pattern.population
                self.registers.allocate(
                    region=trigger.region,
                    pattern=pattern,
                    exclude_offset=trigger.offset,
                )

        response.prefetches.extend(self._drain_streams())
        return response

    def on_eviction(self, block_address: int, invalidated: bool = False) -> PrefetcherResponse:
        agt = self._lane_agt
        if agt is not None:
            # Unboxed equivalent of the generic body below: the AGT never
            # forces evictions, so the response is always empty and the one
            # possible completion trains the PHT directly.
            record = agt.observe_removal_lane(block_address & self._lane_region_mask)
            if record is not None:
                self._train_record(record)
            if invalidated:
                self.registers.cancel_region(block_address)
            return EMPTY_RESPONSE
        response = PrefetcherResponse()
        trainer_response = self.trainer.observe_removal(block_address, invalidated=invalidated)
        self._train(trainer_response.completed)
        response.forced_evictions.extend(trainer_response.forced_evictions)
        if invalidated:
            # An invalidated region's remaining streamed blocks would arrive
            # stale; stop streaming it.
            self.registers.cancel_region(block_address)
        return response

    def finalize(self) -> PrefetcherResponse:
        self._train(self.trainer.drain())
        self.registers.clear()
        return PrefetcherResponse()

    # ------------------------------------------------------------------ #
    @property
    def coverage_potential(self) -> float:
        """PHT hit rate over trigger accesses (a quick training-health metric)."""
        return self.stats.pht_hit_rate

    def __repr__(self) -> str:
        return (
            f"SpatialMemoryStreaming(index={self.index_scheme.name}, "
            f"trainer={self.trainer.name}, regions={self.geometry.describe()}, "
            f"pht={'unbounded' if self.pht.is_unbounded else self.pht.num_entries})"
        )
