"""Spatial Memory Streaming predictor.

Ties together a training structure (AGT by default), an index scheme
(PC+offset by default), the Pattern History Table, and the prediction
register file into a single per-processor prefetcher implementing the
:class:`repro.prefetch.base.Prefetcher` interface.

Operation per the paper (Sections 3.1-3.2):

1. Every L1 data access trains the AGT.  Generations completed as a side
   effect (table victims) immediately train the PHT.
2. If the access is a *trigger* (the first access of a new spatial region
   generation), the PHT is consulted with the prediction index derived from
   the trigger's PC and spatial region offset.  On a hit, the region base and
   predicted pattern are copied to a prediction register and SMS begins
   streaming the predicted blocks into the primary cache.
3. Every L1 eviction or invalidation is forwarded to the AGT; an ended
   generation's accumulated pattern trains the PHT.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.core.config import SMSConfig
from repro.core.indexing import IndexScheme, make_index_scheme
from repro.core.pht import PatternHistoryTable
from repro.core.prediction import PredictionRegisterFile
from repro.core.training import CompletedGeneration, SpatialTrainer, make_trainer
from repro.prefetch.base import Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess


class SpatialMemoryStreaming(Prefetcher):
    """The SMS predictor for one processor."""

    name = "sms"

    def __init__(self, config: Optional[SMSConfig] = None) -> None:
        super().__init__()
        self.config = config or SMSConfig()
        self.geometry = self.config.geometry
        self.streams_into_l1 = self.config.stream_into_l1
        self.index_scheme: IndexScheme = make_index_scheme(
            self.config.index_scheme, self.geometry
        )
        self.trainer: SpatialTrainer = make_trainer(
            self.config.trainer,
            self.geometry,
            filter_entries=self.config.filter_entries,
            accumulation_entries=self.config.accumulation_entries,
            cache_capacity=self.config.trained_cache_capacity,
            cache_associativity=self.config.trained_cache_associativity,
        )
        # The config is the PHT factory: it owns backend/shard selection so
        # every consumer constructs storage the same way.
        self.pht: PatternHistoryTable = self.config.make_pht(self.geometry.blocks_per_region)
        self.registers = PredictionRegisterFile(
            geometry=self.geometry,
            num_registers=self.config.prediction_registers,
        )

    # ------------------------------------------------------------------ #
    def _train(self, completed: List[CompletedGeneration]) -> None:
        for generation in completed:
            key = self.index_scheme.key(generation.trigger_info())
            self.pht.store(key, generation.pattern)
            self.stats.trained_patterns += 1

    def _drain_streams(self) -> List[PrefetchRequest]:
        requests = self.registers.drain(max_requests=self.config.max_requests_per_access)
        prefetches = []
        for request in requests:
            prefetches.append(
                PrefetchRequest(address=request.address, target_l1=self.config.stream_into_l1)
            )
        self.stats.issued += len(prefetches)
        return prefetches

    # ------------------------------------------------------------------ #
    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        trainer_response = self.trainer.observe_access(record.pc, record.address)
        self._train(trainer_response.completed)
        response.forced_evictions.extend(trainer_response.forced_evictions)

        if trainer_response.trigger is not None:
            trigger = trainer_response.trigger
            key = self.index_scheme.key(trigger)
            self.stats.pht_lookups += 1
            pattern = self.pht.lookup(key)
            if pattern is not None and not pattern.is_empty:
                self.stats.pht_hits += 1
                self.stats.predictions += pattern.population
                self.registers.allocate(
                    region=trigger.region,
                    pattern=pattern,
                    exclude_offset=trigger.offset,
                )

        response.prefetches.extend(self._drain_streams())
        return response

    def on_eviction(self, block_address: int, invalidated: bool = False) -> PrefetcherResponse:
        response = PrefetcherResponse()
        trainer_response = self.trainer.observe_removal(block_address, invalidated=invalidated)
        self._train(trainer_response.completed)
        response.forced_evictions.extend(trainer_response.forced_evictions)
        if invalidated:
            # An invalidated region's remaining streamed blocks would arrive
            # stale; stop streaming it.
            self.registers.cancel_region(block_address)
        return response

    def finalize(self) -> PrefetcherResponse:
        self._train(self.trainer.drain())
        self.registers.clear()
        return PrefetcherResponse()

    # ------------------------------------------------------------------ #
    @property
    def coverage_potential(self) -> float:
        """PHT hit rate over trigger accesses (a quick training-health metric)."""
        return self.stats.pht_hit_rate

    def __repr__(self) -> str:
        return (
            f"SpatialMemoryStreaming(index={self.index_scheme.name}, "
            f"trainer={self.trainer.name}, regions={self.geometry.describe()}, "
            f"pht={'unbounded' if self.pht.is_unbounded else self.pht.num_entries})"
        )
