"""Active Generation Table.

The AGT (Section 3.1) records which blocks are accessed over the course of a
spatial region generation.  It is logically one table but implemented as two
content-addressable memories:

* the **filter table** holds regions that have seen only their trigger access
  (a significant minority of generations never see a second block, and
  predicting them is pointless); and
* the **accumulation table** holds regions with two or more accessed blocks
  and accumulates their spatial pattern bit vector.

A generation ends when any block of the region is evicted or invalidated from
the primary cache, or when the entry is displaced from a full table; ended
accumulation-table generations are handed to the Pattern History Table.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.indexing import TriggerInfo
from repro.core.pattern import SpatialPattern
from repro.core.region import RegionGeometry


@dataclass
class GenerationRecord:
    """An in-flight (or just-completed) spatial region generation."""

    region: int
    trigger_pc: int
    trigger_offset: int
    trigger_address: int
    pattern_bits: int = 0

    def record_offset(self, offset: int) -> None:
        self.pattern_bits |= 1 << offset

    def pattern(self, num_blocks: int) -> SpatialPattern:
        return SpatialPattern(num_blocks=num_blocks, bits=self.pattern_bits)

    def trigger_info(self) -> TriggerInfo:
        return TriggerInfo(
            pc=self.trigger_pc,
            address=self.trigger_address,
            region=self.region,
            offset=self.trigger_offset,
        )


@dataclass
class AGTEvent:
    """Outcome of one AGT operation.

    ``is_trigger`` marks the access as the first access of a new generation
    (the moment SMS consults the PHT).  ``completed`` lists generations that
    ended as a side effect (victims displaced from a full accumulation table,
    or the generation ended by the eviction that was observed).
    """

    is_trigger: bool = False
    trigger: Optional[TriggerInfo] = None
    completed: List[GenerationRecord] = field(default_factory=list)


@dataclass
class _FilterEntry:
    region: int
    trigger_pc: int
    trigger_offset: int
    trigger_address: int


class ActiveGenerationTable:
    """Filter table + accumulation table, as in Figure 2 of the paper."""

    def __init__(
        self,
        geometry: RegionGeometry,
        filter_entries: Optional[int] = 32,
        accumulation_entries: Optional[int] = 64,
    ) -> None:
        if filter_entries is not None and filter_entries <= 0:
            raise ValueError(f"filter_entries must be positive or None, got {filter_entries}")
        if accumulation_entries is not None and accumulation_entries <= 0:
            raise ValueError(
                f"accumulation_entries must be positive or None, got {accumulation_entries}"
            )
        self.geometry = geometry
        self.filter_entries = filter_entries
        self.accumulation_entries = accumulation_entries
        # Both tables are CAMs searched by region tag; OrderedDict gives LRU order.
        self._filter: "OrderedDict[int, _FilterEntry]" = OrderedDict()
        self._accumulation: "OrderedDict[int, GenerationRecord]" = OrderedDict()
        # Statistics
        self.trigger_accesses = 0
        self.generations_started = 0
        self.generations_completed = 0
        self.filter_only_generations = 0
        self.filter_victims = 0
        self.accumulation_victims = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def filter_occupancy(self) -> int:
        return len(self._filter)

    @property
    def accumulation_occupancy(self) -> int:
        return len(self._accumulation)

    def active_regions(self) -> List[int]:
        """Regions with an in-flight generation in either table."""
        return list(self._filter.keys()) + list(self._accumulation.keys())

    def has_active_generation(self, address: int) -> bool:
        region = self.geometry.region_base(address)
        return region in self._filter or region in self._accumulation

    # ------------------------------------------------------------------ #
    # Operation
    # ------------------------------------------------------------------ #
    def observe_access(self, pc: int, address: int) -> AGTEvent:
        """Process one L1 data access (Figure 2, steps 1-3)."""
        region, offset = self.geometry.split(address)
        event = AGTEvent()

        # Step 3: accesses to an already-accumulating generation set pattern bits.
        record = self._accumulation.get(region)
        if record is not None:
            record.record_offset(offset)
            self._accumulation.move_to_end(region)
            return event

        entry = self._filter.get(region)
        if entry is None:
            # Step 1: trigger access for a new generation; allocate in the filter.
            self.trigger_accesses += 1
            self.generations_started += 1
            event.is_trigger = True
            event.trigger = TriggerInfo(pc=pc, address=address, region=region, offset=offset)
            self._allocate_filter(region, pc, offset, address)
            return event

        if entry.trigger_offset == offset:
            # Repeat access to the trigger block: still a single-block generation.
            self._filter.move_to_end(region)
            return event

        # Step 2: second distinct block; transfer the generation to the
        # accumulation table and set both the trigger and the new bit.
        del self._filter[region]
        record = GenerationRecord(
            region=region,
            trigger_pc=entry.trigger_pc,
            trigger_offset=entry.trigger_offset,
            trigger_address=entry.trigger_address,
        )
        record.record_offset(entry.trigger_offset)
        record.record_offset(offset)
        victim = self._allocate_accumulation(region, record)
        if victim is not None:
            event.completed.append(victim)
        return event

    def observe_access_lane(self, region: int, offset: int, pc: int, address: int):
        """Lane-path :meth:`observe_access`: no ``AGTEvent``/``TriggerInfo`` boxed.

        The caller has already split ``address`` into ``(region, offset)``
        with the shared geometry masks.  State transitions and counters are
        identical to :meth:`observe_access`; the outcome is encoded in the
        return value instead of an event object:

        * ``None`` — accumulated / repeat trigger access, nothing to do;
        * ``True`` — trigger access of a new generation (consult the PHT);
        * a :class:`GenerationRecord` — an accumulation-table victim whose
          generation just completed (train the PHT with it).
        """
        record = self._accumulation.get(region)
        if record is not None:
            record.pattern_bits |= 1 << offset
            self._accumulation.move_to_end(region)
            return None

        entry = self._filter.get(region)
        if entry is None:
            self.trigger_accesses += 1
            self.generations_started += 1
            self._allocate_filter(region, pc, offset, address)
            return True

        if entry.trigger_offset == offset:
            self._filter.move_to_end(region)
            return None

        del self._filter[region]
        record = GenerationRecord(
            region=region,
            trigger_pc=entry.trigger_pc,
            trigger_offset=entry.trigger_offset,
            trigger_address=entry.trigger_address,
            pattern_bits=(1 << entry.trigger_offset) | (1 << offset),
        )
        return self._allocate_accumulation(region, record)

    def observe_removal_lane(self, region: int) -> Optional[GenerationRecord]:
        """Lane-path :meth:`observe_removal` for an already-region-based address.

        Returns the completed :class:`GenerationRecord` (train it), or
        ``None``; counter effects match :meth:`observe_removal`.
        """
        if region in self._filter:
            del self._filter[region]
            self.filter_only_generations += 1
            return None
        record = self._accumulation.pop(region, None)
        if record is not None:
            self.generations_completed += 1
        return record

    def observe_removal(self, block_address: int) -> AGTEvent:
        """Process the eviction or invalidation of a block (Figure 2, step 4)."""
        region = self.geometry.region_base(block_address)
        event = AGTEvent()
        if region in self._filter:
            # Generation with only its trigger access: discard, nothing to learn.
            del self._filter[region]
            self.filter_only_generations += 1
            return event
        record = self._accumulation.pop(region, None)
        if record is not None:
            self.generations_completed += 1
            event.completed.append(record)
        return event

    def drain(self) -> List[GenerationRecord]:
        """End every in-flight accumulating generation (used at end of trace)."""
        drained = list(self._accumulation.values())
        self.generations_completed += len(drained)
        self.filter_only_generations += len(self._filter)
        self._accumulation.clear()
        self._filter.clear()
        return drained

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _allocate_filter(self, region: int, pc: int, offset: int, address: int) -> None:
        if self.filter_entries is not None and len(self._filter) >= self.filter_entries:
            # Victim generations in the filter table are simply dropped: they
            # contain only a trigger access.
            self._filter.popitem(last=False)
            self.filter_victims += 1
            self.filter_only_generations += 1
        self._filter[region] = _FilterEntry(
            region=region, trigger_pc=pc, trigger_offset=offset, trigger_address=address
        )

    def _allocate_accumulation(
        self, region: int, record: GenerationRecord
    ) -> Optional[GenerationRecord]:
        victim: Optional[GenerationRecord] = None
        if (
            self.accumulation_entries is not None
            and len(self._accumulation) >= self.accumulation_entries
        ):
            _, victim = self._accumulation.popitem(last=False)
            self.accumulation_victims += 1
            self.generations_completed += 1
        self._accumulation[region] = record
        return victim

    def __repr__(self) -> str:
        return (
            f"ActiveGenerationTable(filter={self.filter_entries}, "
            f"accumulation={self.accumulation_entries}, geometry={self.geometry.describe()})"
        )
