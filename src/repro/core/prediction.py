"""Prediction registers and stream request generation.

When a trigger access hits in the PHT, the region base address and predicted
pattern are copied into one of several *prediction registers* (Section 3.2).
SMS then streams the predicted blocks into the primary cache, clearing each
bit as its block is requested and freeing the register once the pattern is
exhausted.  When several registers are active, requests are drawn from them
in round-robin order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.pattern import SpatialPattern
from repro.core.region import RegionGeometry


@dataclass(frozen=True)
class StreamRequest:
    """One block SMS wants to stream into the cache."""

    address: int
    region: int
    offset: int


class PredictionRegister:
    """A single active streaming region: base address + remaining pattern bits."""

    def __init__(self, geometry: RegionGeometry, region: int, pattern: SpatialPattern) -> None:
        if pattern.num_blocks != geometry.blocks_per_region:
            raise ValueError(
                f"pattern width {pattern.num_blocks} does not match region geometry "
                f"({geometry.blocks_per_region} blocks)"
            )
        self.geometry = geometry
        self.region = geometry.region_base(region)
        self._remaining = pattern.bits

    @property
    def exhausted(self) -> bool:
        return self._remaining == 0

    @property
    def remaining_count(self) -> int:
        return bin(self._remaining).count("1")

    def next_request(self) -> Optional[StreamRequest]:
        """Pop the lowest remaining offset and return its stream request."""
        if self._remaining == 0:
            return None
        offset = (self._remaining & -self._remaining).bit_length() - 1
        self._remaining &= self._remaining - 1
        return StreamRequest(
            address=self.geometry.block_at_offset(self.region, offset),
            region=self.region,
            offset=offset,
        )


class PredictionRegisterFile:
    """A bounded pool of prediction registers drained round-robin."""

    def __init__(self, geometry: RegionGeometry, num_registers: int = 16) -> None:
        if num_registers <= 0:
            raise ValueError(f"num_registers must be positive, got {num_registers}")
        self.geometry = geometry
        self.num_registers = num_registers
        # Hot-path equivalents of geometry.region_base / .blocks_per_region
        # (both re-validate their power-of-two inputs on every call).
        self._region_mask = ~(geometry.region_size - 1)
        self._pattern_width = geometry.blocks_per_region
        self._registers: List[PredictionRegister] = []
        self._next_index = 0
        self.allocations = 0
        self.rejections = 0
        self.requests_issued = 0

    @property
    def active_registers(self) -> int:
        return len(self._registers)

    @property
    def has_capacity(self) -> bool:
        return len(self._registers) < self.num_registers

    def allocate(self, region: int, pattern: SpatialPattern, exclude_offset: Optional[int] = None) -> bool:
        """Start streaming ``pattern`` for the region based at ``region``.

        ``exclude_offset`` removes the trigger block from the stream (it is
        being fetched by the demand miss itself).  Returns False and drops
        the prediction if no register is free.
        """
        if exclude_offset is not None and 0 <= exclude_offset < pattern.num_blocks:
            pattern = pattern.without_offset(exclude_offset)
        if pattern.is_empty:
            return True
        if not self.has_capacity:
            self.rejections += 1
            return False
        self._registers.append(PredictionRegister(self.geometry, region, pattern))
        self.allocations += 1
        return True

    def allocate_bits(
        self, region: int, bits: int, exclude_offset: Optional[int] = None
    ) -> bool:
        """Lane-path :meth:`allocate`: a raw PHT bit mask, no ``SpatialPattern``.

        Same decision sequence and counter effects as :meth:`allocate`; the
        caller vouches that ``bits`` fits the region's pattern width (true
        for anything read back out of the PHT for this geometry).
        """
        if exclude_offset is not None and 0 <= exclude_offset < self._pattern_width:
            bits &= ~(1 << exclude_offset)
        if bits == 0:
            return True
        if len(self._registers) >= self.num_registers:
            self.rejections += 1
            return False
        register = PredictionRegister.__new__(PredictionRegister)
        register.geometry = self.geometry
        register.region = region & self._region_mask
        register._remaining = bits
        self._registers.append(register)
        self.allocations += 1
        return True

    def drain(self, max_requests: Optional[int] = None) -> List[StreamRequest]:
        """Issue up to ``max_requests`` stream requests, round-robin across registers."""
        requests: List[StreamRequest] = []
        while self._registers:
            if max_requests is not None and len(requests) >= max_requests:
                break
            if self._next_index >= len(self._registers):
                self._next_index = 0
            register = self._registers[self._next_index]
            request = register.next_request()
            if request is not None:
                requests.append(request)
                self.requests_issued += 1
            if register.exhausted:
                self._registers.pop(self._next_index)
            else:
                self._next_index += 1
        return requests

    def drain_addresses(self, max_requests: Optional[int] = None) -> List[int]:
        """Lane-path :meth:`drain`: raw block addresses, no ``StreamRequest``.

        Identical round-robin order, cursor motion, and ``requests_issued``
        accounting (batched into one update; nothing in the loop can raise);
        each popped offset becomes ``region + offset*block_size`` directly
        (what :meth:`RegionGeometry.block_at_offset` computes for the
        in-range offsets a register can hold).
        """
        addresses: List[int] = []
        registers = self._registers
        block_size = self.geometry.block_size
        next_index = self._next_index
        append = addresses.append
        issued = 0
        while registers:
            if max_requests is not None and issued >= max_requests:
                break
            if next_index >= len(registers):
                next_index = 0
            register = registers[next_index]
            remaining = register._remaining
            if remaining:
                offset = (remaining & -remaining).bit_length() - 1
                register._remaining = remaining = remaining & (remaining - 1)
                append(register.region + offset * block_size)
                issued += 1
            if remaining == 0:
                registers.pop(next_index)
            else:
                next_index += 1
        self._next_index = next_index
        self.requests_issued += issued
        return addresses

    def cancel_region(self, region: int) -> int:
        """Drop any active register for ``region`` (e.g. on invalidation); return count.

        The round-robin cursor is only adjusted when a register is actually
        removed (shifted past removed slots, then clamped), so cancelling an
        inactive region does not perturb drain fairness.
        """
        base = self.geometry.region_base(region)
        kept: List[PredictionRegister] = []
        removed_before_cursor = 0
        for index, register in enumerate(self._registers):
            if register.region == base:
                if index < self._next_index:
                    removed_before_cursor += 1
            else:
                kept.append(register)
        removed = len(self._registers) - len(kept)
        if removed:
            self._registers = kept
            self._next_index -= removed_before_cursor
            if self._next_index >= len(kept):
                self._next_index = 0
        return removed

    def clear(self) -> None:
        self._registers.clear()
        self._next_index = 0
