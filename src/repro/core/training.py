"""Training structures for spatial pattern observation.

Figure 8 compares three ways of observing spatial region generations:

* the **AGT** (the paper's decoupled design, :class:`AGTTrainer`);
* a **logical sectored** tag array (Chen et al. [4]) that mirrors the
  conflict behaviour of a sectored cache without constraining the real
  cache's contents (:class:`LogicalSectoredTrainer`); and
* a **decoupled sectored** cache (Kumar & Wilkerson [17]) whose sector-tag
  conflicts *do* constrain the cache: when a sector tag is displaced, the
  blocks of that sector must leave the cache as well
  (:class:`DecoupledSectoredTrainer`, which reports these forced evictions
  to the engine).

All three expose the same :class:`SpatialTrainer` interface so the SMS
predictor and the simulation engine can swap them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.agt import ActiveGenerationTable, GenerationRecord
from repro.core.indexing import TriggerInfo
from repro.core.pattern import SpatialPattern
from repro.core.region import RegionGeometry
from repro.memory.sectored import LogicalSectoredTagArray, SectorState


@dataclass(frozen=True)
class CompletedGeneration:
    """A finished spatial region generation, ready to train the PHT."""

    region: int
    trigger_pc: int
    trigger_offset: int
    trigger_address: int
    pattern: SpatialPattern

    def trigger_info(self) -> TriggerInfo:
        return TriggerInfo(
            pc=self.trigger_pc,
            address=self.trigger_address,
            region=self.region,
            offset=self.trigger_offset,
        )


@dataclass
class TrainerResponse:
    """Outcome of one trainer observation."""

    trigger: Optional[TriggerInfo] = None
    completed: List[CompletedGeneration] = field(default_factory=list)
    forced_evictions: List[int] = field(default_factory=list)

    @property
    def is_trigger(self) -> bool:
        return self.trigger is not None


class SpatialTrainer:
    """Interface shared by the AGT and the sectored training structures."""

    name = "abstract"

    def __init__(self, geometry: RegionGeometry) -> None:
        self.geometry = geometry

    def observe_access(self, pc: int, address: int) -> TrainerResponse:
        """Observe one L1 data access."""
        raise NotImplementedError

    def observe_removal(self, block_address: int, invalidated: bool = False) -> TrainerResponse:
        """Observe the replacement or invalidation of an L1 block."""
        raise NotImplementedError

    def drain(self) -> List[CompletedGeneration]:
        """End all in-flight generations (end of trace)."""
        return []


def _record_to_completed(record: GenerationRecord, num_blocks: int) -> CompletedGeneration:
    return CompletedGeneration(
        region=record.region,
        trigger_pc=record.trigger_pc,
        trigger_offset=record.trigger_offset,
        trigger_address=record.trigger_address,
        pattern=record.pattern(num_blocks),
    )


class AGTTrainer(SpatialTrainer):
    """The paper's Active Generation Table behind the trainer interface."""

    name = "agt"

    def __init__(
        self,
        geometry: RegionGeometry,
        filter_entries: Optional[int] = 32,
        accumulation_entries: Optional[int] = 64,
    ) -> None:
        super().__init__(geometry)
        self.agt = ActiveGenerationTable(
            geometry=geometry,
            filter_entries=filter_entries,
            accumulation_entries=accumulation_entries,
        )

    def observe_access(self, pc: int, address: int) -> TrainerResponse:
        event = self.agt.observe_access(pc, address)
        completed = [
            _record_to_completed(record, self.geometry.blocks_per_region)
            for record in event.completed
        ]
        return TrainerResponse(trigger=event.trigger, completed=completed)

    def observe_removal(self, block_address: int, invalidated: bool = False) -> TrainerResponse:
        event = self.agt.observe_removal(block_address)
        completed = [
            _record_to_completed(record, self.geometry.blocks_per_region)
            for record in event.completed
        ]
        return TrainerResponse(completed=completed)

    def drain(self) -> List[CompletedGeneration]:
        return [
            _record_to_completed(record, self.geometry.blocks_per_region)
            for record in self.agt.drain()
        ]


class LogicalSectoredTrainer(SpatialTrainer):
    """Training on a logical sectored tag array sized like the trained cache.

    The tag array has ``cache_capacity / region_size`` sectors at the cache's
    associativity, so interleaved accesses to regions that collide in the tag
    array fragment generations exactly as they would in a sectored cache —
    but the real cache's contents are unaffected.
    """

    name = "logical-sectored"

    def __init__(
        self,
        geometry: RegionGeometry,
        cache_capacity: int = 64 * 1024,
        cache_associativity: int = 2,
    ) -> None:
        super().__init__(geometry)
        self.tags = LogicalSectoredTagArray(
            capacity_bytes=cache_capacity,
            associativity=cache_associativity,
            region_size=geometry.region_size,
            block_size=geometry.block_size,
            name=f"{self.name}-tags",
        )
        self.generations_started = 0
        self.generations_completed = 0

    def _sector_to_completed(self, sector: SectorState) -> Optional[CompletedGeneration]:
        if sector.population == 0:
            return None
        self.generations_completed += 1
        return CompletedGeneration(
            region=sector.region,
            trigger_pc=sector.trigger_pc,
            trigger_offset=sector.trigger_offset,
            trigger_address=sector.trigger_address,
            pattern=SpatialPattern(
                num_blocks=self.geometry.blocks_per_region, bits=sector.pattern_bits
            ),
        )

    def observe_access(self, pc: int, address: int) -> TrainerResponse:
        response = TrainerResponse()
        sector = self.tags.lookup(address)
        if sector is None:
            # New generation: allocate a sector; a conflict victim's footprint
            # becomes a (fragmented) completed generation.
            sector, victim = self.tags.allocate(address, trigger_pc=pc)
            self.generations_started += 1
            if victim is not None:
                completed = self._sector_to_completed(victim)
                if completed is not None:
                    response.completed.append(completed)
                response.forced_evictions.extend(self._victim_evictions(victim))
            region, offset = self.geometry.split(address)
            response.trigger = TriggerInfo(pc=pc, address=address, region=region, offset=offset)
        sector.set_block(self.geometry.offset(address))
        return response

    def _victim_evictions(self, victim: SectorState) -> List[int]:
        """Blocks that must leave the real cache when a sector is displaced.

        The logical sectored organisation does not constrain the real cache,
        so this is empty; the decoupled sectored subclass overrides it.
        """
        return []

    def observe_removal(self, block_address: int, invalidated: bool = False) -> TrainerResponse:
        response = TrainerResponse()
        sector = self.tags.probe(block_address)
        if sector is None:
            return response
        # A block of an in-flight generation left the cache: the generation
        # ends (the footprint must describe simultaneously-resident blocks).
        offset = self.geometry.offset(block_address)
        if sector.has_block(offset):
            removed = self.tags.remove(block_address)
            completed = self._sector_to_completed(removed)
            if completed is not None:
                response.completed.append(completed)
        return response

    def drain(self) -> List[CompletedGeneration]:
        drained = []
        for sector in self.tags.sectors():
            completed = self._sector_to_completed(sector)
            if completed is not None:
                drained.append(completed)
        return drained


class DecoupledSectoredTrainer(LogicalSectoredTrainer):
    """Training on a decoupled sectored cache.

    The sector tags *are* the cache tags: when a sector is displaced by a
    conflict, every block of that sector leaves the cache.  The trainer
    reports those blocks as forced evictions and the engine applies them to
    the L1, reproducing the extra conflict misses the paper observes for the
    decoupled sectored organisation (Figure 8).
    """

    name = "decoupled-sectored"

    def _victim_evictions(self, victim: SectorState) -> List[int]:
        evictions = []
        for offset, valid in enumerate(victim.valid_bits):
            if valid:
                evictions.append(self.geometry.block_at_offset(victim.region, offset))
        return evictions


def make_trainer(
    name: str,
    geometry: RegionGeometry,
    filter_entries: Optional[int] = 32,
    accumulation_entries: Optional[int] = 64,
    cache_capacity: int = 64 * 1024,
    cache_associativity: int = 2,
) -> SpatialTrainer:
    """Construct a training structure by name (``"agt"``, ``"logical-sectored"``,
    ``"decoupled-sectored"``)."""
    key = name.lower().strip()
    if key in ("agt", "active-generation-table"):
        return AGTTrainer(
            geometry,
            filter_entries=filter_entries,
            accumulation_entries=accumulation_entries,
        )
    if key in ("logical-sectored", "ls", "logical"):
        return LogicalSectoredTrainer(
            geometry,
            cache_capacity=cache_capacity,
            cache_associativity=cache_associativity,
        )
    if key in ("decoupled-sectored", "ds", "decoupled"):
        return DecoupledSectoredTrainer(
            geometry,
            cache_capacity=cache_capacity,
            cache_associativity=cache_associativity,
        )
    raise ValueError(
        f"unknown trainer {name!r}; choose from 'agt', 'logical-sectored', 'decoupled-sectored'"
    )
