"""Prediction index schemes.

The key problem in SMS is choosing an index that is strongly correlated with
recurring spatial patterns (Section 2.2).  The paper compares four schemes
(Figure 6):

* **Address** — the trigger access's block address.  Storage scales with data
  set size and cold (never-visited) data cannot be predicted.
* **PC+address** — trigger PC combined with the trigger block address; the
  most precise but also the most storage-hungry.
* **PC** — trigger PC alone; compact but cannot distinguish traversals of
  different data structures by the same code.
* **PC+offset** — trigger PC combined with the trigger's spatial region
  offset; compact (scales with code size), distinguishes alignment-shifted
  traversals, and can predict previously-unvisited data.  This is SMS's
  choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Type

from repro.core.region import RegionGeometry


@dataclass(frozen=True)
class TriggerInfo:
    """Information about the trigger access of a spatial region generation."""

    pc: int
    address: int
    region: int
    offset: int


class IndexScheme:
    """Maps a trigger access to a prediction-table key."""

    name = "abstract"
    uses_pc = False
    uses_address = False
    uses_offset = False

    def __init__(self, geometry: RegionGeometry) -> None:
        self.geometry = geometry

    def key(self, trigger: TriggerInfo) -> Tuple[int, ...]:
        """Return the hashable PHT key for ``trigger``."""
        raise NotImplementedError

    def key_for(self, pc: int, address: int) -> Tuple[int, ...]:
        """Convenience wrapper building the key directly from a (pc, address) pair."""
        region, offset = self.geometry.split(address)
        return self.key(TriggerInfo(pc=pc, address=address, region=region, offset=offset))

    def storage_scales_with_data(self) -> bool:
        """True if the number of distinct keys grows with the data set size."""
        return self.uses_address

    def can_predict_unvisited_data(self) -> bool:
        """True if the scheme can predict accesses to never-before-seen addresses."""
        return not self.uses_address

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.geometry.describe()})"


class AddressIndex(IndexScheme):
    """Index by the trigger access's block address."""

    name = "address"
    uses_address = True

    def key(self, trigger: TriggerInfo) -> Tuple[int, ...]:
        return ("addr", self.geometry.block_address(trigger.address))


class PCIndex(IndexScheme):
    """Index by the trigger access's program counter alone."""

    name = "pc"
    uses_pc = True

    def key(self, trigger: TriggerInfo) -> Tuple[int, ...]:
        return ("pc", trigger.pc)


class PCAddressIndex(IndexScheme):
    """Index by the trigger PC combined with the trigger block address."""

    name = "pc+address"
    uses_pc = True
    uses_address = True

    def key(self, trigger: TriggerInfo) -> Tuple[int, ...]:
        return ("pc+addr", trigger.pc, self.geometry.block_address(trigger.address))


class PCOffsetIndex(IndexScheme):
    """Index by the trigger PC combined with the spatial region offset (SMS default)."""

    name = "pc+offset"
    uses_pc = True
    uses_offset = True

    def key(self, trigger: TriggerInfo) -> Tuple[int, ...]:
        return ("pc+off", trigger.pc, trigger.offset)


_SCHEMES: Dict[str, Type[IndexScheme]] = {
    "address": AddressIndex,
    "addr": AddressIndex,
    "pc": PCIndex,
    "pc+address": PCAddressIndex,
    "pc+addr": PCAddressIndex,
    "pc+offset": PCOffsetIndex,
    "pc+off": PCOffsetIndex,
}


def make_index_scheme(name: str, geometry: RegionGeometry) -> IndexScheme:
    """Construct an index scheme by name.

    Accepted names: ``"address"``, ``"pc"``, ``"pc+address"``, ``"pc+offset"``
    (plus the short aliases ``"addr"``, ``"pc+addr"``, ``"pc+off"``).
    """
    key = name.lower().strip()
    if key not in _SCHEMES:
        raise ValueError(
            f"unknown index scheme {name!r}; choose from "
            f"{sorted(set(cls.name for cls in _SCHEMES.values()))}"
        )
    return _SCHEMES[key](geometry)
