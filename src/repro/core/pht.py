"""Pattern History Table with pluggable storage backends.

The PHT (Section 3.2) is the long-term store of spatial patterns.  It is
organised as a set-associative structure similar to a cache: the prediction
index (derived from the trigger access) selects a set, the remaining index
bits form the tag, and each entry holds the spatial pattern accumulated by
the AGT.  An unbounded variant supports the paper's "infinite PHT"
opportunity studies.

Storage backends
----------------

:class:`PatternHistoryTable` owns set selection, statistics, merge policy and
the public API; the entries themselves live in one of three interchangeable
*backends* (selected with ``backend=`` / :attr:`SMSConfig.pht_backend`):

``dict``
    One ``OrderedDict`` per set — the historical representation.  Fastest
    for small tables; every stored pattern is a boxed Python object.

``array``
    Entries bit-packed into preallocated flat slabs (``array('Q')`` tag and
    recency-stamp lanes plus a pattern ``bytearray``), so a million-entry
    PHT costs ~20 MB of flat memory instead of ~1M boxed objects.

``mmap``
    The same packed layout over an ``mmap``-ed file, so predictor state can
    exceed RAM and — for bounded tables given an explicit ``path`` — warm-
    start from a previous run's file (see :class:`MmapBackend`).

A :class:`ShardedPHT` store (``shards=N`` / :attr:`SMSConfig.pht_shards`)
partitions sets across N independent backend instances by ``stable_hash``,
preserving set selection and LRU-victim order bit-for-bit while splitting
predictor state into independently allocated (and potentially
independently-backed) slabs.

Packed entry layout
-------------------

The ``array`` and ``mmap`` backends share one layout.  A bounded table with
``S`` sets of associativity ``A`` allocates ``n = S*A`` entry slots in three
structure-of-arrays lanes (SoA keeps the tag scan a flat integer-lane walk)::

    tags   : n * u64   -- full 64-bit ``stable_hash`` of the entry's key
    stamps : n * u64   -- recency stamp; 0 marks an empty slot
    pats   : n * ceil(num_blocks / 8) bytes -- little-endian pattern bits

Set ``s`` owns the contiguous slot range ``[s*A, (s+1)*A)``.  Recency is a
per-table monotonic counter copied into ``stamps`` on every touch (store or
recency-updating lookup), so the LRU victim of a full set is the minimum
stamp — exactly the front of the ``OrderedDict`` the dict backend keeps.
A bounded ``mmap`` file starts with a 24-byte geometry header (magic
``PHTS``, version, associativity, local slots, pattern width, global set
count, shard index, shard count — see :attr:`MmapBackend.HEADER`) followed
by the three lanes back to back, so the pattern lane starts at byte
``24 + 16 * n``; warm starts reuse a file only when the header matches
exactly.

Unbounded packed tables never evict, so they drop the stamp lane and the
per-set scan: patterns append to a growable slab indexed by a
``tag -> slot`` integer map (freed slots are recycled).

Packed backends identify an entry by the 64-bit ``stable_hash`` of its key
rather than the key itself.  Two keys whose full 64-bit hashes collide
*within one set* would alias; the FNV-1a mix makes that probability ~2**-64
per resident pair, which is treated as negligible (the dict backend remains
the reference representation with exact key identity).

The hardware storage *model* (:meth:`SMSConfig.storage_bits`) is unchanged
by the backend choice: it continues to charge ``tag + pattern`` bits per
entry; the 64-bit tags and stamps above are host-implementation detail, not
modelled hardware cost.
"""

from __future__ import annotations

import mmap as _mmap
import os
import struct
import tempfile
from array import array
from collections import OrderedDict
from functools import lru_cache
from pathlib import Path
from typing import Hashable, Iterator, List, Optional, Sequence, Union

from repro import _env
from repro.core.pattern import SpatialPattern

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64_MASK = 0xFFFFFFFFFFFFFFFF


def _mix(value: int, data: bytes) -> int:
    """One FNV-1a round over ``data`` (module-level: defined once, not per call)."""
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _U64_MASK
    return value


def _encode(element) -> bytes:
    """Canonical byte encoding of one key element.

    Integers take a dedicated path (``str`` of an int is its repr, without
    the generic ``repr`` dispatch); everything else keeps the original
    ``repr`` encoding.  The encoding — and therefore every hash value — is
    identical to the historical implementation, which the pinned regression
    test in ``tests/test_pht.py`` enforces.
    """
    if type(element) is int:
        return str(element).encode()
    return repr(element).encode("utf-8")


def _hash_uncached(key: Hashable) -> int:
    state = _FNV_OFFSET
    if isinstance(key, tuple):
        for element in key:
            state = _mix(state, _encode(element))
    else:
        state = _mix(state, _encode(key))
    return state


_hash_cached = lru_cache(maxsize=65536)(_hash_uncached)


def stable_hash(key: Hashable) -> int:
    """Deterministic (process-independent) hash for PHT keys.

    Python's built-in ``hash`` is randomised for strings across processes;
    PHT set selection must be reproducible, so we use an FNV-1a style mix
    over a canonical encoding of the key.

    This sits on the per-lookup hot path of every PHT access, so it is
    memoized: trigger keys recur constantly (the key space is bounded by
    PCs × region offsets), making repeated hashes a single dict probe
    instead of a byte-wise mixing loop.  The memo keys on equality while the
    encoding keys on ``repr``, so only keys for which equality implies an
    identical encoding — ints and strings, the PHT key domain — take the
    cached path; anything else (``True`` == ``1``, ``1.0`` == ``1``) is
    hashed directly to keep the result independent of call order.
    """
    if isinstance(key, tuple):
        for element in key:
            kind = type(element)
            if kind is not int and kind is not str:
                return _hash_uncached(key)
        return _hash_cached(key)
    kind = type(key)
    if kind is int or kind is str:
        return _hash_cached(key)
    return _hash_uncached(key)


#: Backend names accepted by :class:`PatternHistoryTable` and ``SMSConfig``.
PHT_BACKENDS = ("dict", "array", "mmap")

#: Environment variable selecting where ``mmap`` backends place their
#: backing files when the caller gives neither a ``path`` nor a ``dir``.
PHT_DIR_ENV = "REPRO_PHT_DIR"

#: Sentinel distinguishing "never configured" from "explicitly cleared".
_MMAP_DIR_UNSET = object()
_default_mmap_dir = _MMAP_DIR_UNSET


def set_default_mmap_dir(path):
    """Set (or, with ``None``, clear) the ambient mmap-backing directory.

    Tables built without an explicit ``mmap_dir``/``mmap_path`` — which is
    every table the engine constructs through :meth:`SMSConfig.make_pht` —
    place their backing files here instead of the system temp directory.
    Long-lived processes (the ``repro.serve`` worker pool gives each worker
    its own scratch directory) use this to keep predictor mmap state on one
    warm, process-private file set.  The files are anonymous temporaries:
    no pattern state leaks between runs, so results stay bit-identical to a
    cold run.

    Returns an opaque token for the previous setting; pass it back to
    restore (the same protocol as
    :func:`repro.simulation.result_cache.set_default_cache`).
    """
    global _default_mmap_dir
    previous = _default_mmap_dir
    _default_mmap_dir = path
    return previous


def default_mmap_dir() -> Optional[Path]:
    """Ambient mmap-backing directory: the explicit setting, else
    ``$REPRO_PHT_DIR``, else ``None`` (system temp directory)."""
    if _default_mmap_dir is not _MMAP_DIR_UNSET:
        return Path(_default_mmap_dir) if _default_mmap_dir is not None else None
    override = _env.read(PHT_DIR_ENV)
    return Path(override).expanduser() if override else None


# --------------------------------------------------------------------------- #
# Storage backends
# --------------------------------------------------------------------------- #
class PHTBackend:
    """Interface every PHT storage backend implements.

    A backend stores ``(key, pattern-bits)`` entries partitioned into
    fixed-associativity LRU sets (or one unbounded set).  It is deliberately
    dumb: set selection, statistics, merge policy, and pattern (de)boxing
    all live in :class:`PatternHistoryTable`, so backends only need to agree
    on recency/victim order for the golden counters to match bit-for-bit.

    ``h`` is the precomputed ``stable_hash`` of ``key``; dict-based storage
    identifies entries by ``key``, packed storage by ``h``.
    """

    kind: str = "abstract"

    #: Number of live entries; maintained incrementally by every mutation.
    occupancy: int = 0

    def lookup(self, set_index: int, h: int, key: Hashable, touch: bool) -> Optional[int]:
        """Return the stored pattern bits, updating recency when ``touch``."""
        raise NotImplementedError

    def store(self, set_index: int, h: int, key: Hashable, bits: int, union: bool) -> bool:
        """Insert/overwrite an entry; return True when a victim was evicted."""
        raise NotImplementedError

    def invalidate(self, set_index: int, h: int, key: Hashable) -> Optional[int]:
        """Remove an entry, returning its pattern bits if present."""
        raise NotImplementedError

    def iter_bits(self) -> Iterator[int]:
        """Yield the pattern bits of every live entry (arbitrary order)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (files, maps); idempotent."""


class DictBackend(PHTBackend):
    """The historical representation: one ``OrderedDict`` per set.

    Exact key identity (no tag aliasing) and OrderedDict recency order make
    this the semantic reference the packed backends are tested against.
    An unbounded table is a single set that never evicts.
    """

    kind = "dict"

    def __init__(
        self, num_blocks: int, num_sets: int, associativity: int, unbounded: bool
    ) -> None:
        self.associativity = associativity
        self.unbounded = unbounded
        self._sets: List["OrderedDict[Hashable, int]"] = [
            OrderedDict() for _ in range(1 if unbounded else num_sets)
        ]
        self.occupancy = 0

    def lookup(self, set_index: int, h: int, key: Hashable, touch: bool) -> Optional[int]:
        table = self._sets[set_index]
        bits = table.get(key)
        if bits is None:
            return None
        if touch:
            table.move_to_end(key)
        return bits

    def store(self, set_index: int, h: int, key: Hashable, bits: int, union: bool) -> bool:
        table = self._sets[set_index]
        existing = table.get(key)
        evicted = False
        if existing is not None:
            if union:
                bits |= existing
        elif not self.unbounded and len(table) >= self.associativity:
            table.popitem(last=False)
            evicted = True
        else:
            self.occupancy += 1
        table[key] = bits
        table.move_to_end(key)
        return evicted

    def invalidate(self, set_index: int, h: int, key: Hashable) -> Optional[int]:
        bits = self._sets[set_index].pop(key, None)
        if bits is not None:
            self.occupancy -= 1
        return bits

    def iter_bits(self) -> Iterator[int]:
        for table in self._sets:
            yield from table.values()


class _PackedBackend(PHTBackend):
    """Shared logic of the flat (``array``/``mmap``) backends.

    Subclasses provide the storage: ``_setup_bounded``/``_setup_unbounded``
    must leave ``self._tags`` / ``self._stamps`` (u64 lanes supporting int
    indexing) and ``self._pats`` (a byte buffer supporting slice get/set)
    behind; unbounded storage also implements ``_ensure_capacity``.
    See the module docstring for the entry layout.
    """

    def __init__(
        self, num_blocks: int, num_sets: int, associativity: int, unbounded: bool
    ) -> None:
        self.num_blocks = num_blocks
        self.pat_bytes = (num_blocks + 7) // 8
        self.associativity = associativity
        self.unbounded = unbounded
        self.occupancy = 0
        self._clock = 0
        if unbounded:
            self._index: dict = {}  # tag -> slot
            self._free: List[int] = []
            self._size = 0  # slots ever allocated (== high-water mark)
            self._setup_unbounded()
        else:
            self._setup_bounded(num_sets * associativity)

    # -- storage hooks ------------------------------------------------- #
    def _setup_bounded(self, slots: int) -> None:
        raise NotImplementedError

    def _setup_unbounded(self) -> None:
        raise NotImplementedError

    def _ensure_capacity(self, slots: int) -> None:
        raise NotImplementedError

    # -- packed pattern access ----------------------------------------- #
    def _read(self, slot: int) -> int:
        offset = slot * self.pat_bytes
        return int.from_bytes(self._pats[offset : offset + self.pat_bytes], "little")

    def _write(self, slot: int, bits: int) -> None:
        offset = slot * self.pat_bytes
        self._pats[offset : offset + self.pat_bytes] = bits.to_bytes(self.pat_bytes, "little")

    # -- bounded set scan ---------------------------------------------- #
    def _find(self, set_index: int, tag: int) -> int:
        base = set_index * self.associativity
        tags = self._tags
        stamps = self._stamps
        for slot in range(base, base + self.associativity):
            if stamps[slot] and tags[slot] == tag:
                return slot
        return -1

    # -- PHTBackend interface ------------------------------------------ #
    def lookup(self, set_index: int, h: int, key: Hashable, touch: bool) -> Optional[int]:
        if self.unbounded:
            slot = self._index.get(h)
            if slot is None:
                return None
            return self._read(slot)
        slot = self._find(set_index, h)
        if slot < 0:
            return None
        if touch:
            self._clock += 1
            self._stamps[slot] = self._clock
        return self._read(slot)

    def store(self, set_index: int, h: int, key: Hashable, bits: int, union: bool) -> bool:
        if self.unbounded:
            slot = self._index.get(h)
            if slot is None:
                if self._free:
                    slot = self._free.pop()
                else:
                    slot = self._size
                    self._size += 1
                    self._ensure_capacity(self._size)
                self._index[h] = slot
                self.occupancy += 1
            elif union:
                bits |= self._read(slot)
            self._write(slot, bits)
            return False
        evicted = False
        slot = self._find(set_index, h)
        if slot < 0:
            base = set_index * self.associativity
            stamps = self._stamps
            victim = -1
            victim_stamp = 0
            for candidate in range(base, base + self.associativity):
                stamp = stamps[candidate]
                if stamp == 0:
                    slot = candidate  # empty slot: no eviction needed
                    break
                if victim < 0 or stamp < victim_stamp:
                    victim, victim_stamp = candidate, stamp
            if slot < 0:
                slot = victim  # full set: evict the minimum (=LRU) stamp
                evicted = True
            else:
                self.occupancy += 1
            self._tags[slot] = h
        elif union:
            bits |= self._read(slot)
        self._clock += 1
        self._stamps[slot] = self._clock
        self._write(slot, bits)
        return evicted

    def invalidate(self, set_index: int, h: int, key: Hashable) -> Optional[int]:
        if self.unbounded:
            slot = self._index.pop(h, None)
            if slot is None:
                return None
            self._free.append(slot)
            self.occupancy -= 1
            return self._read(slot)
        slot = self._find(set_index, h)
        if slot < 0:
            return None
        bits = self._read(slot)
        self._stamps[slot] = 0
        self.occupancy -= 1
        return bits

    def iter_bits(self) -> Iterator[int]:
        if self.unbounded:
            for slot in self._index.values():
                yield self._read(slot)
            return
        stamps = self._stamps
        for slot in range(len(stamps)):
            if stamps[slot]:
                yield self._read(slot)


class ArrayBackend(_PackedBackend):
    """Packed entries in process memory: ``array('Q')`` lanes + ``bytearray``."""

    kind = "array"

    def _setup_bounded(self, slots: int) -> None:
        self._tags = array("Q", bytes(8 * slots))
        self._stamps = array("Q", bytes(8 * slots))
        self._pats = bytearray(self.pat_bytes * slots)

    def _setup_unbounded(self) -> None:
        self._pats = bytearray()

    def _ensure_capacity(self, slots: int) -> None:
        needed = slots * self.pat_bytes
        if needed > len(self._pats):
            self._pats += bytes(needed - len(self._pats))


class MmapBackend(_PackedBackend):
    """Packed entries over an ``mmap``-ed file.

    Lets predictor state exceed RAM (the OS pages cold sets out).  Without a
    ``path`` the backing file is an unlinked temporary (``dir`` selects
    where), freed when the backend is closed or garbage-collected.

    An explicit ``path`` makes a *bounded* table warm-startable: a file
    whose geometry header (:attr:`HEADER`, including the global set count
    and shard partitioning) matches is re-opened in place and its entries (tags,
    recency order, patterns) restored — the recency clock resumes from the
    maximum stored stamp, so LRU order survives the round trip.  Any other
    file shape is reset, never silently reinterpreted.  One writer at a
    time: concurrent processes mapping the same file are not synchronised.
    Unbounded tables keep their ``tag -> slot`` index in process memory, so
    an explicit path persists bytes but cannot be reloaded; they always
    start fresh.
    """

    kind = "mmap"

    #: Bounded-file geometry header: magic, version, associativity, local
    #: slots, pattern width in blocks, global set count, shard index, shard
    #: count.  The three SoA lanes follow it.  The shard/global fields make
    #: a shard file self-describing: a file whose *local* shape matches but
    #: that was written under a different (num_entries, shards) partitioning
    #: routes keys differently and must not be reused.
    HEADER = struct.Struct("<4sHHIIIHH")
    MAGIC = b"PHTS"
    VERSION = 1

    def __init__(
        self,
        num_blocks: int,
        num_sets: int,
        associativity: int,
        unbounded: bool,
        path: Optional[Union[str, Path]] = None,
        dir: Optional[Union[str, Path]] = None,
        shard_index: int = 0,
        shard_count: int = 1,
        global_sets: Optional[int] = None,
    ) -> None:
        self._file = None
        self._mm = None
        self._views: List[memoryview] = []
        self._requested_path = Path(path) if path is not None else None
        self._dir = str(dir) if dir is not None else None
        self._shard_index = shard_index
        self._shard_count = shard_count
        self._global_sets = num_sets if global_sets is None else global_sets
        super().__init__(num_blocks, num_sets, associativity, unbounded)

    # -- file plumbing -------------------------------------------------- #
    def _open_map(self, size: int, header: Optional[bytes] = None) -> bool:
        """Map ``size`` bytes; return True when an existing file was reused.

        An explicit path is reused only when the file has exactly ``size``
        bytes *and* starts with the expected geometry ``header``; any other
        shape is reset to zeros — never silently reinterpreted.
        """
        reused = False
        if self._requested_path is not None:
            exists = self._requested_path.exists()
            self._file = open(self._requested_path, "r+b" if exists else "w+b")
            if (
                exists
                and header is not None
                and os.fstat(self._file.fileno()).st_size == size
                and self._file.read(len(header)) == header
            ):
                reused = True
            else:
                self._file.truncate(0)  # wrong geometry: back to zeros
                self._file.truncate(size)
        else:
            self._file = tempfile.NamedTemporaryFile(
                prefix="repro-pht-", suffix=".mmap", dir=self._dir
            )
            self._file.truncate(size)
        self._mm = _mmap.mmap(self._file.fileno(), size)
        return reused

    def _setup_bounded(self, slots: int) -> None:
        if slots == 0:
            # A zero-set shard (more shards than sets): nothing to map.
            self._tags = array("Q")
            self._stamps = array("Q")
            self._pats = bytearray()
            return
        header = self.HEADER.pack(
            self.MAGIC, self.VERSION, self.associativity, slots, self.num_blocks,
            self._global_sets, self._shard_index, self._shard_count,
        )
        base = self.HEADER.size
        reused = self._open_map(base + slots * (16 + self.pat_bytes), header=header)
        if not reused:
            self._mm[0:base] = header
        view = memoryview(self._mm)
        self._tags = view[base : base + 8 * slots].cast("Q")
        self._stamps = view[base + 8 * slots : base + 16 * slots].cast("Q")
        self._pats = view[base + 16 * slots :]
        self._views = [view, self._tags, self._stamps, self._pats]
        if reused:
            # Warm start: rebuild the derived state the file does not carry.
            stamps = self._stamps
            for slot in range(slots):
                stamp = stamps[slot]
                if stamp:
                    self.occupancy += 1
                    if stamp > self._clock:
                        self._clock = stamp

    def _setup_unbounded(self) -> None:
        # Patterns only (no tag/stamp lanes, see module docstring); accessed
        # through mmap slicing directly so the map stays resizable (exported
        # memoryviews would make mmap.resize raise BufferError).
        self._open_map(_mmap.PAGESIZE)
        self._pats = self._mm

    def _ensure_capacity(self, slots: int) -> None:
        needed = slots * self.pat_bytes
        current = len(self._mm)
        if needed > current:
            self._mm.resize(max(needed, current * 2))

    def close(self) -> None:
        for view in self._views:
            view.release()
        self._views = []
        self._tags = array("Q")
        self._stamps = array("Q")
        self._pats = bytearray()
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # repro: ignore[EXC001] -- interpreter teardown: close() may fail arbitrarily mid-GC
            pass


class ShardedPHT(PHTBackend):
    """Routes sets across N independent backend shards by ``stable_hash``.

    Bounded tables assign global set ``s`` to shard ``s % N`` at local set
    index ``s // N``; since every set is an independent LRU domain, results
    are bit-for-bit identical to a monolithic backend.  Unbounded tables
    have a single logical set, so keys are routed by ``stable_hash(key) %
    N`` instead — again semantics-preserving because unbounded storage
    treats every key independently.
    """

    kind = "sharded"

    def __init__(self, shards: Sequence[PHTBackend], unbounded: bool) -> None:
        if not shards:
            raise ValueError("ShardedPHT needs at least one shard")
        self.shards = list(shards)
        self.num_shards = len(self.shards)
        self.unbounded = unbounded

    def _route(self, set_index: int, h: int):
        if self.unbounded:
            return self.shards[h % self.num_shards], 0
        return self.shards[set_index % self.num_shards], set_index // self.num_shards

    def lookup(self, set_index: int, h: int, key: Hashable, touch: bool) -> Optional[int]:
        shard, local = self._route(set_index, h)
        return shard.lookup(local, h, key, touch)

    def store(self, set_index: int, h: int, key: Hashable, bits: int, union: bool) -> bool:
        shard, local = self._route(set_index, h)
        return shard.store(local, h, key, bits, union)

    def invalidate(self, set_index: int, h: int, key: Hashable) -> Optional[int]:
        shard, local = self._route(set_index, h)
        return shard.invalidate(local, h, key)

    @property
    def occupancy(self) -> int:  # type: ignore[override]
        return sum(shard.occupancy for shard in self.shards)

    def iter_bits(self) -> Iterator[int]:
        for shard in self.shards:
            yield from shard.iter_bits()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


def make_pht_store(
    backend: str,
    num_blocks: int,
    num_sets: int,
    associativity: int,
    unbounded: bool,
    shards: int = 1,
    mmap_dir: Optional[Union[str, Path]] = None,
    mmap_path: Optional[Union[str, Path]] = None,
) -> PHTBackend:
    """Build the storage for one PHT: a single backend or a sharded group.

    Bounded sharding distributes the ``num_sets`` sets round-robin, so shard
    ``i`` holds ``ceil((num_sets - i) / shards)`` local sets; unbounded
    sharding gives every shard one unbounded set.  ``mmap_path`` gives the
    ``mmap`` backend a persistent backing file (warm-startable for bounded
    tables); with ``shards > 1`` each shard gets ``<stem>-shard<i><suffix>``.
    """
    if backend not in PHT_BACKENDS:
        raise ValueError(f"backend must be one of {PHT_BACKENDS}, got {backend!r}")
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    if mmap_path is not None and backend != "mmap":
        raise ValueError(f"mmap_path only applies to the mmap backend, got {backend!r}")
    if backend == "mmap" and mmap_dir is None and mmap_path is None:
        mmap_dir = default_mmap_dir()
        if mmap_dir is not None:
            Path(mmap_dir).mkdir(parents=True, exist_ok=True)

    def shard_path(index: int) -> Optional[Path]:
        if mmap_path is None:
            return None
        path = Path(mmap_path)
        if shards == 1:
            return path
        return path.with_name(f"{path.stem}-shard{index}{path.suffix}")

    def build(local_sets: int, index: int = 0) -> PHTBackend:
        if backend == "dict":
            return DictBackend(num_blocks, local_sets, associativity, unbounded)
        if backend == "array":
            return ArrayBackend(num_blocks, local_sets, associativity, unbounded)
        return MmapBackend(
            num_blocks, local_sets, associativity, unbounded,
            path=shard_path(index), dir=mmap_dir,
            shard_index=index, shard_count=shards, global_sets=num_sets,
        )

    if shards == 1:
        return build(num_sets)
    if unbounded:
        return ShardedPHT([build(1, i) for i in range(shards)], unbounded=True)
    counts = [num_sets // shards + (1 if i < num_sets % shards else 0) for i in range(shards)]
    return ShardedPHT(
        [build(count, i) for i, count in enumerate(counts)], unbounded=False
    )


# --------------------------------------------------------------------------- #
# The table
# --------------------------------------------------------------------------- #
class PatternHistoryTable:
    """Set-associative (or unbounded) storage of spatial patterns.

    The public API — ``lookup`` / ``probe`` / ``store`` / ``invalidate``,
    the statistics counters, ``occupancy`` and ``is_unbounded`` — is
    identical across every storage backend; golden-counter tests pin that
    equivalence (``tests/test_pht_backends.py``).
    """

    def __init__(
        self,
        num_blocks: int,
        num_entries: Optional[int] = 16384,
        associativity: int = 16,
        merge: str = "replace",
        backend: str = "dict",
        shards: int = 1,
        mmap_dir: Optional[Union[str, Path]] = None,
        mmap_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if num_entries is not None:
            if num_entries <= 0:
                raise ValueError(f"num_entries must be positive or None, got {num_entries}")
            if associativity <= 0 or num_entries % associativity != 0:
                raise ValueError(
                    f"num_entries ({num_entries}) must be a positive multiple of "
                    f"associativity ({associativity})"
                )
        if merge not in ("replace", "union"):
            raise ValueError(f"merge must be 'replace' or 'union', got {merge!r}")
        self.num_blocks = num_blocks
        self.num_entries = num_entries
        self.associativity = associativity
        self.merge = merge
        self.backend = backend
        self.shards = shards
        self.num_sets = 1 if num_entries is None else num_entries // associativity
        self._store = make_pht_store(
            backend,
            num_blocks,
            self.num_sets,
            associativity,
            unbounded=num_entries is None,
            shards=shards,
            mmap_dir=mmap_dir,
            mmap_path=mmap_path,
        )
        # A monolithic unbounded dict ignores the hash entirely (single set,
        # exact-key storage): skip hashing on its per-access hot path, as the
        # pre-backend implementation did.
        self._hash_needed = not (num_entries is None and backend == "dict" and shards == 1)
        # Interned SpatialPattern per bit value: stored bits recur heavily,
        # so backends can hold raw ints while lookups still return (shared)
        # pattern objects without re-validating on every hit.
        self._patterns: dict = {}
        self.lookups = 0
        self.hits = 0
        self.stores = 0
        self.replacements = 0

    # ------------------------------------------------------------------ #
    @property
    def is_unbounded(self) -> bool:
        return self.num_entries is None

    @property
    def occupancy(self) -> int:
        """Live entry count (tracked incrementally by the backend)."""
        return self._store.occupancy

    #: Intern-cache bound: past this many distinct bit values the cache is
    #: reset, so boxed patterns never rival the packed slabs they stand for.
    _PATTERN_CACHE_LIMIT = 65536

    def _pattern(self, bits: int) -> SpatialPattern:
        pattern = self._patterns.get(bits)
        if pattern is None:
            if len(self._patterns) >= self._PATTERN_CACHE_LIMIT:
                self._patterns.clear()
            pattern = SpatialPattern(num_blocks=self.num_blocks, bits=bits)
            self._patterns[bits] = pattern
        return pattern

    def _locate(self, key: Hashable):
        """Return ``(set_index, stable_hash)`` for ``key``.

        Monolithic unbounded dict storage never consumes the hash, so it is
        skipped there (``h=0``) to keep that hot path hash-free.
        """
        if self.num_entries is None:
            return 0, (stable_hash(key) if self._hash_needed else 0)
        h = stable_hash(key)
        return h % self.num_sets, h

    # ------------------------------------------------------------------ #
    def lookup(self, key: Hashable) -> Optional[SpatialPattern]:
        """Return the stored pattern for ``key`` (updating recency), or None."""
        self.lookups += 1
        set_index, h = self._locate(key)
        bits = self._store.lookup(set_index, h, key, touch=True)
        if bits is None:
            return None
        self.hits += 1
        return self._pattern(bits)

    def lookup_bits(self, key: Hashable) -> Optional[int]:
        """Lane-path :meth:`lookup`: same counters/recency, raw bits out.

        Returns the pattern's integer bit mask without interning a
        :class:`SpatialPattern`; the backends already store plain ints, so
        the lane train/predict path moves them end to end unboxed.  Counter
        effects are identical to :meth:`lookup` (a stored all-zero pattern
        still counts as a hit).
        """
        self.lookups += 1
        # _locate inlined (lane hot path).
        if self.num_entries is None:
            set_index = 0
            h = stable_hash(key) if self._hash_needed else 0
        else:
            h = stable_hash(key)
            set_index = h % self.num_sets
        bits = self._store.lookup(set_index, h, key, touch=True)
        if bits is None:
            return None
        self.hits += 1
        return bits

    def probe(self, key: Hashable) -> Optional[SpatialPattern]:
        """Return the stored pattern without updating recency or statistics."""
        set_index, h = self._locate(key)
        bits = self._store.lookup(set_index, h, key, touch=False)
        return None if bits is None else self._pattern(bits)

    def store(self, key: Hashable, pattern: SpatialPattern) -> None:
        """Record the pattern observed at the end of a generation."""
        if pattern.num_blocks != self.num_blocks:
            raise ValueError(
                f"pattern width {pattern.num_blocks} does not match PHT width {self.num_blocks}"
            )
        self.stores += 1
        set_index, h = self._locate(key)
        if self._store.store(set_index, h, key, pattern.bits, self.merge == "union"):
            self.replacements += 1

    def store_bits(self, key: Hashable, bits: int) -> None:
        """Lane-path :meth:`store`: raw bits in, no ``SpatialPattern`` boxed.

        The caller vouches that ``bits`` fits this table's pattern width
        (the AGT can only set offsets below ``num_blocks``, so lane callers
        satisfy that by construction); counter effects match :meth:`store`.
        """
        self.stores += 1
        # _locate inlined (lane hot path).
        if self.num_entries is None:
            set_index = 0
            h = stable_hash(key) if self._hash_needed else 0
        else:
            h = stable_hash(key)
            set_index = h % self.num_sets
        if self._store.store(set_index, h, key, bits, self.merge == "union"):
            self.replacements += 1

    def invalidate(self, key: Hashable) -> Optional[SpatialPattern]:
        """Remove ``key`` from the table, returning its pattern if present."""
        set_index, h = self._locate(key)
        bits = self._store.invalidate(set_index, h, key)
        return None if bits is None else self._pattern(bits)

    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def distinct_keys(self) -> int:
        """Number of distinct keys currently stored (storage-footprint metric)."""
        return self.occupancy

    def iter_patterns(self) -> Iterator[SpatialPattern]:
        """Yield every stored pattern (arbitrary order, any backend)."""
        for bits in self._store.iter_bits():
            yield self._pattern(bits)

    def close(self) -> None:
        """Release backend resources (mmap files); the table stays usable
        only for ``dict``/``array`` backends afterwards."""
        self._store.close()

    def __repr__(self) -> str:
        size = "unbounded" if self.is_unbounded else f"{self.num_entries}x{self.associativity}-way"
        extra = ""
        if self.backend != "dict" or self.shards != 1:
            extra = f", backend={self.backend}"
            if self.shards != 1:
                extra += f"x{self.shards}"
        return f"PatternHistoryTable({size}, {self.num_blocks}-block patterns{extra})"
