"""Pattern History Table.

The PHT (Section 3.2) is the long-term store of spatial patterns.  It is
organised as a set-associative structure similar to a cache: the prediction
index (derived from the trigger access) selects a set, the remaining index
bits form the tag, and each entry holds the spatial pattern accumulated by
the AGT.  An unbounded (dictionary-backed) variant supports the paper's
"infinite PHT" opportunity studies.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Hashable, List, Optional, Tuple

from repro.core.pattern import SpatialPattern

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64_MASK = 0xFFFFFFFFFFFFFFFF


def _mix(value: int, data: bytes) -> int:
    """One FNV-1a round over ``data`` (module-level: defined once, not per call)."""
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _U64_MASK
    return value


def _encode(element) -> bytes:
    """Canonical byte encoding of one key element.

    Integers take a dedicated path (``str`` of an int is its repr, without
    the generic ``repr`` dispatch); everything else keeps the original
    ``repr`` encoding.  The encoding — and therefore every hash value — is
    identical to the historical implementation, which the pinned regression
    test in ``tests/test_pht.py`` enforces.
    """
    if type(element) is int:
        return str(element).encode()
    return repr(element).encode("utf-8")


def _hash_uncached(key: Hashable) -> int:
    state = _FNV_OFFSET
    if isinstance(key, tuple):
        for element in key:
            state = _mix(state, _encode(element))
    else:
        state = _mix(state, _encode(key))
    return state


_hash_cached = lru_cache(maxsize=65536)(_hash_uncached)


def stable_hash(key: Hashable) -> int:
    """Deterministic (process-independent) hash for PHT keys.

    Python's built-in ``hash`` is randomised for strings across processes;
    PHT set selection must be reproducible, so we use an FNV-1a style mix
    over a canonical encoding of the key.

    This sits on the per-lookup hot path of every PHT access, so it is
    memoized: trigger keys recur constantly (the key space is bounded by
    PCs × region offsets), making repeated hashes a single dict probe
    instead of a byte-wise mixing loop.  The memo keys on equality while the
    encoding keys on ``repr``, so only keys for which equality implies an
    identical encoding — ints and strings, the PHT key domain — take the
    cached path; anything else (``True`` == ``1``, ``1.0`` == ``1``) is
    hashed directly to keep the result independent of call order.
    """
    if isinstance(key, tuple):
        for element in key:
            kind = type(element)
            if kind is not int and kind is not str:
                return _hash_uncached(key)
        return _hash_cached(key)
    kind = type(key)
    if kind is int or kind is str:
        return _hash_cached(key)
    return _hash_uncached(key)


class PatternHistoryTable:
    """Set-associative (or unbounded) storage of spatial patterns."""

    def __init__(
        self,
        num_blocks: int,
        num_entries: Optional[int] = 16384,
        associativity: int = 16,
        merge: str = "replace",
    ) -> None:
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if num_entries is not None:
            if num_entries <= 0:
                raise ValueError(f"num_entries must be positive or None, got {num_entries}")
            if associativity <= 0 or num_entries % associativity != 0:
                raise ValueError(
                    f"num_entries ({num_entries}) must be a positive multiple of "
                    f"associativity ({associativity})"
                )
        if merge not in ("replace", "union"):
            raise ValueError(f"merge must be 'replace' or 'union', got {merge!r}")
        self.num_blocks = num_blocks
        self.num_entries = num_entries
        self.associativity = associativity
        self.merge = merge
        self.num_sets = 1 if num_entries is None else num_entries // associativity
        # Each set is an OrderedDict key -> pattern, LRU order (oldest first).
        self._sets: List["OrderedDict[Hashable, SpatialPattern]"] = [
            OrderedDict() for _ in range(self.num_sets if num_entries is not None else 1)
        ]
        self._unbounded: "OrderedDict[Hashable, SpatialPattern]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.stores = 0
        self.replacements = 0

    # ------------------------------------------------------------------ #
    @property
    def is_unbounded(self) -> bool:
        return self.num_entries is None

    @property
    def occupancy(self) -> int:
        if self.is_unbounded:
            return len(self._unbounded)
        return sum(len(s) for s in self._sets)

    def _set_for(self, key: Hashable) -> "OrderedDict[Hashable, SpatialPattern]":
        if self.is_unbounded:
            return self._unbounded
        return self._sets[stable_hash(key) % self.num_sets]

    # ------------------------------------------------------------------ #
    def lookup(self, key: Hashable) -> Optional[SpatialPattern]:
        """Return the stored pattern for ``key`` (updating recency), or None."""
        self.lookups += 1
        table = self._set_for(key)
        pattern = table.get(key)
        if pattern is None:
            return None
        table.move_to_end(key)
        self.hits += 1
        return pattern

    def probe(self, key: Hashable) -> Optional[SpatialPattern]:
        """Return the stored pattern without updating recency or statistics."""
        return self._set_for(key).get(key)

    def store(self, key: Hashable, pattern: SpatialPattern) -> None:
        """Record the pattern observed at the end of a generation."""
        if pattern.num_blocks != self.num_blocks:
            raise ValueError(
                f"pattern width {pattern.num_blocks} does not match PHT width {self.num_blocks}"
            )
        self.stores += 1
        table = self._set_for(key)
        existing = table.get(key)
        if existing is not None and self.merge == "union":
            pattern = existing.union(pattern)
        if existing is None and not self.is_unbounded and len(table) >= self.associativity:
            table.popitem(last=False)
            self.replacements += 1
        table[key] = pattern
        table.move_to_end(key)

    def invalidate(self, key: Hashable) -> Optional[SpatialPattern]:
        """Remove ``key`` from the table, returning its pattern if present."""
        return self._set_for(key).pop(key, None)

    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def distinct_keys(self) -> int:
        """Number of distinct keys currently stored (storage-footprint metric)."""
        return self.occupancy

    def __repr__(self) -> str:
        size = "unbounded" if self.is_unbounded else f"{self.num_entries}x{self.associativity}-way"
        return f"PatternHistoryTable({size}, {self.num_blocks}-block patterns)"
