"""Spatial patterns.

A *spatial pattern* is a bit vector with one bit per cache block in a spatial
region; bit *i* is set if block *i* was accessed during the spatial region
generation (Section 2.1).  The class wraps an integer bit mask with the
operations the predictor, the analysis code, and the tests need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class SpatialPattern:
    """An immutable spatial pattern over ``num_blocks`` cache blocks."""

    num_blocks: int
    bits: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {self.num_blocks}")
        if self.bits < 0:
            raise ValueError(f"bits must be non-negative, got {self.bits}")
        if self.bits >> self.num_blocks:
            raise ValueError(
                f"bits {self.bits:#x} has bits set beyond {self.num_blocks} blocks"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_blocks: int) -> "SpatialPattern":
        """A pattern with no blocks set."""
        return cls(num_blocks=num_blocks, bits=0)

    @classmethod
    def full(cls, num_blocks: int) -> "SpatialPattern":
        """A pattern with every block set."""
        return cls(num_blocks=num_blocks, bits=(1 << num_blocks) - 1)

    @classmethod
    def from_offsets(cls, num_blocks: int, offsets: Iterable[int]) -> "SpatialPattern":
        """Build a pattern from the block offsets that were accessed."""
        bits = 0
        for offset in offsets:
            if not 0 <= offset < num_blocks:
                raise ValueError(f"offset {offset} out of range for {num_blocks}-block pattern")
            bits |= 1 << offset
        return cls(num_blocks=num_blocks, bits=bits)

    @classmethod
    def from_string(cls, text: str) -> "SpatialPattern":
        """Build a pattern from a string like ``"1011"`` (bit 0 first)."""
        cleaned = text.strip().replace(" ", "")
        if not cleaned or any(ch not in "01" for ch in cleaned):
            raise ValueError(f"pattern string must contain only 0/1, got {text!r}")
        bits = 0
        for index, ch in enumerate(cleaned):
            if ch == "1":
                bits |= 1 << index
        return cls(num_blocks=len(cleaned), bits=bits)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def test(self, offset: int) -> bool:
        """Return True if block ``offset`` is set."""
        self._check_offset(offset)
        return bool(self.bits >> offset & 1)

    def offsets(self) -> List[int]:
        """Return the sorted list of set block offsets."""
        return [i for i in range(self.num_blocks) if self.bits >> i & 1]

    @property
    def population(self) -> int:
        """Number of blocks set (the generation's access density)."""
        return bin(self.bits).count("1")

    @property
    def density(self) -> float:
        """Fraction of the region's blocks that are set."""
        return self.population / self.num_blocks

    @property
    def is_empty(self) -> bool:
        return self.bits == 0

    @property
    def is_singleton(self) -> bool:
        """True if exactly one block is set (a trigger-only generation)."""
        return self.population == 1

    # ------------------------------------------------------------------ #
    # Derivations (all return new patterns; SpatialPattern is immutable)
    # ------------------------------------------------------------------ #
    def with_offset(self, offset: int) -> "SpatialPattern":
        """Return a copy of this pattern with block ``offset`` set."""
        self._check_offset(offset)
        return SpatialPattern(num_blocks=self.num_blocks, bits=self.bits | (1 << offset))

    def without_offset(self, offset: int) -> "SpatialPattern":
        """Return a copy of this pattern with block ``offset`` cleared."""
        self._check_offset(offset)
        return SpatialPattern(num_blocks=self.num_blocks, bits=self.bits & ~(1 << offset))

    def union(self, other: "SpatialPattern") -> "SpatialPattern":
        self._check_compatible(other)
        return SpatialPattern(num_blocks=self.num_blocks, bits=self.bits | other.bits)

    def intersection(self, other: "SpatialPattern") -> "SpatialPattern":
        self._check_compatible(other)
        return SpatialPattern(num_blocks=self.num_blocks, bits=self.bits & other.bits)

    def difference(self, other: "SpatialPattern") -> "SpatialPattern":
        """Blocks set in self but not in ``other``."""
        self._check_compatible(other)
        return SpatialPattern(num_blocks=self.num_blocks, bits=self.bits & ~other.bits)

    def __or__(self, other: "SpatialPattern") -> "SpatialPattern":
        return self.union(other)

    def __and__(self, other: "SpatialPattern") -> "SpatialPattern":
        return self.intersection(other)

    def __sub__(self, other: "SpatialPattern") -> "SpatialPattern":
        return self.difference(other)

    def __iter__(self) -> Iterator[int]:
        return iter(self.offsets())

    def __len__(self) -> int:
        return self.num_blocks

    # ------------------------------------------------------------------ #
    # Scoring (used by the analysis package)
    # ------------------------------------------------------------------ #
    def covered_by(self, prediction: "SpatialPattern") -> int:
        """Number of this pattern's blocks that ``prediction`` also predicts."""
        self._check_compatible(prediction)
        return bin(self.bits & prediction.bits).count("1")

    def overpredicted_by(self, prediction: "SpatialPattern") -> int:
        """Number of blocks ``prediction`` predicts that this pattern never accesses."""
        self._check_compatible(prediction)
        return bin(prediction.bits & ~self.bits).count("1")

    # ------------------------------------------------------------------ #
    def to_string(self) -> str:
        """Render as a 0/1 string, bit 0 (lowest offset) first."""
        return "".join("1" if self.bits >> i & 1 else "0" for i in range(self.num_blocks))

    def __str__(self) -> str:
        return self.to_string()

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.num_blocks:
            raise ValueError(f"offset {offset} out of range for {self.num_blocks}-block pattern")

    def _check_compatible(self, other: "SpatialPattern") -> None:
        if self.num_blocks != other.num_blocks:
            raise ValueError(
                f"patterns have different widths ({self.num_blocks} vs {other.num_blocks})"
            )
