"""Spatial region geometry.

A *spatial region* is a fixed-size, aligned portion of the address space
consisting of multiple consecutive cache blocks (Section 2.1).  All the SMS
structures share one :class:`RegionGeometry` describing the region and block
sizes; it centralises every piece of address arithmetic the predictor needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.memory.block import (
    block_address,
    block_index_in_region,
    blocks_per_region,
    is_power_of_two,
    region_base,
)


@dataclass(frozen=True)
class RegionGeometry:
    """Geometry of spatial regions: region size and cache block size, in bytes."""

    region_size: int = 2048
    block_size: int = 64

    def __post_init__(self) -> None:
        if not is_power_of_two(self.region_size):
            raise ValueError(f"region_size must be a power of two, got {self.region_size}")
        if not is_power_of_two(self.block_size):
            raise ValueError(f"block_size must be a power of two, got {self.block_size}")
        if self.block_size > self.region_size:
            raise ValueError(
                f"block_size ({self.block_size}) cannot exceed region_size ({self.region_size})"
            )

    @property
    def blocks_per_region(self) -> int:
        """Number of cache blocks in one spatial region (the pattern width)."""
        return blocks_per_region(self.region_size, self.block_size)

    def region_base(self, address: int) -> int:
        """Base byte address of the region containing ``address``."""
        return region_base(address, self.region_size)

    def block_address(self, address: int) -> int:
        """Base byte address of the cache block containing ``address``."""
        return block_address(address, self.block_size)

    def offset(self, address: int) -> int:
        """Spatial region offset (block index within the region) of ``address``."""
        return block_index_in_region(address, self.region_size, self.block_size)

    def block_at_offset(self, region: int, offset: int) -> int:
        """Byte address of block ``offset`` within the region based at ``region``."""
        if not 0 <= offset < self.blocks_per_region:
            raise ValueError(
                f"offset {offset} out of range for {self.blocks_per_region}-block region"
            )
        return region + offset * self.block_size

    def blocks_in_region(self, region: int) -> Iterator[int]:
        """Iterate over the block addresses of the region based at ``region``."""
        base = self.region_base(region)
        for offset in range(self.blocks_per_region):
            yield base + offset * self.block_size

    def same_region(self, a: int, b: int) -> bool:
        """Return True if addresses ``a`` and ``b`` fall in the same region."""
        return self.region_base(a) == self.region_base(b)

    def split(self, address: int) -> tuple:
        """Return ``(region_base, offset)`` for ``address``."""
        return self.region_base(address), self.offset(address)

    def describe(self) -> str:
        return (
            f"{self.region_size}B regions of {self.blocks_per_region} x "
            f"{self.block_size}B blocks"
        )
