"""Spatial Memory Streaming (ISCA 2006) — a trace-driven reproduction.

The package is organised as the paper's system is:

* :mod:`repro.core` — the SMS predictor (AGT, PHT, prediction registers,
  index schemes, training structures);
* :mod:`repro.memory`, :mod:`repro.coherence`, :mod:`repro.interconnect` —
  the multiprocessor memory-system substrate;
* :mod:`repro.trace`, :mod:`repro.workloads` — access traces and the
  synthetic commercial/scientific workload models;
* :mod:`repro.prefetch` — the prefetcher interface and baselines (GHB PC/DC,
  stride, next-line, oracle);
* :mod:`repro.simulation` — the trace-driven engine, timing model, and
  sampling statistics;
* :mod:`repro.analysis` — coverage, density, and opportunity analyses;
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import SMSConfig, SpatialMemoryStreaming
    from repro.simulation import SimulationConfig, SimulationEngine
    from repro.workloads import make_workload

    workload = make_workload("oltp-db2", num_cpus=4, accesses_per_cpu=5000)
    config = SimulationConfig.small(num_cpus=4)
    engine = SimulationEngine(config, lambda cpu: SpatialMemoryStreaming(SMSConfig()))
    result = engine.run(workload)
    print(f"L1 coverage: {result.l1_coverage():.1%}")
"""

from repro.core import SMSConfig, SpatialMemoryStreaming
from repro.simulation import MachineConfig, SimulationConfig, SimulationEngine, TimingModel

__version__ = "1.0.0"

__all__ = [
    "SMSConfig",
    "SpatialMemoryStreaming",
    "SimulationConfig",
    "SimulationEngine",
    "MachineConfig",
    "TimingModel",
    "__version__",
]
