"""Scientific workload models: em3d, ocean, sparse.

These provide the frame of reference the paper uses for its commercial
results (Table 1):

* **em3d** — electromagnetic wave propagation on a bipartite graph (3M nodes,
  degree 2, 15% remote edges).  Each iteration sweeps a processor's own node
  partition sequentially (dense, highly predictable) and reads neighbour
  values, 15% of which live in other processors' partitions and are rewritten
  every iteration — producing bursty coherence misses with high MLP.
* **ocean** — a 1026x1026 red-black stencil relaxation.  Row-major sweeps with
  north/south neighbour rows give dense, extremely regular footprints;
  partition-boundary rows are shared between neighbouring processors.
* **sparse** — a 4096x4096 sparse matrix-vector kernel: the matrix (values +
  column indices) streams through the cache once per iteration (a working set
  far larger than the L2), while the dense vector mostly hits.  Nearly all
  misses are part of long sequential runs, which is why SMS covers ~92% of
  them and achieves its largest speedup.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.trace.record import MemoryAccess
from repro.workloads.base import (
    AddressSpace,
    CpuContext,
    SyntheticWorkload,
    WorkloadMetadata,
)

_PC_EM3D_NODE = 0x70_0000
_PC_EM3D_NEIGHBOR = 0x71_0000
_PC_EM3D_UPDATE = 0x72_0000
_PC_OCEAN_STENCIL = 0x73_0000
_PC_OCEAN_WRITE = 0x74_0000
_PC_SPARSE_ROW = 0x75_0000
_PC_SPARSE_COL = 0x76_0000
_PC_SPARSE_VEC = 0x77_0000

_REGION = 2048


class Em3dWorkload(SyntheticWorkload):
    """em3d: 3M nodes, degree 2, span 5, 15% remote edges."""

    metadata = WorkloadMetadata(
        name="em3d",
        category="Scientific",
        description="em3d: 3M nodes, degree 2, span 5, 15% remote",
        mlp_hint=4.5,
        store_intensity=0.2,
        system_fraction=0.02,
        overlap_discount=0.35,
        memory_stall_fraction=0.75,
    )

    def __init__(self, nodes_per_cpu: int = 16384, remote_fraction: float = 0.15, **kwargs) -> None:
        kwargs.setdefault("instructions_per_access", 4.0)
        super().__init__(**kwargs)
        self.nodes_per_cpu = nodes_per_cpu
        self.remote_fraction = remote_fraction
        self.node_bytes = 128  # two cache blocks per node
        self.space = AddressSpace(alignment=8192)
        self.space.allocate("nodes", self.num_cpus * nodes_per_cpu * self.node_bytes)

    def _node_address(self, cpu: int, node: int) -> int:
        partition = cpu * self.nodes_per_cpu
        return self.space.base("nodes") + (partition + node) * self.node_bytes

    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        rng = context.rng
        cpu = context.cpu
        node = 0
        while True:
            base = self._node_address(cpu, node)
            # Read this node's value and edge list (two blocks, sequential).
            yield self.make_access(context, pc=_PC_EM3D_NODE, address=base)
            yield self.make_access(context, pc=_PC_EM3D_NODE + 4, address=base + 64)
            # Degree-2 neighbour reads; 15% land in a remote partition whose
            # owner rewrites them every iteration (coherence misses).
            for edge in range(2):
                if rng.random() < self.remote_fraction and self.num_cpus > 1:
                    owner = rng.randrange(self.num_cpus - 1)
                    if owner >= cpu:
                        owner += 1
                    # span=5: neighbours cluster near the same index in the remote partition.
                    neighbor = (node + rng.randint(-5, 5)) % self.nodes_per_cpu
                    address = self._node_address(owner, neighbor)
                else:
                    neighbor = (node + rng.randint(1, 5)) % self.nodes_per_cpu
                    address = self._node_address(cpu, neighbor)
                yield self.make_access(context, pc=_PC_EM3D_NEIGHBOR + 8 * edge, address=address)
            # Write the updated value back to this node.
            yield self.make_access(context, pc=_PC_EM3D_UPDATE, address=base, write=True)
            node = (node + 1) % self.nodes_per_cpu


class OceanWorkload(SyntheticWorkload):
    """ocean: 1026x1026 grid relaxation."""

    metadata = WorkloadMetadata(
        name="ocean",
        category="Scientific",
        description="ocean: 1026x1026 grid, 9600s relaxations",
        mlp_hint=3.0,
        store_intensity=0.15,
        system_fraction=0.02,
        overlap_discount=0.10,
        memory_stall_fraction=0.60,
    )

    def __init__(self, grid_dim: int = 1026, element_bytes: int = 8, **kwargs) -> None:
        kwargs.setdefault("instructions_per_access", 5.0)
        super().__init__(**kwargs)
        self.grid_dim = grid_dim
        self.element_bytes = element_bytes
        # Rows are padded to a 2 kB boundary, as array-padding optimisations
        # (and power-of-two allocators) commonly do; this keeps the stencil's
        # footprint aligned identically in every row.
        raw_row_bytes = grid_dim * element_bytes
        self.row_bytes = (raw_row_bytes + 2047) & ~2047
        self.space = AddressSpace(alignment=8192)
        # Two grids (read and write) as in red-black relaxation.
        self.space.allocate("grid_a", self.grid_dim * self.row_bytes)
        self.space.allocate("grid_b", self.grid_dim * self.row_bytes)

    def _element(self, grid: str, row: int, col: int) -> int:
        row = row % self.grid_dim
        col = col % self.grid_dim
        return self.space.base(grid) + row * self.row_bytes + col * self.element_bytes

    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        cpu = context.cpu
        rows_per_cpu = max(1, self.grid_dim // self.num_cpus)
        row_start = cpu * rows_per_cpu
        row = row_start
        col = 0
        # Step by one cache block worth of elements: the stencil reads the
        # centre, east/west (same block or adjacent) and north/south rows.
        cols_per_block = max(1, 64 // self.element_bytes)
        while True:
            centre = self._element("grid_a", row, col)
            north = self._element("grid_a", row - 1, col)
            south = self._element("grid_a", row + 1, col)
            east = self._element("grid_a", row, col + cols_per_block)
            target = self._element("grid_b", row, col)
            yield self.make_access(context, pc=_PC_OCEAN_STENCIL, address=centre)
            yield self.make_access(context, pc=_PC_OCEAN_STENCIL + 4, address=north)
            yield self.make_access(context, pc=_PC_OCEAN_STENCIL + 8, address=south)
            yield self.make_access(context, pc=_PC_OCEAN_STENCIL + 12, address=east)
            yield self.make_access(context, pc=_PC_OCEAN_WRITE, address=target, write=True)
            col += cols_per_block
            if col >= self.grid_dim:
                col = 0
                row += 1
                if row >= row_start + rows_per_cpu:
                    row = row_start


class SparseWorkload(SyntheticWorkload):
    """sparse: 4096x4096 sparse matrix-vector kernel."""

    metadata = WorkloadMetadata(
        name="sparse",
        category="Scientific",
        description="sparse: 4096x4096 matrix",
        mlp_hint=3.5,
        store_intensity=0.08,
        system_fraction=0.01,
        overlap_discount=0.05,
        memory_stall_fraction=0.90,
    )

    def __init__(self, rows: int = 4096, nonzeros_per_row: int = 64, **kwargs) -> None:
        kwargs.setdefault("instructions_per_access", 2.5)
        super().__init__(**kwargs)
        self.rows = rows
        self.nonzeros_per_row = nonzeros_per_row
        self.value_bytes = 8
        self.index_bytes = 8  # 64-bit column indices, read for every nonzero
        self.space = AddressSpace(alignment=8192)
        self.space.allocate("values", rows * nonzeros_per_row * self.value_bytes * self.num_cpus)
        # Stagger the column-index array relative to the values array so the
        # two streams, which advance in lockstep, do not map to the same L1
        # sets (as a real allocator's headers/padding would ensure).
        self.space.allocate("pad", 24 * 1024)
        self.space.allocate("col_indices", rows * nonzeros_per_row * self.index_bytes * self.num_cpus)
        self.space.allocate("vector", rows * self.value_bytes)
        self.space.allocate("result", rows * self.value_bytes)

    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        rng = context.rng
        cpu = context.cpu
        rows_per_cpu = max(1, self.rows // self.num_cpus)
        row = cpu * rows_per_cpu
        value_cursor = cpu * rows_per_cpu * self.nonzeros_per_row
        values_base = self.space.base("values")
        indices_base = self.space.base("col_indices")
        vector_base = self.space.base("vector")
        result_base = self.space.base("result")
        values_size = self.space.size("values")
        indices_size = self.space.size("col_indices")
        while True:
            # Stream through this row's nonzeros: values and column indices are
            # long sequential runs; the vector gather mostly hits in cache.
            for nz in range(self.nonzeros_per_row):
                position = value_cursor + nz
                value_addr = values_base + (position * self.value_bytes) % values_size
                index_addr = indices_base + (position * self.index_bytes) % indices_size
                yield self.make_access(context, pc=_PC_SPARSE_ROW, address=value_addr)
                yield self.make_access(context, pc=_PC_SPARSE_COL, address=index_addr)
                if nz % 8 == 0:
                    column = rng.randrange(self.rows)
                    yield self.make_access(
                        context, pc=_PC_SPARSE_VEC, address=vector_base + column * self.value_bytes
                    )
            # Write the accumulated dot product to the result vector.
            yield self.make_access(
                context,
                pc=_PC_SPARSE_ROW + 0x100,
                address=result_base + (row % self.rows) * self.value_bytes,
                write=True,
            )
            value_cursor += self.nonzeros_per_row
            row += 1
            if row >= (cpu + 1) * rows_per_cpu:
                row = cpu * rows_per_cpu
