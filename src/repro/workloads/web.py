"""Web server (SPECweb99) workload model.

Models the memory behaviour of Apache and Zeus serving SPECweb99 traffic
(Table 1): per-connection state objects with a fixed layout, packet header
and trailer walks with "arbitrarily complex but fixed structure" (Section 2),
a hot file cache read sequentially, and a large system-mode component for the
kernel network stack.  Like OLTP, a processor has many connections in flight
at once, so accesses to different regions are heavily interleaved — the
property that lets SMS outperform delta-correlation prefetchers.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from repro.trace.record import MemoryAccess
from repro.workloads.base import (
    AddressSpace,
    CpuContext,
    FootprintLibrary,
    SyntheticWorkload,
    WorkloadMetadata,
)
from repro.workloads.oltp import _interleave_operations, _restamp_instruction_counts

_PC_CONN_LOOKUP = 0x60_0000
_PC_PACKET_PARSE = 0x61_0000
_PC_PACKET_TRAILER = 0x62_0000
_PC_FILE_READ = 0x63_0000
_PC_RESPONSE_WRITE = 0x64_0000
_PC_KERNEL_STACK = 0x65_0000
_PC_LISTEN_QUEUE = 0x66_0000

_REGION = 2048
_BLOCKS_PER_REGION = _REGION // 64
_PAGE_SIZE = 8192


class WebServerWorkload(SyntheticWorkload):
    """SPECweb99 on Apache or Zeus."""

    VARIANTS: Dict[str, Dict] = {
        "apache": dict(
            description="SPECweb99 on Apache 2.0: 16K connections, FastCGI, worker threads",
            connections=4096,
            file_cache_mb=24,
            packets_per_request=(2, 5),
            mlp_hint=1.6,
            store_intensity=0.15,
            system_fraction=0.30,
            overlap_discount=0.25,
            memory_stall_fraction=0.60,
        ),
        "zeus": dict(
            description="SPECweb99 on Zeus 4.3: 16K connections, FastCGI",
            connections=4096,
            file_cache_mb=32,
            packets_per_request=(2, 4),
            mlp_hint=1.7,
            store_intensity=0.12,
            system_fraction=0.26,
            overlap_discount=0.25,
            memory_stall_fraction=0.60,
        ),
    }

    def __init__(self, variant: str = "apache", concurrent_requests: int = 4, **kwargs) -> None:
        variant = variant.lower()
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown web variant {variant!r}; choose from {sorted(self.VARIANTS)}")
        if concurrent_requests <= 0:
            raise ValueError(f"concurrent_requests must be positive, got {concurrent_requests}")
        params = self.VARIANTS[variant]
        kwargs.setdefault("instructions_per_access", 3.5)
        self.variant = variant
        self.metadata = WorkloadMetadata(
            name=f"web-{variant}",
            category="Web",
            description=params["description"],
            mlp_hint=params["mlp_hint"],
            store_intensity=params["store_intensity"],
            system_fraction=params["system_fraction"],
            overlap_discount=params.get("overlap_discount", 0.0),
            memory_stall_fraction=params.get("memory_stall_fraction", 0.6),
        )
        super().__init__(**kwargs)
        self.connections = params["connections"]
        self.file_cache_bytes = params["file_cache_mb"] * 1024 * 1024
        self.packets_per_request = params["packets_per_request"]
        # A server processor juggles many connections at once (16K connections
        # in SPECweb99); their packet walks and file reads interleave.
        self.concurrent_requests = concurrent_requests

        self.space = AddressSpace(alignment=_PAGE_SIZE)
        self.space.allocate("connection_pool", self.connections * _REGION)
        self.space.allocate("packet_buffers", 2048 * _REGION)
        self.space.allocate("file_cache", self.file_cache_bytes)
        self.space.allocate("listen_queue", 64 * 1024)
        self.space.allocate("kernel", 4 * 1024 * 1024)

        self.footprints = FootprintLibrary(blocks_per_region=_BLOCKS_PER_REGION)
        # Connection object: request state, timers, and socket bookkeeping.
        self.footprints.define("connection", [0, 1, 2, 5, 8, 9])
        # Packet header at the front of the buffer, trailer at the end.
        self.footprints.define("packet_header", [0, 1, 2])
        self.footprints.define("packet_trailer", [_BLOCKS_PER_REGION - 2, _BLOCKS_PER_REGION - 1])
        # Kernel socket / protocol control blocks.
        self.footprints.define("kernel_pcb", [0, 1, 4, 6])
        self.footprints.define("kernel_softirq", [0, 2, 3, 7, 12])

    # ------------------------------------------------------------------ #
    def _connection_touch(self, context: CpuContext, connection: int, write: bool) -> List[MemoryAccess]:
        base = self.space.base("connection_pool") + connection * _REGION
        offsets = self.footprints.sample("connection", context.rng, drop_probability=0.12)
        return list(
            self.footprint_accesses(
                context,
                base,
                offsets,
                pc_base=_PC_CONN_LOOKUP,
                write_probability=0.35 if write else 0.05,
            )
        )

    def _packet_walk(self, context: CpuContext) -> List[MemoryAccess]:
        rng = context.rng
        buffers = self.space.size("packet_buffers") // _REGION
        base = self.space.base("packet_buffers") + rng.randrange(buffers) * _REGION
        accesses: List[MemoryAccess] = []
        header = self.footprints.sample("packet_header", rng, drop_probability=0.05)
        accesses.extend(
            self.footprint_accesses(context, base, header, pc_base=_PC_PACKET_PARSE, system=True)
        )
        # Payload: a short dense run whose length varies with packet size.  The
        # copy loop strides with a single load PC.
        payload_blocks = rng.randint(2, 10)
        payload = list(range(3, min(3 + payload_blocks, _BLOCKS_PER_REGION - 2)))
        accesses.extend(
            self.footprint_accesses(
                context,
                base,
                payload,
                pc_base=_PC_PACKET_PARSE + 0x100,
                write_probability=0.1,
                loop_pc=True,
            )
        )
        trailer = self.footprints.sample("packet_trailer", rng, drop_probability=0.05)
        accesses.extend(
            self.footprint_accesses(context, base, trailer, pc_base=_PC_PACKET_TRAILER, system=True)
        )
        return accesses

    def _file_read(self, context: CpuContext) -> List[MemoryAccess]:
        rng = context.rng
        regions = self.file_cache_bytes // _REGION
        # SPECweb's file popularity is heavily skewed: mostly hot files.
        if rng.random() < 0.7:
            region_index = rng.randrange(max(1, regions // 32))
        else:
            region_index = rng.randrange(regions)
        base = self.space.base("file_cache") + region_index * _REGION
        length = rng.randint(8, _BLOCKS_PER_REGION)
        offsets = list(range(0, length))
        return list(
            self.footprint_accesses(
                context, base, offsets, pc_base=_PC_FILE_READ, loop_pc=True
            )
        )

    def _kernel_work(self, context: CpuContext) -> List[MemoryAccess]:
        rng = context.rng
        name = "kernel_pcb" if rng.random() < 0.6 else "kernel_softirq"
        regions = self.space.size("kernel") // _REGION
        base = self.space.base("kernel") + rng.randrange(regions) * _REGION
        offsets = self.footprints.sample(name, rng, drop_probability=0.1)
        pc_base = _PC_KERNEL_STACK + (0 if name == "kernel_pcb" else 0x200)
        return list(
            self.footprint_accesses(
                context, base, offsets, pc_base=pc_base, write_probability=0.25, system=True
            )
        )

    def _listen_queue(self, context: CpuContext) -> List[MemoryAccess]:
        rng = context.rng
        size = self.space.size("listen_queue")
        base = self.space.base("listen_queue")
        block = rng.randrange(size // self.block_size)
        return [
            self.make_access(
                context,
                pc=_PC_LISTEN_QUEUE,
                address=base + block * self.block_size,
                write=rng.random() < 0.5,
                system=True,
            )
        ]

    # ------------------------------------------------------------------ #
    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        rng = context.rng
        while True:
            # Each request: accept, parse packets, touch the connection, read
            # the file, write the response.  Several requests are in flight at
            # once on a processor, so all their operations interleave.
            operations: List[List[MemoryAccess]] = []
            for _ in range(self.concurrent_requests):
                operations.append(self._listen_queue(context))
                connection = rng.randrange(self.connections)
                operations.append(self._connection_touch(context, connection, write=True))
                low, high = self.packets_per_request
                for _ in range(rng.randint(low, high)):
                    operations.append(self._packet_walk(context))
                operations.append(self._file_read(context))
                operations.append(self._kernel_work(context))
                if rng.random() < 0.5:
                    other_connection = rng.randrange(self.connections)
                    operations.append(self._connection_touch(context, other_connection, write=False))

            yield from _restamp_instruction_counts(
                list(_interleave_operations(operations, rng))
            )
