"""OLTP (TPC-C) workload model.

Models the memory behaviour the paper attributes to online transaction
processing on a commercial DBMS (DB2, Oracle):

* a large buffer pool of 8 kB database pages whose *structural* elements
  (page header, tuple slot index in the footer) are always touched before the
  page body — the canonical source of spatial correlation (Figure 1);
* B-tree index descents whose per-level probe footprints recur;
* tables with different tuple sizes handled by the *same* row-fetch code, so
  a PC-only index is ambiguous while PC+offset (and, for revisited pages,
  address) indices can distinguish the patterns;
* heavy interleaving of accesses across the several pages a transaction has
  open at once (this is what defeats delta-correlation prefetchers such as
  GHB, Section 4.6);
* shared structures — the log tail and a hot lock table — written by every
  processor, generating invalidations and (at large block sizes) false
  sharing;
* a system-mode component modelling OS/syscall activity.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from repro.trace.record import MemoryAccess
from repro.workloads.base import (
    AddressSpace,
    CpuContext,
    FootprintLibrary,
    SyntheticWorkload,
    WorkloadMetadata,
)

# Program-counter bases for the major code paths (arbitrary but stable).
_PC_BTREE_DESCENT = 0x40_0000
_PC_PAGE_HEADER = 0x41_0000
_PC_ROW_FETCH = 0x42_0000
_PC_SLOT_INDEX = 0x43_0000
_PC_LOG_APPEND = 0x44_0000
_PC_LOCK_MANAGER = 0x45_0000
_PC_OS_SYSCALL = 0x46_0000

_PAGE_SIZE = 8192
_BLOCKS_PER_PAGE = _PAGE_SIZE // 64


class OLTPWorkload(SyntheticWorkload):
    """TPC-C style OLTP on a commercial DBMS."""

    VARIANTS: Dict[str, Dict] = {
        "db2": dict(
            description="TPC-C on DB2: 100 warehouses, 64 clients, 450 MB buffer pool",
            buffer_pool_pages=1536,
            index_pages=256,
            pages_per_transaction=(2, 4),
            mlp_hint=1.3,
            store_intensity=0.12,
            system_fraction=0.18,
            overlap_discount=0.6,
            memory_stall_fraction=0.55,
        ),
        "oracle": dict(
            description="TPC-C on Oracle: 100 warehouses, 16 clients, 1.4 GB SGA",
            buffer_pool_pages=2048,
            index_pages=384,
            pages_per_transaction=(3, 5),
            mlp_hint=1.3,
            store_intensity=0.10,
            system_fraction=0.14,
            overlap_discount=0.6,
            memory_stall_fraction=0.55,
        ),
    }

    # Tables: (tuple size in blocks, rows accessed per page visit)
    _TABLES: List[Tuple[str, int, int]] = [
        ("warehouse", 2, 2),
        ("district", 3, 2),
        ("customer", 5, 2),
        ("orderline", 2, 4),
    ]

    def __init__(self, variant: str = "db2", concurrent_transactions: int = 3, **kwargs) -> None:
        variant = variant.lower()
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown OLTP variant {variant!r}; choose from {sorted(self.VARIANTS)}")
        if concurrent_transactions <= 0:
            raise ValueError(
                f"concurrent_transactions must be positive, got {concurrent_transactions}"
            )
        params = self.VARIANTS[variant]
        # TPC-C transactions execute a few ALU/branch instructions per data
        # reference; the default matches the memory-bound profile of Table 1.
        kwargs.setdefault("instructions_per_access", 3.0)
        self.variant = variant
        self.metadata = WorkloadMetadata(
            name=f"oltp-{variant}",
            category="OLTP",
            description=params["description"],
            mlp_hint=params["mlp_hint"],
            store_intensity=params["store_intensity"],
            system_fraction=params["system_fraction"],
            overlap_discount=params.get("overlap_discount", 0.0),
            memory_stall_fraction=params.get("memory_stall_fraction", 0.6),
        )
        super().__init__(**kwargs)
        self.buffer_pool_pages = params["buffer_pool_pages"]
        self.index_pages = params["index_pages"]
        self.pages_per_transaction = params["pages_per_transaction"]
        # A database server time-multiplexes several clients' transactions on
        # each processor (TPC-C runs 16-64 clients on 16 CPUs), so accesses
        # from several transactions — each with several pages open — are
        # interleaved at fine grain.  This is the access-stream property that
        # defeats delta correlation and stresses sectored training structures.
        self.concurrent_transactions = concurrent_transactions

        self.space = AddressSpace(alignment=_PAGE_SIZE)
        self.space.allocate("buffer_pool", self.buffer_pool_pages * _PAGE_SIZE)
        self.space.allocate("log", 4 * 1024 * 1024)
        self.space.allocate("lock_table", 256 * 1024)
        self.space.allocate("os", 2 * 1024 * 1024)

        self.footprints = FootprintLibrary(blocks_per_region=_BLOCKS_PER_PAGE)
        # Structural page elements: header at the start, slot index in the footer.
        self.footprints.define("page_header", [0, 1])
        self.footprints.define("slot_index", [_BLOCKS_PER_PAGE - 2, _BLOCKS_PER_PAGE - 1])
        # Per-level B-tree probe footprints: the binary search over a node's
        # key array touches a recurring cluster of blocks near the node start.
        self.footprints.define("btree_root", [0, 1, 16, 8, 12])
        self.footprints.define("btree_inner", [0, 1, 16, 24, 28, 26])
        self.footprints.define("btree_leaf", [0, 1, 8, 12, 14, 15])
        # OS/syscall footprints.
        self.footprints.define("os_syscall", [0, 1, 2, 10, 11])
        self.footprints.define("os_interrupt", [0, 4, 5, 20])

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _page_base(self, page_index: int) -> int:
        return self.space.base("buffer_pool") + page_index * _PAGE_SIZE

    def _pick_data_page(self, rng: random.Random) -> int:
        # Zipf-ish reuse: a hot subset of pages is revisited frequently, the
        # rest of the pool is touched uniformly (mirrors TPC-C's skew).
        if rng.random() < 0.6:
            hot = max(1, self.buffer_pool_pages // 16)
            return self.index_pages + rng.randrange(hot)
        return self.index_pages + rng.randrange(self.buffer_pool_pages - self.index_pages)

    def _pick_index_page(self, rng: random.Random, level: int) -> int:
        # Level 0 = root (very hot), deeper levels spread out.
        spread = min(self.index_pages, 4 ** (level + 1))
        return rng.randrange(spread)

    # ------------------------------------------------------------------ #
    # Per-operation access builders (lists, so a transaction can interleave them)
    # ------------------------------------------------------------------ #
    def _btree_descent(self, context: CpuContext) -> List[MemoryAccess]:
        accesses: List[MemoryAccess] = []
        levels = [("btree_root", 0), ("btree_inner", 1), ("btree_leaf", 2)]
        for footprint_name, level in levels:
            page = self._pick_index_page(context.rng, level)
            base = self._page_base(page)
            offsets = self.footprints.sample(
                footprint_name, context.rng, drop_probability=0.1, add_probability=0.004
            )
            pc_base = _PC_BTREE_DESCENT + 0x100 * level
            accesses.extend(
                self.footprint_accesses(context, base, offsets, pc_base=pc_base)
            )
        return accesses

    def _data_page_visit(self, context: CpuContext, write: bool) -> List[MemoryAccess]:
        rng = context.rng
        table_index = rng.randrange(len(self._TABLES))
        _, tuple_blocks, rows_per_visit = self._TABLES[table_index]
        page = self._pick_data_page(rng)
        base = self._page_base(page)
        accesses: List[MemoryAccess] = []

        # Structural accesses: header first, slot index before touching rows.
        header = self.footprints.sample("page_header", rng, drop_probability=0.05)
        accesses.extend(self.footprint_accesses(context, base, header, pc_base=_PC_PAGE_HEADER))
        slots = self.footprints.sample("slot_index", rng, drop_probability=0.05)
        accesses.extend(self.footprint_accesses(context, base, slots, pc_base=_PC_SLOT_INDEX))

        # Row fetches: one shared row-fetch routine, table-dependent layout.
        # TPC-C's skew means the rows of interest on a given page are sticky:
        # revisits of the page touch (mostly) the same rows, so both the page
        # address and the trigger PC/offset correlate with the footprint.
        first_row_block = 2
        rows_in_page = max(1, (_BLOCKS_PER_PAGE - 4 - first_row_block) // tuple_blocks)
        # The hot rows of a table's pages sit at recurring slots (recently
        # inserted / frequently updated tuples), so the footprint repeats.
        row = (table_index * 5) % rows_in_page
        if rng.random() < 0.25:
            row = (row + rng.randint(1, 4)) % rows_in_page
        for _ in range(rows_per_visit):
            start = first_row_block + (row % rows_in_page) * tuple_blocks
            offsets = list(range(start, min(start + tuple_blocks, _BLOCKS_PER_PAGE)))
            accesses.extend(
                self.footprint_accesses(
                    context,
                    base,
                    offsets,
                    pc_base=_PC_ROW_FETCH,
                    write_probability=0.35 if write else 0.05,
                )
            )
            row += 1
        return accesses

    def _log_append(self, context: CpuContext, log_cursor: List[int]) -> List[MemoryAccess]:
        base = self.space.base("log")
        size = self.space.size("log")
        accesses = []
        blocks = context.rng.randint(1, 3)
        for _ in range(blocks):
            address = base + (log_cursor[0] * self.block_size) % size
            accesses.append(
                self.make_access(context, pc=_PC_LOG_APPEND, address=address, write=True)
            )
            log_cursor[0] += 1
        return accesses

    def _lock_manager(self, context: CpuContext) -> List[MemoryAccess]:
        base = self.space.base("lock_table")
        size = self.space.size("lock_table")
        accesses = []
        for _ in range(context.rng.randint(2, 4)):
            block = context.rng.randrange(size // self.block_size)
            write = context.rng.random() < 0.3
            accesses.append(
                self.make_access(
                    context,
                    pc=_PC_LOCK_MANAGER + 4 * (block % 8),
                    address=base + block * self.block_size,
                    write=write,
                    system=False,
                )
            )
        return accesses

    def _os_activity(self, context: CpuContext) -> List[MemoryAccess]:
        rng = context.rng
        name = "os_syscall" if rng.random() < 0.7 else "os_interrupt"
        base = self.space.base("os")
        pages = self.space.size("os") // _PAGE_SIZE
        page = rng.randrange(pages)
        offsets = self.footprints.sample(name, rng, drop_probability=0.1)
        pc_base = _PC_OS_SYSCALL + (0 if name == "os_syscall" else 0x200)
        return list(
            self.footprint_accesses(
                context,
                base + page * _PAGE_SIZE,
                offsets,
                pc_base=pc_base,
                write_probability=0.2,
                system=True,
            )
        )

    # ------------------------------------------------------------------ #
    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        rng = context.rng
        log_cursor = [rng.randrange(1024) * 64]
        while True:
            # Build the operations of several concurrent transactions, then
            # interleave all their accesses: each transaction has several
            # pages "open" at once, and the server multiplexes transactions.
            operations: List[List[MemoryAccess]] = []
            for _ in range(self.concurrent_transactions):
                operations.append(self._btree_descent(context))
                low, high = self.pages_per_transaction
                for _ in range(rng.randint(low, high)):
                    operations.append(self._data_page_visit(context, write=rng.random() < 0.4))
                operations.append(self._lock_manager(context))
                operations.append(self._log_append(context, log_cursor))
                if rng.random() < self.metadata.system_fraction * 2:
                    operations.append(self._os_activity(context))

            yield from _restamp_instruction_counts(
                list(_interleave_operations(operations, rng))
            )


def _restamp_instruction_counts(accesses: List[MemoryAccess]) -> Iterator[MemoryAccess]:
    """Re-assign instruction counts in yield order.

    Operations are generated eagerly and then interleaved, which would leave
    instruction counts out of order; re-stamping keeps each CPU's instruction
    counter monotonic while preserving the transaction's total instruction
    budget and its distribution.
    """
    counts = sorted(access.instruction_count for access in accesses)
    for access, count in zip(accesses, counts):
        yield access._replace(instruction_count=count)


def _interleave_operations(
    operations: List[List[MemoryAccess]], rng: random.Random
) -> Iterator[MemoryAccess]:
    """Interleave several per-operation access lists, preserving each list's order."""
    cursors = [0] * len(operations)
    live = [i for i, ops in enumerate(operations) if ops]
    while live:
        slot = rng.choice(live)
        ops = operations[slot]
        burst = rng.randint(1, 3)
        for _ in range(burst):
            if cursors[slot] >= len(ops):
                break
            yield ops[cursors[slot]]
            cursors[slot] += 1
        if cursors[slot] >= len(ops):
            live.remove(slot)
