"""Synthetic workload models.

The paper evaluates SMS on full-system traces of commercial and scientific
applications (Table 1).  Those traces cannot be regenerated outside the
authors' FLEXUS/Simics environment, so this package provides synthetic
generators that reproduce the *structural* properties each workload class is
characterised by in the paper:

* **OLTP** (DB2, Oracle on TPC-C) — buffer-pool pages with fixed structural
  elements (header, slot index) plus per-table tuple footprints, B-tree
  descents, heavy interleaving across concurrently-open pages, shared log /
  lock structures written by all processors.
* **DSS** (TPC-H Q1, Q2, Q16, Q17 on DB2) — scan- and join-dominated queries
  that sweep data touched only once (so address-indexed predictors fail but
  code-indexed predictors succeed), with dense per-page footprints and little
  cross-region interleaving (so delta-correlation prefetchers also do well).
* **Web** (Apache, Zeus on SPECweb99) — per-connection structures and packet
  header/trailer walks with fixed layout, many interleaved connections, and a
  large system-mode component.
* **Scientific** (em3d, ocean, sparse) — dense, regular sweeps with partition
  boundary sharing; em3d adds bursty irregular remote accesses, sparse is a
  large working-set streaming kernel.
"""

from repro.workloads.base import SyntheticWorkload, WorkloadMetadata, AddressSpace, FootprintLibrary
from repro.workloads.oltp import OLTPWorkload
from repro.workloads.dss import DSSQueryWorkload
from repro.workloads.web import WebServerWorkload
from repro.workloads.scientific import Em3dWorkload, OceanWorkload, SparseWorkload
from repro.workloads.suite import (
    APPLICATION_NAMES,
    CATEGORIES,
    all_workloads,
    make_workload,
    representative_workloads,
    workloads_by_category,
)

__all__ = [
    "SyntheticWorkload",
    "WorkloadMetadata",
    "AddressSpace",
    "FootprintLibrary",
    "OLTPWorkload",
    "DSSQueryWorkload",
    "WebServerWorkload",
    "Em3dWorkload",
    "OceanWorkload",
    "SparseWorkload",
    "APPLICATION_NAMES",
    "CATEGORIES",
    "make_workload",
    "all_workloads",
    "workloads_by_category",
    "representative_workloads",
]
