"""Workload suite registry.

Table 1 of the paper lists eleven applications in four categories.  This
module provides factories that build any of them by name, grouped access by
category, and the default representative used by the class-level sensitivity
studies (Figures 6-10), which the paper reports per category.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.workloads.base import SyntheticWorkload
from repro.workloads.dss import DSSQueryWorkload
from repro.workloads.oltp import OLTPWorkload
from repro.workloads.scientific import Em3dWorkload, OceanWorkload, SparseWorkload
from repro.workloads.web import WebServerWorkload

#: Category names in the paper's presentation order.
CATEGORIES: List[str] = ["OLTP", "DSS", "Web", "Scientific"]

#: Application names in the paper's presentation order (Table 1 / Figure 11).
APPLICATION_NAMES: List[str] = [
    "oltp-db2",
    "oltp-oracle",
    "dss-qry1",
    "dss-qry2",
    "dss-qry16",
    "dss-qry17",
    "web-apache",
    "web-zeus",
    "em3d",
    "ocean",
    "sparse",
]

_FACTORIES: Dict[str, Callable[..., SyntheticWorkload]] = {
    "oltp-db2": lambda **kw: OLTPWorkload(variant="db2", **kw),
    "oltp-oracle": lambda **kw: OLTPWorkload(variant="oracle", **kw),
    "dss-qry1": lambda **kw: DSSQueryWorkload(variant="qry1", **kw),
    "dss-qry2": lambda **kw: DSSQueryWorkload(variant="qry2", **kw),
    "dss-qry16": lambda **kw: DSSQueryWorkload(variant="qry16", **kw),
    "dss-qry17": lambda **kw: DSSQueryWorkload(variant="qry17", **kw),
    "web-apache": lambda **kw: WebServerWorkload(variant="apache", **kw),
    "web-zeus": lambda **kw: WebServerWorkload(variant="zeus", **kw),
    "em3d": lambda **kw: Em3dWorkload(**kw),
    "ocean": lambda **kw: OceanWorkload(**kw),
    "sparse": lambda **kw: SparseWorkload(**kw),
}

_CATEGORY_MEMBERS: Dict[str, List[str]] = {
    "OLTP": ["oltp-db2", "oltp-oracle"],
    "DSS": ["dss-qry1", "dss-qry2", "dss-qry16", "dss-qry17"],
    "Web": ["web-apache", "web-zeus"],
    "Scientific": ["em3d", "ocean", "sparse"],
}

#: The application used to represent its category in class-level studies.
_REPRESENTATIVES: Dict[str, str] = {
    "OLTP": "oltp-db2",
    "DSS": "dss-qry2",
    "Web": "web-apache",
    "Scientific": "ocean",
}


def make_workload(name: str, **overrides) -> SyntheticWorkload:
    """Build a workload by its Table-1 name (e.g. ``"oltp-db2"``, ``"sparse"``)."""
    key = name.lower().strip()
    if key not in _FACTORIES:
        raise ValueError(f"unknown workload {name!r}; choose from {APPLICATION_NAMES}")
    return _FACTORIES[key](**overrides)


def all_workloads(**overrides) -> List[SyntheticWorkload]:
    """Build every application in the suite."""
    return [make_workload(name, **overrides) for name in APPLICATION_NAMES]


def workloads_by_category(category: str, **overrides) -> List[SyntheticWorkload]:
    """Build every application of one category (``"OLTP"``, ``"DSS"``, ``"Web"``,
    ``"Scientific"``)."""
    if category not in _CATEGORY_MEMBERS:
        raise ValueError(f"unknown category {category!r}; choose from {CATEGORIES}")
    return [make_workload(name, **overrides) for name in _CATEGORY_MEMBERS[category]]


def category_members(category: str) -> List[str]:
    """Return the application names belonging to ``category``."""
    if category not in _CATEGORY_MEMBERS:
        raise ValueError(f"unknown category {category!r}; choose from {CATEGORIES}")
    return list(_CATEGORY_MEMBERS[category])


def representative_workloads(**overrides) -> Dict[str, SyntheticWorkload]:
    """One representative application per category (used by Figures 6-10)."""
    return {
        category: make_workload(name, **overrides)
        for category, name in _REPRESENTATIVES.items()
    }


def category_of(name: str) -> Optional[str]:
    """Return the category an application belongs to, or None if unknown."""
    for category, members in _CATEGORY_MEMBERS.items():
        if name in members:
            return category
    return None
