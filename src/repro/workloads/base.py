"""Workload-generator framework.

A :class:`SyntheticWorkload` produces a deterministic, replayable
multiprocessor memory-access trace.  Each concrete workload implements
:meth:`SyntheticWorkload.cpu_stream` — the per-processor access stream — and
the base class interleaves the per-CPU streams at fine granularity, mirroring
independent processors sharing one memory system.

Shared helpers:

* :class:`AddressSpace` hands out non-overlapping, region-aligned address
  ranges for named data structures (buffer pool, log, hash table, grids, ...)
  so workloads can be composed without accidental aliasing.
* :class:`FootprintLibrary` stores the per-operation spatial footprints (sets
  of block offsets) that give each workload its code-correlated spatial
  structure, with controlled jitter.
* :class:`CpuContext` tracks per-CPU program state: instruction counts and a
  deterministic RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.trace.record import AccessType, ExecutionMode, MemoryAccess
from repro.trace.stream import TraceStream


@dataclass(frozen=True)
class WorkloadMetadata:
    """Descriptive and timing-model metadata for a workload.

    ``mlp_hint`` is the average number of overlappable outstanding off-chip
    misses the paper reports or implies for the workload class (e.g. ~1.3 for
    OLTP [6], >4.5 for em3d, Section 4.7); the analytical timing model uses
    it to convert miss counts into stall time.  ``store_intensity`` scales
    the store-buffer-full stall component (high for the scan-dominated DSS
    Qry1, which copies large amounts of data into a temporary table).
    ``overlap_discount`` is the fraction of a *covered* miss's latency that
    the out-of-order core would have hidden anyway — the paper observes that
    in OLTP the misses SMS predicts tend to coincide with the ones the core
    can already overlap, so the speedup is lower than the coverage suggests
    (Section 4.7).
    ``memory_stall_fraction`` is the fraction of baseline execution time spent
    on memory stalls (off-chip reads, L2 hits, store buffer) that the paper's
    execution-time breakdowns report for the workload class; the timing model
    calibrates the core's busy time against it (see
    :meth:`repro.simulation.timing.TimingModel.evaluate_pair`).
    """

    name: str
    category: str
    description: str = ""
    mlp_hint: float = 1.5
    store_intensity: float = 0.1
    system_fraction: float = 0.1
    overlap_discount: float = 0.0
    memory_stall_fraction: float = 0.6


@dataclass
class CpuContext:
    """Per-CPU generator state."""

    cpu: int
    rng: random.Random
    instruction_count: int = 0

    def advance(self, instructions: int) -> int:
        self.instruction_count += instructions
        return self.instruction_count


class AddressSpace:
    """Allocates non-overlapping, aligned address ranges for named structures."""

    def __init__(self, base: int = 0x1000_0000, alignment: int = 8192) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        self._next = base
        self._alignment = alignment
        self._ranges: Dict[str, Tuple[int, int]] = {}

    def allocate(self, name: str, size_bytes: int) -> int:
        """Reserve ``size_bytes`` for ``name`` and return the base address."""
        if name in self._ranges:
            raise ValueError(f"structure {name!r} already allocated")
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        base = self._next
        aligned_size = (size_bytes + self._alignment - 1) & ~(self._alignment - 1)
        self._next = base + aligned_size
        self._ranges[name] = (base, aligned_size)
        return base

    def base(self, name: str) -> int:
        return self._ranges[name][0]

    def size(self, name: str) -> int:
        return self._ranges[name][1]

    def contains(self, name: str, address: int) -> bool:
        base, size = self._ranges[name]
        return base <= address < base + size

    def structures(self) -> List[str]:
        return list(self._ranges)


class FootprintLibrary:
    """Per-operation spatial footprints with controlled jitter.

    A *footprint* is a set of block offsets (relative to a region base) that
    one code sequence touches when it operates on an instance of a data
    structure.  ``sample`` re-draws the footprint with small jitter so that
    patterns recur without being perfectly identical — this is what limits
    coverage below 100% and produces realistic overpredictions.
    """

    def __init__(self, blocks_per_region: int = 32) -> None:
        self.blocks_per_region = blocks_per_region
        self._footprints: Dict[str, List[int]] = {}

    def define(self, name: str, offsets: Sequence[int]) -> None:
        for offset in offsets:
            if not 0 <= offset < self.blocks_per_region:
                raise ValueError(
                    f"offset {offset} out of range for {self.blocks_per_region}-block region"
                )
        self._footprints[name] = sorted(set(offsets))

    def define_dense(self, name: str, start: int, count: int) -> None:
        self.define(name, list(range(start, min(start + count, self.blocks_per_region))))

    def offsets(self, name: str) -> List[int]:
        return list(self._footprints[name])

    def names(self) -> List[str]:
        return list(self._footprints)

    def sample(
        self,
        name: str,
        rng: random.Random,
        drop_probability: float = 0.0,
        add_probability: float = 0.0,
    ) -> List[int]:
        """Return the footprint with per-block jitter applied."""
        base = self._footprints[name]
        result = []
        for offset in base:
            if drop_probability and rng.random() < drop_probability:
                continue
            result.append(offset)
        if add_probability:
            for offset in range(self.blocks_per_region):
                if offset not in base and rng.random() < add_probability:
                    result.append(offset)
        if not result:
            result = [base[0]] if base else [0]
        return sorted(result)


class SyntheticWorkload(TraceStream):
    """Base class for all synthetic workloads."""

    #: Override in subclasses.
    metadata = WorkloadMetadata(name="abstract", category="none")

    #: Cache block size used when laying out footprints.
    block_size = 64

    def __init__(
        self,
        num_cpus: int = 16,
        accesses_per_cpu: int = 8000,
        seed: int = 42,
        interleave_burst: int = 6,
        instructions_per_access: float = 3.0,
    ) -> None:
        super().__init__(name=self.metadata.name)
        if num_cpus <= 0:
            raise ValueError(f"num_cpus must be positive, got {num_cpus}")
        if accesses_per_cpu <= 0:
            raise ValueError(f"accesses_per_cpu must be positive, got {accesses_per_cpu}")
        self.num_cpus = num_cpus
        self.accesses_per_cpu = accesses_per_cpu
        self.seed = seed
        self.interleave_burst = interleave_burst
        self.instructions_per_access = instructions_per_access

    # ------------------------------------------------------------------ #
    # Subclass interface
    # ------------------------------------------------------------------ #
    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        """Yield the (unbounded) access stream of one processor."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Helpers available to subclasses
    # ------------------------------------------------------------------ #
    def make_access(
        self,
        context: CpuContext,
        pc: int,
        address: int,
        write: bool = False,
        system: bool = False,
        instructions: Optional[int] = None,
    ) -> MemoryAccess:
        """Build one access record, advancing the CPU's instruction counter."""
        if instructions is None:
            mean = self.instructions_per_access
            instructions = max(1, int(context.rng.expovariate(1.0 / mean)) + 1)
        count = context.advance(instructions)
        return MemoryAccess(
            pc=pc,
            address=address,
            access_type=AccessType.WRITE if write else AccessType.READ,
            cpu=context.cpu,
            mode=ExecutionMode.SYSTEM if system else ExecutionMode.USER,
            instruction_count=count,
        )

    def footprint_accesses(
        self,
        context: CpuContext,
        region_base: int,
        offsets: Iterable[int],
        pc_base: int,
        write_probability: float = 0.0,
        system: bool = False,
        loop_pc: bool = False,
    ) -> Iterator[MemoryAccess]:
        """Yield one access per offset of a footprint.

        With ``loop_pc=False`` (the default) each position gets its own PC, as
        when straight-line code walks the fields of a structure.  With
        ``loop_pc=True`` every access comes from the same PC, as when a single
        load instruction inside a loop strides through a buffer — the case
        delta-correlation prefetchers such as GHB can exploit.
        """
        for position, offset in enumerate(offsets):
            address = region_base + offset * self.block_size
            pc = pc_base if loop_pc else pc_base + 4 * position
            write = context.rng.random() < write_probability
            yield self.make_access(context, pc=pc, address=address, write=write, system=system)

    # ------------------------------------------------------------------ #
    # Trace production
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[MemoryAccess]:
        """Interleave per-CPU streams into one multiprocessor trace."""
        scheduler = random.Random(self.seed * 7919 + 13)
        contexts = [
            CpuContext(cpu=cpu, rng=random.Random(self.seed * 1_000_003 + cpu))
            for cpu in range(self.num_cpus)
        ]
        streams = [self._bounded_cpu_stream(context) for context in contexts]
        active = list(range(self.num_cpus))
        while active:
            slot = scheduler.choice(active)
            burst = 1 + int(scheduler.expovariate(1.0 / self.interleave_burst))
            for _ in range(burst):
                try:
                    yield next(streams[slot])
                except StopIteration:
                    active.remove(slot)
                    break

    def _bounded_cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        produced = 0
        stream = self.cpu_stream(context)
        while produced < self.accesses_per_cpu:
            try:
                yield next(stream)
            except StopIteration:
                return
            produced += 1

    # ------------------------------------------------------------------ #
    @property
    def total_accesses(self) -> int:
        return self.num_cpus * self.accesses_per_cpu

    def length_hint(self) -> int:
        """Expected trace length (exact unless a ``cpu_stream`` ends early)."""
        return self.total_accesses

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(cpus={self.num_cpus}, "
            f"accesses_per_cpu={self.accesses_per_cpu}, seed={self.seed})"
        )
