"""DSS (TPC-H) workload model.

Models the decision-support queries of Table 1, all run on DB2:

* **Qry 1** — scan-dominated: a sequential sweep over a table far larger than
  the cache hierarchy, aggregating into a small temporary table.  Data is
  visited only once (so address-indexed predictors cannot help, Section 2.2),
  footprints are dense, and the heavy stream of stores to the temporary table
  is what fills the store buffer and limits SMS's benefit (Section 4.7).
* **Qry 2 / Qry 16** — join-dominated: a build scan over the inner relation
  populating a hash table, then a probe scan over the outer relation with a
  hash-bucket access per probe.
* **Qry 17** — balanced scan/join behaviour.

DSS differs from OLTP in two ways that matter for the evaluation: accesses
within a processor are largely *not* interleaved across regions (each
operator streams through its input), which is why GHB's delta correlation
nearly matches SMS here (Figure 11); and the scanned data is touched only
once, which is why PC-based indices beat address-based ones (Figure 6).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from repro.trace.record import MemoryAccess
from repro.workloads.base import (
    AddressSpace,
    CpuContext,
    FootprintLibrary,
    SyntheticWorkload,
    WorkloadMetadata,
)

_PC_SCAN = 0x50_0000
_PC_SCAN_HEADER = 0x51_0000
_PC_AGGREGATE = 0x52_0000
_PC_BUILD = 0x53_0000
_PC_PROBE = 0x54_0000
_PC_HASH_BUCKET = 0x55_0000
_PC_TEMP_WRITE = 0x56_0000

_PAGE_SIZE = 8192
_BLOCKS_PER_PAGE = _PAGE_SIZE // 64


class DSSQueryWorkload(SyntheticWorkload):
    """TPC-H decision-support query on DB2."""

    VARIANTS: Dict[str, Dict] = {
        "qry1": dict(
            description="TPC-H Q1: scan-dominated aggregation, 450 MB buffer pool",
            scan_fraction=0.85,
            join_fraction=0.0,
            temp_write_blocks=(8, 14),
            tuple_blocks=2,
            mlp_hint=2.2,
            store_intensity=1.0,
            system_fraction=0.06,
            overlap_discount=0.35,
            memory_stall_fraction=0.75,
        ),
        "qry2": dict(
            description="TPC-H Q2: join-dominated, 450 MB buffer pool",
            scan_fraction=0.40,
            join_fraction=0.50,
            temp_write_blocks=(0, 1),
            tuple_blocks=3,
            mlp_hint=2.0,
            store_intensity=0.10,
            system_fraction=0.06,
            overlap_discount=0.15,
            memory_stall_fraction=0.60,
        ),
        "qry16": dict(
            description="TPC-H Q16: join-dominated, 450 MB buffer pool",
            scan_fraction=0.35,
            join_fraction=0.55,
            temp_write_blocks=(0, 1),
            tuple_blocks=4,
            mlp_hint=2.0,
            store_intensity=0.12,
            system_fraction=0.06,
            overlap_discount=0.15,
            memory_stall_fraction=0.60,
        ),
        "qry17": dict(
            description="TPC-H Q17: balanced scan-join, 450 MB buffer pool",
            scan_fraction=0.60,
            join_fraction=0.30,
            temp_write_blocks=(1, 2),
            tuple_blocks=3,
            mlp_hint=2.1,
            store_intensity=0.20,
            system_fraction=0.06,
            overlap_discount=0.18,
            memory_stall_fraction=0.65,
        ),
    }

    def __init__(self, variant: str = "qry1", **kwargs) -> None:
        variant = variant.lower()
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown DSS variant {variant!r}; choose from {sorted(self.VARIANTS)}")
        params = self.VARIANTS[variant]
        # Each scanned tuple is processed by predicate/aggregation code, so DSS
        # executes far more instructions per data reference than OLTP.
        kwargs.setdefault("instructions_per_access", 9.0)
        self.variant = variant
        self.metadata = WorkloadMetadata(
            name=f"dss-{variant}",
            category="DSS",
            description=params["description"],
            mlp_hint=params["mlp_hint"],
            store_intensity=params["store_intensity"],
            system_fraction=params["system_fraction"],
            overlap_discount=params.get("overlap_discount", 0.0),
            memory_stall_fraction=params.get("memory_stall_fraction", 0.6),
        )
        super().__init__(**kwargs)
        self.scan_fraction = params["scan_fraction"]
        self.join_fraction = params["join_fraction"]
        self.temp_write_blocks = params["temp_write_blocks"]
        self.tuple_blocks = params["tuple_blocks"]

        # The scanned relations are far larger than the cache hierarchy; each
        # CPU sweeps its own partition so data is touched exactly once.
        self.space = AddressSpace(alignment=_PAGE_SIZE)
        self.space.allocate("fact_table", 512 * 1024 * 1024)
        self.space.allocate("inner_table", 64 * 1024 * 1024)
        self.space.allocate("hash_table", 8 * 1024 * 1024)
        self.space.allocate("temp_table", 16 * 1024 * 1024)
        self.space.allocate("os", 1 * 1024 * 1024)

        self.footprints = FootprintLibrary(blocks_per_region=_BLOCKS_PER_PAGE)
        self.footprints.define("page_header", [0, 1])
        self.footprints.define("os_syscall", [0, 1, 2, 10])

    # ------------------------------------------------------------------ #
    def _scan_page(
        self,
        context: CpuContext,
        base: int,
        pc_scan: int,
        write_probability: float = 0.0,
    ) -> Iterator[MemoryAccess]:
        """Sweep one 8 kB page: header, then tuples at the table's stride."""
        rng = context.rng
        header = self.footprints.sample("page_header", rng, drop_probability=0.02)
        yield from self.footprint_accesses(context, base, header, pc_base=_PC_SCAN_HEADER)
        offset = 2
        while offset < _BLOCKS_PER_PAGE:
            # The scan touches the first block(s) of every tuple.
            touched = min(self.tuple_blocks, 2)
            for extra in range(touched):
                if offset + extra >= _BLOCKS_PER_PAGE:
                    break
                address = base + (offset + extra) * self.block_size
                write = rng.random() < write_probability
                yield self.make_access(context, pc=pc_scan + 4 * extra, address=address, write=write)
            offset += self.tuple_blocks

    def _temp_table_append(self, context: CpuContext, cursor: List[int]) -> Iterator[MemoryAccess]:
        """Aggregate results: a burst of stores to the (per-CPU) temp table tail."""
        base = self.space.base("temp_table")
        size = self.space.size("temp_table")
        per_cpu = size // max(1, self.num_cpus)
        cpu_base = base + context.cpu * per_cpu
        low, high = self.temp_write_blocks
        blocks = context.rng.randint(low, high) if high > 0 else 0
        for _ in range(blocks):
            address = cpu_base + (cursor[0] * self.block_size) % per_cpu
            cursor[0] += 1
            yield self.make_access(context, pc=_PC_TEMP_WRITE, address=address, write=True)

    def _hash_probe(self, context: CpuContext) -> Iterator[MemoryAccess]:
        """Probe one hash bucket: a small fixed footprint at a hashed offset."""
        rng = context.rng
        base = self.space.base("hash_table")
        regions = self.space.size("hash_table") // 2048
        region = base + rng.randrange(regions) * 2048
        bucket = rng.randrange(0, 30)
        offsets = [bucket, bucket + 1]
        yield from self.footprint_accesses(context, region, offsets, pc_base=_PC_HASH_BUCKET)

    def _os_activity(self, context: CpuContext) -> Iterator[MemoryAccess]:
        rng = context.rng
        base = self.space.base("os")
        pages = self.space.size("os") // _PAGE_SIZE
        page = rng.randrange(pages)
        offsets = self.footprints.sample("os_syscall", rng, drop_probability=0.1)
        yield from self.footprint_accesses(
            context, base + page * _PAGE_SIZE, offsets, pc_base=0x5F_0000, system=True
        )

    # ------------------------------------------------------------------ #
    def cpu_stream(self, context: CpuContext) -> Iterator[MemoryAccess]:
        rng = context.rng
        fact_base = self.space.base("fact_table")
        fact_pages = self.space.size("fact_table") // _PAGE_SIZE
        inner_base = self.space.base("inner_table")
        inner_pages = self.space.size("inner_table") // _PAGE_SIZE
        pages_per_cpu = fact_pages // self.num_cpus
        inner_per_cpu = max(1, inner_pages // self.num_cpus)

        scan_cursor = context.cpu * pages_per_cpu
        probe_cursor = context.cpu * pages_per_cpu
        build_cursor = context.cpu * inner_per_cpu
        temp_cursor = [0]

        while True:
            draw = rng.random()
            if draw < self.scan_fraction:
                # Sequential scan of the next fact-table page, then aggregate.
                base = fact_base + (scan_cursor % fact_pages) * _PAGE_SIZE
                scan_cursor += 1
                yield from self._scan_page(context, base, _PC_SCAN)
                yield from self._temp_table_append(context, temp_cursor)
            elif draw < self.scan_fraction + self.join_fraction:
                if rng.random() < 0.4:
                    # Build: scan an inner-table page and insert into the hash table.
                    base = inner_base + (build_cursor % inner_pages) * _PAGE_SIZE
                    build_cursor += 1
                    yield from self._scan_page(context, base, _PC_BUILD)
                    for _ in range(rng.randint(2, 4)):
                        yield from self._hash_probe(context)
                else:
                    # Probe: scan an outer-table page, probing a bucket per tuple group.
                    base = fact_base + (probe_cursor % fact_pages) * _PAGE_SIZE
                    probe_cursor += 1
                    yield from self._scan_page(context, base, _PC_PROBE)
                    for _ in range(rng.randint(3, 6)):
                        yield from self._hash_probe(context)
            elif draw < self.scan_fraction + self.join_fraction + self.metadata.system_fraction:
                yield from self._os_activity(context)
            else:
                # Residual aggregation / bookkeeping work.
                yield from self._temp_table_append(context, temp_cursor)
                yield from self._hash_probe(context)
