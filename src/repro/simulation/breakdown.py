"""Execution-time breakdown categories (Figure 13).

The paper decomposes execution time into user busy, system busy, off-chip
read stalls, on-chip (L2) read stalls, store-buffer-full stalls, and a
residual "other" category.  :class:`ExecutionBreakdown` holds the per-category
cycle counts produced by the timing model and supports the paper's
presentation: normalising the base and SMS bars of one application to the
same amount of completed work so that relative bar height equals speedup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class BreakdownCategory(enum.Enum):
    """Stall / busy categories of Figure 13."""

    USER_BUSY = "user_busy"
    SYSTEM_BUSY = "system_busy"
    OFFCHIP_READ = "offchip_read"
    ONCHIP_READ = "onchip_read"
    STORE_BUFFER = "store_buffer"
    OTHER = "other"


#: Presentation order used by the paper's stacked bars (bottom to top).
CATEGORY_ORDER = [
    BreakdownCategory.USER_BUSY,
    BreakdownCategory.SYSTEM_BUSY,
    BreakdownCategory.OTHER,
    BreakdownCategory.STORE_BUFFER,
    BreakdownCategory.ONCHIP_READ,
    BreakdownCategory.OFFCHIP_READ,
]


@dataclass
class ExecutionBreakdown:
    """Per-category cycle counts for one simulated configuration."""

    cycles: Dict[BreakdownCategory, float] = field(default_factory=dict)
    instructions: int = 1

    def add(self, category: BreakdownCategory, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.cycles[category] = self.cycles.get(category, 0.0) + cycles

    def get(self, category: BreakdownCategory) -> float:
        return self.cycles.get(category, 0.0)

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        total = self.total_cycles
        return self.instructions / total if total else 0.0

    def busy_fraction(self) -> float:
        busy = self.get(BreakdownCategory.USER_BUSY) + self.get(BreakdownCategory.SYSTEM_BUSY)
        total = self.total_cycles
        return busy / total if total else 0.0

    def normalized(self, reference: Optional["ExecutionBreakdown"] = None) -> Dict[BreakdownCategory, float]:
        """Per-category fractions, normalised to ``reference`` (or self).

        Figure 13 plots both the base and SMS bars per unit of completed
        work, normalised to the base system's total: the SMS bar is shorter
        by the speedup factor.  Both breakdowns must describe the same
        instruction count per processor for the comparison to be meaningful,
        so the normalisation is done per instruction.
        """
        reference = reference or self
        reference_cpi = reference.cpi
        if reference_cpi <= 0:
            return {category: 0.0 for category in self.cycles}
        return {
            category: (cycles / self.instructions) / reference_cpi
            for category, cycles in self.cycles.items()
        }

    def speedup_over(self, baseline: "ExecutionBreakdown") -> float:
        """Speedup of this configuration relative to ``baseline`` (per instruction)."""
        if self.cpi <= 0:
            raise ValueError("cannot compute speedup with non-positive CPI")
        return baseline.cpi / self.cpi

    def as_dict(self) -> Dict[str, float]:
        data = {category.value: self.get(category) for category in CATEGORY_ORDER}
        data["total_cycles"] = self.total_cycles
        data["cpi"] = self.cpi
        return data
