"""Analytical timing model.

The paper's performance results (Figures 12-13) come from cycle-accurate
full-system simulation.  That substrate is substituted here by a first-order
analytical model driven by the functional simulation's measured event counts
and the Table-1 machine parameters:

* **memory stall components** are computed from measured counters —
  off-chip read misses x the off-chip round-trip latency divided by the
  workload's memory-level parallelism (the paper cites ~1.3 parallel off-chip
  misses for OLTP [6] and >4.5 for em3d), L2 hits x the L2 hit latency
  (partially hidden by the out-of-order window), and store-buffer drain time
  for off-chip write misses (not reduced by read streaming, and inflated by
  the upgrade penalty when SMS's read-only streamed blocks are written —
  the Qry1 effect of Section 4.7);
* **busy time** (user + system + front-end/other stalls) is either derived
  from the instruction count and an assumed core IPC (:meth:`TimingModel.evaluate`)
  or — for paired base-vs-SMS comparisons (:meth:`TimingModel.evaluate_pair`)
  — *calibrated* so that the baseline's memory-stall share of execution time
  matches the share the paper reports for that workload class
  (``WorkloadMetadata.memory_stall_fraction``).  The calibration compensates
  for the synthetic traces' block-granularity accesses (they omit the many
  always-hitting references a real program makes between misses) and makes
  the reproduced Figure 12/13 magnitudes comparable to the paper's.

Because the same calibrated busy time is charged to both configurations, the
speedup is driven entirely by the measured change in miss behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.simulation.breakdown import BreakdownCategory, ExecutionBreakdown
from repro.simulation.config import MachineConfig
from repro.simulation.engine import SimulationResult
from repro.workloads.base import WorkloadMetadata


@dataclass
class TimingResult:
    """Timing estimate for one simulated configuration."""

    breakdown: ExecutionBreakdown
    machine: MachineConfig

    @property
    def total_cycles(self) -> float:
        return self.breakdown.total_cycles

    @property
    def cpi(self) -> float:
        return self.breakdown.cpi

    @property
    def ipc(self) -> float:
        return self.breakdown.ipc

    def speedup_over(self, baseline: "TimingResult") -> float:
        return self.breakdown.speedup_over(baseline.breakdown)


class TimingModel:
    """Converts functional simulation counters into execution time."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        base_ipc: float = 2.0,
        other_stall_fraction: float = 0.35,
        onchip_overlap: float = 2.0,
    ) -> None:
        if base_ipc <= 0:
            raise ValueError(f"base_ipc must be positive, got {base_ipc}")
        if onchip_overlap <= 0:
            raise ValueError(f"onchip_overlap must be positive, got {onchip_overlap}")
        self.machine = machine or MachineConfig()
        self.base_ipc = base_ipc
        self.other_stall_fraction = other_stall_fraction
        self.onchip_overlap = onchip_overlap

    # ------------------------------------------------------------------ #
    # Memory stall components (shared by both evaluation modes)
    # ------------------------------------------------------------------ #
    def _memory_components(
        self, result: SimulationResult, metadata: WorkloadMetadata
    ) -> Dict[BreakdownCategory, float]:
        mlp = max(1.0, metadata.mlp_hint)
        offchip_latency = self.machine.off_chip_latency_cycles
        discount = max(0.0, min(1.0, metadata.overlap_discount))

        # Off-chip read stalls: a fraction of the misses a prefetcher covers
        # would have been overlapped by the out-of-order core anyway, so that
        # fraction of the covered latency is charged back.
        effective_offchip_reads = result.offchip_read_misses + discount * result.l2_read_covered
        offchip_read = effective_offchip_reads * offchip_latency / mlp

        # On-chip (L2 hit) read stalls, largely hidden by the OoO window.
        onchip_read = (
            result.l2_read_hits * self.machine.l2_hit_cycles / (mlp * self.onchip_overlap)
        )

        # Store-buffer drain: write misses are not overlapped by the load MLP
        # and are not eliminated by read streaming (a streamed read-only block
        # that is then written still needs an ownership upgrade), so covered
        # writes are charged as if they had missed, plus the upgrade latency.
        effective_writes = result.offchip_write_misses + result.l1_write_covered
        store_buffer = metadata.store_intensity * (
            effective_writes * offchip_latency
            + result.l1_write_covered * self.machine.l2_hit_cycles
        )

        return {
            BreakdownCategory.OFFCHIP_READ: offchip_read,
            BreakdownCategory.ONCHIP_READ: onchip_read,
            BreakdownCategory.STORE_BUFFER: store_buffer,
        }

    def _busy_components(
        self,
        busy_plus_other: float,
        result: SimulationResult,
        metadata: WorkloadMetadata,
    ) -> Dict[BreakdownCategory, float]:
        busy = busy_plus_other / (1.0 + self.other_stall_fraction)
        other = busy_plus_other - busy
        system_fraction = (
            result.system_accesses / result.accesses if result.accesses else metadata.system_fraction
        )
        return {
            BreakdownCategory.USER_BUSY: busy * (1.0 - system_fraction),
            BreakdownCategory.SYSTEM_BUSY: busy * system_fraction,
            BreakdownCategory.OTHER: other,
        }

    @staticmethod
    def _build(
        instructions: int,
        components: Dict[BreakdownCategory, float],
    ) -> ExecutionBreakdown:
        breakdown = ExecutionBreakdown(instructions=max(instructions, 1))
        for category, cycles in components.items():
            breakdown.add(category, cycles)
        return breakdown

    # ------------------------------------------------------------------ #
    # Single-configuration evaluation (busy time from instruction count)
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        result: SimulationResult,
        workload: Optional[WorkloadMetadata] = None,
    ) -> TimingResult:
        """Estimate execution time for one simulation result.

        Busy time is derived from the committed instruction count and the
        assumed core IPC; use :meth:`evaluate_pair` for paper-comparable
        base-vs-prefetcher comparisons.
        """
        metadata = workload or result.workload or WorkloadMetadata(name=result.name, category="?")
        components = self._memory_components(result, metadata)
        busy_plus_other = (result.instructions / self.base_ipc) * (1.0 + self.other_stall_fraction)
        components.update(self._busy_components(busy_plus_other, result, metadata))
        return TimingResult(breakdown=self._build(result.instructions, components), machine=self.machine)

    # ------------------------------------------------------------------ #
    # Paired evaluation (busy time calibrated to the paper's stall mix)
    # ------------------------------------------------------------------ #
    def evaluate_pair(
        self,
        baseline: SimulationResult,
        improved: SimulationResult,
        workload: Optional[WorkloadMetadata] = None,
    ) -> Tuple[TimingResult, TimingResult]:
        """Estimate execution time for a (baseline, prefetcher) pair.

        The busy+other time is calibrated so the *baseline* spends
        ``metadata.memory_stall_fraction`` of its execution time on memory
        stalls, and the same busy time is charged to both configurations
        (both simulate the same instruction stream).
        """
        metadata = (
            workload
            or baseline.workload
            or improved.workload
            or WorkloadMetadata(name=baseline.name, category="?")
        )
        base_memory = self._memory_components(baseline, metadata)
        improved_memory = self._memory_components(improved, metadata)

        stall_fraction = min(0.95, max(0.05, metadata.memory_stall_fraction))
        base_stall = sum(base_memory.values())
        busy_plus_other = base_stall * (1.0 - stall_fraction) / stall_fraction

        instructions = baseline.instructions
        base_components = dict(base_memory)
        base_components.update(self._busy_components(busy_plus_other, baseline, metadata))
        improved_components = dict(improved_memory)
        improved_components.update(self._busy_components(busy_plus_other, improved, metadata))

        return (
            TimingResult(breakdown=self._build(instructions, base_components), machine=self.machine),
            TimingResult(breakdown=self._build(instructions, improved_components), machine=self.machine),
        )

    # ------------------------------------------------------------------ #
    def speedup(
        self,
        baseline: SimulationResult,
        improved: SimulationResult,
        workload: Optional[WorkloadMetadata] = None,
    ) -> float:
        """Speedup of ``improved`` over ``baseline`` (same trace, same workload)."""
        base_timing, improved_timing = self.evaluate_pair(baseline, improved, workload=workload)
        return improved_timing.speedup_over(base_timing)
