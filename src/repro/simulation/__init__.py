"""Trace-driven simulation engine and timing model.

:class:`~repro.simulation.engine.SimulationEngine` drives a multiprocessor
memory system (:mod:`repro.coherence`) and a per-CPU prefetcher through a
trace, producing a :class:`~repro.simulation.engine.SimulationResult` with
the miss, coverage, and overprediction counters every figure of the paper is
built from.  :mod:`repro.simulation.timing` converts those counters into the
execution-time breakdowns and speedups of Figures 12-13 using the Table-1
machine parameters, and :mod:`repro.simulation.sampling` supplies the
SMARTS-style paired-measurement confidence intervals.
:class:`~repro.simulation.sweep.SweepRunner` fans experiment sweeps out over
multiprocessing workers, memoizing completed task results through a
:class:`~repro.simulation.result_cache.SweepResultCache`.
"""

from repro.simulation.config import MachineConfig, SimulationConfig
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.timing import TimingModel, TimingResult
from repro.simulation.breakdown import BreakdownCategory, ExecutionBreakdown
from repro.simulation.result_cache import (
    CacheStats,
    SweepResultCache,
    default_cache,
    quarantine_file,
    set_default_cache,
)
from repro.simulation.journal import SweepJournal, journal_path
from repro.simulation.sampling import ConfidenceInterval, SampledMeasurement, paired_speedup
from repro.simulation.sweep import (
    FailedPoint,
    SweepPolicy,
    SweepRunner,
    SweepTask,
    default_policy,
    last_sweep_report,
    set_default_policy,
    sweep_map,
)

__all__ = [
    "CacheStats",
    "SweepResultCache",
    "default_cache",
    "quarantine_file",
    "set_default_cache",
    "SweepJournal",
    "journal_path",
    "MachineConfig",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "TimingModel",
    "TimingResult",
    "BreakdownCategory",
    "ExecutionBreakdown",
    "ConfidenceInterval",
    "SampledMeasurement",
    "paired_speedup",
    "FailedPoint",
    "SweepPolicy",
    "SweepRunner",
    "SweepTask",
    "default_policy",
    "last_sweep_report",
    "set_default_policy",
    "sweep_map",
]
