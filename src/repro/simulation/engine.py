"""Trace-driven simulation engine.

The engine drives one :class:`~repro.coherence.multiprocessor.MultiprocessorMemorySystem`
and one prefetcher instance per processor through a multiprocessor trace.  It
is a functional (untimed) simulation in the spirit of the paper's trace-based
methodology (Section 4): the outputs are miss, coverage, and overprediction
counts; timing is layered on top by :mod:`repro.simulation.timing`.

Per access the engine:

1. performs the demand access (coherence actions + L1 + shared L2);
2. forwards the access and its outcome to the issuing CPU's prefetcher;
3. applies any forced evictions the prefetcher's training structure requires
   (decoupled-sectored training); and
4. applies the prefetcher's stream requests as fills into the L1 and/or L2.

Evictions and invalidations from each CPU's L1 are forwarded to that CPU's
prefetcher as they happen (this is how spatial region generations end).

The engine is *single-pass*: :meth:`SimulationEngine.run` consumes any
iterable of records lazily, chunk by chunk, and never materializes the
trace.  Peak engine-side memory is O(cache state + chunk), independent of
trace length, so billion-record streams are only a matter of wall-clock
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.coherence.multiprocessor import AccessOutcomeRecord, MultiprocessorMemorySystem
from repro.interconnect.traffic import BandwidthAccountant, TrafficClass
from repro.memory.hierarchy import MemoryLevel
from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.simulation.config import SimulationConfig
from repro.trace.record import ExecutionMode, MemoryAccess
from repro.trace.stream import (
    DEFAULT_CHUNK_SIZE,
    TraceStream,
    iter_chunks,
    resolve_warmup_count,
)
from repro.workloads.base import WorkloadMetadata

#: A factory building the prefetcher for one CPU.
PrefetcherFactory = Callable[[int], Prefetcher]


@dataclass
class SimulationResult:
    """Counters produced by one simulation run (measurement phase only)."""

    name: str = ""
    num_cpus: int = 1
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    system_accesses: int = 0
    instructions: int = 0

    # L1 behaviour (summed over all private L1s).
    l1_read_misses: int = 0
    l1_write_misses: int = 0
    l1_read_covered: int = 0
    l1_write_covered: int = 0
    l1_overpredictions: int = 0

    # L2 / off-chip behaviour.
    l2_demand_reads: int = 0
    l2_read_hits: int = 0
    offchip_read_misses: int = 0
    offchip_write_misses: int = 0
    l2_read_covered: int = 0
    l2_overpredictions: int = 0

    # Sharing behaviour.
    false_sharing_misses: int = 0
    invalidations: int = 0

    # Prefetch activity.
    prefetches_issued: int = 0
    prefetch_fills_l1: int = 0
    prefetch_fills_l2: int = 0

    # Bandwidth accounting.
    traffic: Optional[BandwidthAccountant] = None
    workload: Optional[WorkloadMetadata] = None

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def l1_read_references(self) -> int:
        return self.reads

    @property
    def baseline_l1_read_misses(self) -> int:
        """Read misses the system would (approximately) incur without prefetching."""
        return self.l1_read_misses + self.l1_read_covered

    @property
    def baseline_offchip_read_misses(self) -> int:
        return self.offchip_read_misses + self.l2_read_covered

    def l1_coverage(self) -> float:
        """Fraction of L1 read misses eliminated by the prefetcher."""
        baseline = self.baseline_l1_read_misses
        return self.l1_read_covered / baseline if baseline else 0.0

    def l2_coverage(self) -> float:
        """Fraction of off-chip read misses eliminated by the prefetcher."""
        baseline = self.baseline_offchip_read_misses
        return self.l2_read_covered / baseline if baseline else 0.0

    def l1_overprediction_rate(self) -> float:
        baseline = self.baseline_l1_read_misses
        return self.l1_overpredictions / baseline if baseline else 0.0

    def l2_overprediction_rate(self) -> float:
        baseline = self.baseline_offchip_read_misses
        return self.l2_overpredictions / baseline if baseline else 0.0

    def l1_read_mpki(self) -> float:
        return 1000.0 * self.l1_read_misses / self.instructions if self.instructions else 0.0

    def offchip_read_mpki(self) -> float:
        return 1000.0 * self.offchip_read_misses / self.instructions if self.instructions else 0.0

    def false_sharing_fraction(self) -> float:
        total = self.l1_read_misses + self.l1_write_misses
        return self.false_sharing_misses / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "accesses": self.accesses,
            "instructions": self.instructions,
            "l1_read_misses": self.l1_read_misses,
            "l1_coverage": self.l1_coverage(),
            "l1_overprediction_rate": self.l1_overprediction_rate(),
            "offchip_read_misses": self.offchip_read_misses,
            "l2_coverage": self.l2_coverage(),
            "l2_overprediction_rate": self.l2_overprediction_rate(),
            "l1_read_mpki": self.l1_read_mpki(),
            "offchip_read_mpki": self.offchip_read_mpki(),
            "false_sharing_misses": self.false_sharing_misses,
        }


class SimulationEngine:
    """Couples the memory system with one prefetcher per processor."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        prefetcher_factory: Optional[PrefetcherFactory] = None,
        name: str = "",
    ) -> None:
        self.config = config or SimulationConfig()
        self.prefetcher_factory = prefetcher_factory or (lambda cpu: NullPrefetcher())
        self.name = name
        # Hot-path constants: per-record work must not re-derive these.
        self._block_size = self.config.block_size
        self._block_mask = ~(self.config.block_size - 1)
        self.memory = MultiprocessorMemorySystem(
            num_cpus=self.config.num_cpus,
            block_size=self.config.block_size,
            l1_capacity=self.config.l1_capacity,
            l1_associativity=self.config.l1_associativity,
            l2_capacity=self.config.l2_capacity,
            l2_associativity=self.config.l2_associativity,
            replacement=self.config.replacement,
            classify_false_sharing=self.config.classify_false_sharing,
            seed=self.config.seed,
        )
        self.prefetchers: List[Prefetcher] = [
            self.prefetcher_factory(cpu) for cpu in range(self.config.num_cpus)
        ]
        self._l1s = [self.memory.l1(cpu) for cpu in range(self.config.num_cpus)]
        # Forward L1 evictions/invalidations to the owning CPU's prefetcher.
        for cpu in range(self.config.num_cpus):
            self.memory.l1(cpu).add_eviction_listener(self._make_eviction_listener(cpu))
        # Retire off-chip-coverage tracking for blocks that leave the chip, so
        # the side table stays O(cache state) on arbitrarily long traces.
        self.memory.l2.add_eviction_listener(self._on_l2_eviction)
        self._measuring = True
        self.result = SimulationResult(name=name, num_cpus=self.config.num_cpus)
        self.result.traffic = BandwidthAccountant(block_size=self.config.block_size)
        self._instruction_baseline: Dict[int, int] = {}
        self._instruction_latest: Dict[int, int] = {}
        # Blocks the prefetcher brought on-chip whose first demand use is
        # still pending, plus a count of tracked blocks that left the chip
        # unused (definitive overpredictions).  Together these replace the
        # old unbounded block -> used dict.
        self._offchip_prefetched_unused: Set[int] = set()
        self._offchip_prefetched_wasted = 0
        self._l1_overprediction_baseline = 0

    # ------------------------------------------------------------------ #
    def _make_eviction_listener(self, cpu: int):
        def _listener(evicted) -> None:
            block = evicted.block_addr
            if (
                block in self._offchip_prefetched_unused
                and not self.memory.l2.contains(block)
                and not self._resident_in_any_l1(block)
            ):
                # The prefetched block left the chip without ever being
                # demand-used: a definitive overprediction.
                self._offchip_prefetched_unused.discard(block)
                self._offchip_prefetched_wasted += 1
            prefetcher = self.prefetchers[cpu]
            response = prefetcher.on_eviction(block, invalidated=evicted.invalidated)
            if response.forced_evictions:
                self._apply_forced_evictions(cpu, response.forced_evictions)
            if response.prefetches:
                self._apply_prefetches(cpu, response.prefetches)

        return _listener

    def _on_l2_eviction(self, evicted) -> None:
        block = evicted.block_addr
        if block in self._offchip_prefetched_unused and not self._resident_in_any_l1(block):
            self._offchip_prefetched_unused.discard(block)
            self._offchip_prefetched_wasted += 1

    def _resident_in_any_l1(self, block: int) -> bool:
        return any(l1.contains(block) for l1 in self._l1s)

    def _apply_forced_evictions(self, cpu: int, blocks: Iterable[int]) -> None:
        l1 = self.memory.l1(cpu)
        for block in blocks:
            l1.invalidate(block)

    def _apply_prefetches(self, cpu: int, prefetches) -> None:
        # Stream responses can carry many requests per access; bind the
        # loop-invariant lookups once.  Nothing here can change mid-call:
        # _measuring/result only change at the warmup boundary in run().
        block_mask = self._block_mask
        memory = self.memory
        l2_contains = memory.l2.contains
        prefetch_fill = memory.prefetch_fill
        tracked = self._offchip_prefetched_unused
        measuring = self._measuring
        result = self.result
        record_transfer = result.traffic.record_block_transfer
        for request in prefetches:
            block = request.address & block_mask
            was_offchip = not l2_contains(block)
            prefetch_fill(
                cpu,
                request.address,
                into_l1=request.target_l1,
                into_l2=True,
            )
            if was_offchip:
                # Track blocks the prefetcher brought on-chip; the first demand
                # access to one of them is an off-chip miss that was covered.
                tracked.add(block)
            if measuring:
                result.prefetches_issued += 1
                if request.target_l1:
                    result.prefetch_fills_l1 += 1
                result.prefetch_fills_l2 += 1
                record_transfer(TrafficClass.PREFETCH)

    # ------------------------------------------------------------------ #
    def _record_outcome(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> None:
        result = self.result
        is_read = record.is_read
        result.accesses += 1
        if is_read:
            result.reads += 1
        else:
            result.writes += 1
        if record.mode is ExecutionMode.SYSTEM:
            result.system_accesses += 1
        result.invalidations += outcome.invalidations_sent

        if outcome.l1_result.is_prefetch_hit:
            if is_read:
                result.l1_read_covered += 1
            else:
                result.l1_write_covered += 1

        # Off-chip coverage: the first demand use of a block the prefetcher
        # brought on-chip (and that has not been evicted everywhere since) is
        # an off-chip miss that the prefetcher eliminated.  Either way the
        # block's tracking entry is consumed, keeping the side table bounded.
        tracked = self._offchip_prefetched_unused
        if tracked:
            block = record.address & self._block_mask
            if block in tracked:
                tracked.discard(block)
                if outcome.level is MemoryLevel.MEMORY:
                    # The prefetched copy was lost before this use: wasted.
                    self._offchip_prefetched_wasted += 1
                elif is_read:
                    result.l2_read_covered += 1

        if outcome.l1_result.is_miss:
            if is_read:
                result.l1_read_misses += 1
            else:
                result.l1_write_misses += 1
            traffic = result.traffic
            traffic.record_block_transfer(TrafficClass.DEMAND_FETCH)
            traffic.record_useful_bytes(self._block_size)
            if outcome.false_sharing:
                result.false_sharing_misses += 1
            if is_read:
                result.l2_demand_reads += 1
                if outcome.level is MemoryLevel.L2:
                    result.l2_read_hits += 1
                else:
                    result.offchip_read_misses += 1
            elif outcome.level is MemoryLevel.MEMORY:
                result.offchip_write_misses += 1

    def _snapshot_overpredictions(self) -> None:
        """Copy prefetched-but-unused counters from the caches into the result."""
        l1_total = sum(l1.stats.prefetched_evicted_unused for l1 in self._l1s)
        self.result.l1_overpredictions = l1_total - self._l1_overprediction_baseline
        # Off-chip overpredictions: blocks the prefetcher brought on-chip during
        # the measurement phase that no demand access has used — the ones still
        # tracked plus the ones already retired as wasted.
        self.result.l2_overpredictions = (
            len(self._offchip_prefetched_unused) + self._offchip_prefetched_wasted
        )

    def _reset_measurement(self) -> None:
        """Begin the measurement phase: zero all counters, keep all state warm."""
        traffic = BandwidthAccountant(block_size=self.config.block_size)
        self.result = SimulationResult(
            name=self.name, num_cpus=self.config.num_cpus, traffic=traffic
        )
        self._l1_overprediction_baseline = sum(
            l1.stats.prefetched_evicted_unused for l1 in self._l1s
        )
        self._instruction_baseline = dict(self._instruction_latest)
        self._offchip_prefetched_unused = set()
        self._offchip_prefetched_wasted = 0

    # ------------------------------------------------------------------ #
    def _resolve_warmup_count(
        self,
        trace: Iterable[MemoryAccess],
        limit: Optional[int],
        warmup_accesses: Optional[int],
    ) -> int:
        """Warmup length: explicit argument, then ``config.warmup_accesses``,
        then ``config.warmup_fraction`` of the trace's length hint (see
        :func:`repro.trace.stream.resolve_warmup_count`)."""
        if warmup_accesses is None:
            warmup_accesses = self.config.warmup_accesses
        return resolve_warmup_count(
            trace,
            fraction=self.config.warmup_fraction,
            limit=limit,
            warmup_accesses=warmup_accesses,
        )

    def run(
        self,
        trace: Iterable[MemoryAccess],
        limit: Optional[int] = None,
        warmup_accesses: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> SimulationResult:
        """Run ``trace`` through the engine and return the measurement-phase result.

        The trace is consumed lazily in chunks of ``chunk_size`` records; it
        is never materialized, so arbitrarily long streams run in O(cache
        state + chunk) memory.  Streams that decode in chunks natively
        (:class:`~repro.trace.binary.BinaryTraceStream`) hand their decoded
        batches straight to the engine — no per-record generator hop.  The
        first ``warmup_accesses`` records (or ``config.warmup_fraction`` of
        the trace's length hint) warm caches and predictor state; counters
        are reset at the warmup boundary.  ``limit`` lazily truncates the
        trace, doing finite work even on an endless generator.
        """
        warmup_count = self._resolve_warmup_count(trace, limit, warmup_accesses)
        if limit is None and isinstance(trace, TraceStream):
            chunks = trace.iter_chunks(chunk_size)
        else:
            stream = iter(trace)
            if limit is not None:
                stream = islice(stream, limit)
            chunks = iter_chunks(stream, chunk_size)

        self._measuring = warmup_count == 0
        if self._measuring:
            self._reset_measurement()

        step = self._step
        remaining_warmup = warmup_count
        for chunk in chunks:
            if not self._measuring:
                head = len(chunk)
                if remaining_warmup < head:
                    head = remaining_warmup
                    for record in chunk[:head]:
                        step(record)
                    chunk = chunk[head:]
                    remaining_warmup = 0
                    self._reset_measurement()
                    self._measuring = True
                else:
                    for record in chunk:
                        step(record)
                    remaining_warmup -= head
                    continue
            for record in chunk:
                step(record)

        if not self._measuring:
            # The stream ended inside the warmup phase (overestimated length
            # hint, or warmup_accesses/limit beyond the trace).  Reset so the
            # result is a clean, empty measurement phase rather than a
            # snapshot of warmup-phase tracking state.
            self._reset_measurement()
            self._measuring = True

        for prefetcher in self.prefetchers:
            prefetcher.finalize()
        self._snapshot_overpredictions()
        self._finalize_instructions()
        if isinstance(trace, TraceStream):
            metadata = getattr(trace, "metadata", None)
            if isinstance(metadata, WorkloadMetadata):
                self.result.workload = metadata
        return self.result

    def _step(self, record: MemoryAccess) -> None:
        outcome = self.memory.access(record)
        cpu = record.cpu
        icount = record.instruction_count
        latest = self._instruction_latest
        if icount > latest.get(cpu, 0):
            latest[cpu] = icount
        if self._measuring:
            self._record_outcome(record, outcome)
        response = self.prefetchers[cpu].on_access(record, outcome)
        if response.forced_evictions:
            self._apply_forced_evictions(cpu, response.forced_evictions)
        if response.prefetches:
            self._apply_prefetches(cpu, response.prefetches)

    def _finalize_instructions(self) -> None:
        total = 0
        for cpu, latest in self._instruction_latest.items():
            baseline = self._instruction_baseline.get(cpu, 0)
            total += max(0, latest - baseline)
        self.result.instructions = max(total, 1)


def run_simulation(
    trace: Iterable[MemoryAccess],
    config: Optional[SimulationConfig] = None,
    prefetcher_factory: Optional[PrefetcherFactory] = None,
    name: str = "",
    limit: Optional[int] = None,
    warmup_accesses: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper: build an engine, run ``trace``, return the result."""
    engine = SimulationEngine(config=config, prefetcher_factory=prefetcher_factory, name=name)
    return engine.run(trace, limit=limit, warmup_accesses=warmup_accesses)
