"""Trace-driven simulation engine.

The engine drives one :class:`~repro.coherence.multiprocessor.MultiprocessorMemorySystem`
and one prefetcher instance per processor through a multiprocessor trace.  It
is a functional (untimed) simulation in the spirit of the paper's trace-based
methodology (Section 4): the outputs are miss, coverage, and overprediction
counts; timing is layered on top by :mod:`repro.simulation.timing`.

Per access the engine:

1. performs the demand access (coherence actions + L1 + shared L2);
2. forwards the access and its outcome to the issuing CPU's prefetcher;
3. applies any forced evictions the prefetcher's training structure requires
   (decoupled-sectored training); and
4. applies the prefetcher's stream requests as fills into the L1 and/or L2.

Evictions and invalidations from each CPU's L1 are forwarded to that CPU's
prefetcher as they happen (this is how spatial region generations end).

The engine is *single-pass*: :meth:`SimulationEngine.run` consumes any
iterable of records lazily, chunk by chunk, and never materializes the
trace.  Peak engine-side memory is O(cache state + chunk), independent of
trace length, so billion-record streams are only a matter of wall-clock
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro import _env, obs
from repro.obs import trace as obs_trace
from repro.coherence.false_sharing import MissClassification
from repro.coherence.multiprocessor import AccessOutcomeRecord, MultiprocessorMemorySystem
from repro.coherence.protocol import CoherenceState, DirectoryEntry
from repro.interconnect.traffic import BandwidthAccountant, TrafficClass
from repro.memory.cache import CacheLine, EvictedLine
from repro.memory.hierarchy import MemoryLevel
from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.simulation.config import SimulationConfig
from repro.trace.record import ExecutionMode, MemoryAccess
from repro.trace.stream import (
    DEFAULT_CHUNK_SIZE,
    TraceStream,
    iter_chunks,
    lane_chunk_iterator,
    resolve_warmup_count,
)
from repro.workloads.base import WorkloadMetadata

#: Environment switch for the lane fast path (``0``/``false``/``off`` disable).
LANES_ENV_VAR = "REPRO_ENGINE_LANES"

#: Environment variable enabling the simulation-time telemetry probe: a
#: positive integer N samples prediction quality every N measured records.
TELEMETRY_ENV_VAR = "REPRO_TRACE_TELEMETRY"


class _TelemetryProbe:
    """Samples prediction quality over trace position, once per interval.

    ``note`` is called at chunk boundaries only (the lane fast path stays
    batched; per-record work is untouched), and reads counters the engine
    already maintains — the probe never mutates simulation state, so
    results with and without it are byte-identical.
    """

    __slots__ = ("engine", "interval", "samples", "_next")

    def __init__(self, engine: "SimulationEngine", interval: int) -> None:
        self.engine = engine
        self.interval = interval
        self.samples: List[Dict[str, float]] = []
        self._next = interval

    def note(self, position: int) -> None:
        """Record one sample when ``position`` crossed the next boundary.

        A chunk spanning several boundaries yields one sample (the counters
        at its end), keeping sample cost proportional to chunks, not
        records.
        """
        if position < self._next:
            return
        self._next = (position // self.interval + 1) * self.interval
        result = self.engine.result
        occupancy = 0
        for prefetcher in self.engine.prefetchers:
            pht = getattr(prefetcher, "pht", None)
            if pht is not None:
                occupancy += getattr(pht, "occupancy", 0)
        self.samples.append({
            "position": position,
            "accesses": result.accesses,
            "l1_coverage": round(result.l1_coverage(), 6),
            "l2_coverage": round(result.l2_coverage(), 6),
            "l1_overprediction_rate": round(result.l1_overprediction_rate(), 6),
            "pht_occupancy": occupancy,
        })


def _limit_lane_chunks(chunks, limit: int):
    """Truncate a lane-chunk iterator to ``limit`` records (lazy ``islice``)."""
    remaining = limit
    if remaining <= 0:
        return
    for chunk in chunks:
        size = len(chunk)
        if size < remaining:
            remaining -= size
            yield chunk
        else:
            yield chunk.slice(0, remaining)
            return

def _flush_engine_metrics(path: str, records: int) -> None:
    """One batched metrics flush per engine run.

    Called after the chunk loop — mirroring the per-chunk stat tallies,
    nothing observable happens per record — so the lane fast path pays a
    handful of dict operations per *run* for its instrumentation.
    """
    obs.counter(
        "repro_engine_runs_total",
        "Engine runs by simulation path (lanes fast path vs reference loop).",
        labels=("path",),
    ).labels(path).inc()
    if records:
        obs.counter(
            "repro_engine_records_total",
            "Trace records simulated (warmup + measurement), by path.",
            labels=("path",),
        ).labels(path).inc(records)


#: A factory building the prefetcher for one CPU.
PrefetcherFactory = Callable[[int], Prefetcher]


@dataclass
class SimulationResult:
    """Counters produced by one simulation run (measurement phase only)."""

    name: str = ""
    num_cpus: int = 1
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    system_accesses: int = 0
    instructions: int = 0

    # L1 behaviour (summed over all private L1s).
    l1_read_misses: int = 0
    l1_write_misses: int = 0
    l1_read_covered: int = 0
    l1_write_covered: int = 0
    l1_overpredictions: int = 0

    # L2 / off-chip behaviour.
    l2_demand_reads: int = 0
    l2_read_hits: int = 0
    offchip_read_misses: int = 0
    offchip_write_misses: int = 0
    l2_read_covered: int = 0
    l2_overpredictions: int = 0

    # Sharing behaviour.
    false_sharing_misses: int = 0
    invalidations: int = 0

    # Prefetch activity.
    prefetches_issued: int = 0
    prefetch_fills_l1: int = 0
    prefetch_fills_l2: int = 0

    # Bandwidth accounting.
    traffic: Optional[BandwidthAccountant] = None
    workload: Optional[WorkloadMetadata] = None

    # Simulation-time telemetry (``{"interval": N, "samples": [...]}``),
    # populated only when the probe is enabled.  Deliberately excluded
    # from :meth:`as_dict`: the golden counters must stay byte-identical
    # whether or not the probe ran.
    telemetry: Optional[Dict] = None

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def l1_read_references(self) -> int:
        return self.reads

    @property
    def baseline_l1_read_misses(self) -> int:
        """Read misses the system would (approximately) incur without prefetching."""
        return self.l1_read_misses + self.l1_read_covered

    @property
    def baseline_offchip_read_misses(self) -> int:
        return self.offchip_read_misses + self.l2_read_covered

    def l1_coverage(self) -> float:
        """Fraction of L1 read misses eliminated by the prefetcher."""
        baseline = self.baseline_l1_read_misses
        return self.l1_read_covered / baseline if baseline else 0.0

    def l2_coverage(self) -> float:
        """Fraction of off-chip read misses eliminated by the prefetcher."""
        baseline = self.baseline_offchip_read_misses
        return self.l2_read_covered / baseline if baseline else 0.0

    def l1_overprediction_rate(self) -> float:
        baseline = self.baseline_l1_read_misses
        return self.l1_overpredictions / baseline if baseline else 0.0

    def l2_overprediction_rate(self) -> float:
        baseline = self.baseline_offchip_read_misses
        return self.l2_overpredictions / baseline if baseline else 0.0

    def l1_read_mpki(self) -> float:
        return 1000.0 * self.l1_read_misses / self.instructions if self.instructions else 0.0

    def offchip_read_mpki(self) -> float:
        return 1000.0 * self.offchip_read_misses / self.instructions if self.instructions else 0.0

    def false_sharing_fraction(self) -> float:
        total = self.l1_read_misses + self.l1_write_misses
        return self.false_sharing_misses / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "accesses": self.accesses,
            "instructions": self.instructions,
            "l1_read_misses": self.l1_read_misses,
            "l1_coverage": self.l1_coverage(),
            "l1_overprediction_rate": self.l1_overprediction_rate(),
            "offchip_read_misses": self.offchip_read_misses,
            "l2_coverage": self.l2_coverage(),
            "l2_overprediction_rate": self.l2_overprediction_rate(),
            "l1_read_mpki": self.l1_read_mpki(),
            "offchip_read_mpki": self.offchip_read_mpki(),
            "false_sharing_misses": self.false_sharing_misses,
        }


class SimulationEngine:
    """Couples the memory system with one prefetcher per processor."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        prefetcher_factory: Optional[PrefetcherFactory] = None,
        name: str = "",
    ) -> None:
        self.config = config or SimulationConfig()
        self.prefetcher_factory = prefetcher_factory or (lambda cpu: NullPrefetcher())
        self.name = name
        # Hot-path constants: per-record work must not re-derive these.
        self._block_size = self.config.block_size
        self._block_mask = ~(self.config.block_size - 1)
        self.memory = MultiprocessorMemorySystem(
            num_cpus=self.config.num_cpus,
            block_size=self.config.block_size,
            l1_capacity=self.config.l1_capacity,
            l1_associativity=self.config.l1_associativity,
            l2_capacity=self.config.l2_capacity,
            l2_associativity=self.config.l2_associativity,
            replacement=self.config.replacement,
            classify_false_sharing=self.config.classify_false_sharing,
            seed=self.config.seed,
        )
        self.prefetchers: List[Prefetcher] = [
            self.prefetcher_factory(cpu) for cpu in range(self.config.num_cpus)
        ]
        self._l1s = [self.memory.l1(cpu) for cpu in range(self.config.num_cpus)]
        # Forward L1 evictions/invalidations to the owning CPU's prefetcher.
        # Keep the listeners addressable so the lane fast path can verify the
        # listener lists are exactly the construction-time pair.
        self._l1_eviction_listeners = []
        for cpu in range(self.config.num_cpus):
            listener = self._make_eviction_listener(cpu)
            self._l1_eviction_listeners.append(listener)
            self.memory.l1(cpu).add_eviction_listener(listener)
        # Retire off-chip-coverage tracking for blocks that leave the chip, so
        # the side table stays O(cache state) on arbitrarily long traces.
        self.memory.l2.add_eviction_listener(self._on_l2_eviction)
        self._measuring = True
        self.result = SimulationResult(name=name, num_cpus=self.config.num_cpus)
        self.result.traffic = BandwidthAccountant(block_size=self.config.block_size)
        self._instruction_baseline: Dict[int, int] = {}
        self._instruction_latest: Dict[int, int] = {}
        # Blocks the prefetcher brought on-chip whose first demand use is
        # still pending, plus a count of tracked blocks that left the chip
        # unused (definitive overpredictions).  Together these replace the
        # old unbounded block -> used dict.
        self._offchip_prefetched_unused: Set[int] = set()
        self._offchip_prefetched_wasted = 0
        self._l1_overprediction_baseline = 0

    # ------------------------------------------------------------------ #
    def _make_eviction_listener(self, cpu: int):
        def _listener(evicted) -> None:
            block = evicted.block_addr
            if (
                block in self._offchip_prefetched_unused
                and not self.memory.l2.contains(block)
                and not self._resident_in_any_l1(block)
            ):
                # The prefetched block left the chip without ever being
                # demand-used: a definitive overprediction.
                self._offchip_prefetched_unused.discard(block)
                self._offchip_prefetched_wasted += 1
            prefetcher = self.prefetchers[cpu]
            response = prefetcher.on_eviction(block, invalidated=evicted.invalidated)
            if response.forced_evictions:
                self._apply_forced_evictions(cpu, response.forced_evictions)
            if response.prefetches:
                self._apply_prefetches(cpu, response.prefetches)

        return _listener

    def _on_l2_eviction(self, evicted) -> None:
        block = evicted.block_addr
        if block in self._offchip_prefetched_unused and not self._resident_in_any_l1(block):
            self._offchip_prefetched_unused.discard(block)
            self._offchip_prefetched_wasted += 1

    def _resident_in_any_l1(self, block: int) -> bool:
        return any(l1.contains(block) for l1 in self._l1s)

    def _apply_forced_evictions(self, cpu: int, blocks: Iterable[int]) -> None:
        l1 = self.memory.l1(cpu)
        for block in blocks:
            l1.invalidate(block)

    def _apply_prefetches(self, cpu: int, prefetches) -> None:
        # Stream responses can carry many requests per access; bind the
        # loop-invariant lookups once.  Nothing here can change mid-call:
        # _measuring/result only change at the warmup boundary in run().
        block_mask = self._block_mask
        memory = self.memory
        l2_contains = memory.l2.contains
        prefetch_fill = memory.prefetch_fill
        tracked = self._offchip_prefetched_unused
        measuring = self._measuring
        result = self.result
        record_transfer = result.traffic.record_block_transfer
        for request in prefetches:
            block = request.address & block_mask
            was_offchip = not l2_contains(block)
            prefetch_fill(
                cpu,
                request.address,
                into_l1=request.target_l1,
                into_l2=True,
            )
            if was_offchip:
                # Track blocks the prefetcher brought on-chip; the first demand
                # access to one of them is an off-chip miss that was covered.
                tracked.add(block)
            if measuring:
                result.prefetches_issued += 1
                if request.target_l1:
                    result.prefetch_fills_l1 += 1
                result.prefetch_fills_l2 += 1
                record_transfer(TrafficClass.PREFETCH)

    # ------------------------------------------------------------------ #
    def _record_outcome(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> None:
        result = self.result
        is_read = record.is_read
        result.accesses += 1
        if is_read:
            result.reads += 1
        else:
            result.writes += 1
        if record.mode is ExecutionMode.SYSTEM:
            result.system_accesses += 1
        result.invalidations += outcome.invalidations_sent

        if outcome.l1_result.is_prefetch_hit:
            if is_read:
                result.l1_read_covered += 1
            else:
                result.l1_write_covered += 1

        # Off-chip coverage: the first demand use of a block the prefetcher
        # brought on-chip (and that has not been evicted everywhere since) is
        # an off-chip miss that the prefetcher eliminated.  Either way the
        # block's tracking entry is consumed, keeping the side table bounded.
        tracked = self._offchip_prefetched_unused
        if tracked:
            block = record.address & self._block_mask
            if block in tracked:
                tracked.discard(block)
                if outcome.level is MemoryLevel.MEMORY:
                    # The prefetched copy was lost before this use: wasted.
                    self._offchip_prefetched_wasted += 1
                elif is_read:
                    result.l2_read_covered += 1

        if outcome.l1_result.is_miss:
            if is_read:
                result.l1_read_misses += 1
            else:
                result.l1_write_misses += 1
            traffic = result.traffic
            traffic.record_block_transfer(TrafficClass.DEMAND_FETCH)
            traffic.record_useful_bytes(self._block_size)
            if outcome.false_sharing:
                result.false_sharing_misses += 1
            if is_read:
                result.l2_demand_reads += 1
                if outcome.level is MemoryLevel.L2:
                    result.l2_read_hits += 1
                else:
                    result.offchip_read_misses += 1
            elif outcome.level is MemoryLevel.MEMORY:
                result.offchip_write_misses += 1

    def _snapshot_overpredictions(self) -> None:
        """Copy prefetched-but-unused counters from the caches into the result."""
        l1_total = sum(l1.stats.prefetched_evicted_unused for l1 in self._l1s)
        self.result.l1_overpredictions = l1_total - self._l1_overprediction_baseline
        # Off-chip overpredictions: blocks the prefetcher brought on-chip during
        # the measurement phase that no demand access has used — the ones still
        # tracked plus the ones already retired as wasted.
        self.result.l2_overpredictions = (
            len(self._offchip_prefetched_unused) + self._offchip_prefetched_wasted
        )

    def _reset_measurement(self) -> None:
        """Begin the measurement phase: zero all counters, keep all state warm."""
        traffic = BandwidthAccountant(block_size=self.config.block_size)
        self.result = SimulationResult(
            name=self.name, num_cpus=self.config.num_cpus, traffic=traffic
        )
        self._l1_overprediction_baseline = sum(
            l1.stats.prefetched_evicted_unused for l1 in self._l1s
        )
        self._instruction_baseline = dict(self._instruction_latest)
        self._offchip_prefetched_unused = set()
        self._offchip_prefetched_wasted = 0

    # ------------------------------------------------------------------ #
    def _resolve_warmup_count(
        self,
        trace: Iterable[MemoryAccess],
        limit: Optional[int],
        warmup_accesses: Optional[int],
    ) -> int:
        """Warmup length: explicit argument, then ``config.warmup_accesses``,
        then ``config.warmup_fraction`` of the trace's length hint (see
        :func:`repro.trace.stream.resolve_warmup_count`)."""
        if warmup_accesses is None:
            warmup_accesses = self.config.warmup_accesses
        return resolve_warmup_count(
            trace,
            fraction=self.config.warmup_fraction,
            limit=limit,
            warmup_accesses=warmup_accesses,
        )

    def _resolve_lanes(self, lanes: Optional[bool]) -> bool:
        """Whether to attempt the lane fast path: argument, then env, then on."""
        if lanes is not None:
            return bool(lanes)
        value = _env.read(LANES_ENV_VAR)
        if value is not None:
            return value.strip().lower() not in ("0", "false", "off", "")
        return True

    def _lane_hooks(self):
        """Per-CPU lane dispatch table, or ``None`` when any CPU needs boxing.

        Each slot is ``None`` (a :class:`NullPrefetcher`: skip the per-access
        prefetcher call entirely) or ``(fn, target_l1)`` where ``fn`` is the
        prefetcher's :meth:`~repro.prefetch.base.Prefetcher.lane_hook`.  A
        single prefetcher without a lane hook (GHB, sectored-trainer SMS, ...)
        vetoes the whole lane path — mixed per-record dispatch is not worth
        its complexity.
        """
        hooks = []
        for prefetcher in self.prefetchers:
            if type(prefetcher) is NullPrefetcher:
                hooks.append(None)
                continue
            fn = prefetcher.lane_hook()
            if fn is None:
                return None
            hooks.append((fn, prefetcher.streams_into_l1))
        return hooks

    def _lane_path(self, trace, limit: Optional[int], chunk_size: int):
        """Return ``(chunks, hooks)`` for the lane fast path, or ``None``.

        Falls back to the reference path when the trace cannot produce lane
        chunks (text traces, generators, materialized lists), when any
        prefetcher lacks a lane hook, or when the replacement policy is not
        LRU (the fused loop inlines LRU bookkeeping).
        """
        if self.config.replacement != "lru":
            return None
        hooks = self._lane_hooks()
        if hooks is None:
            return None
        chunks = lane_chunk_iterator(trace, chunk_size)
        if chunks is None:
            return None
        if limit is not None:
            chunks = _limit_lane_chunks(chunks, limit)
        return chunks, hooks

    def _resolve_telemetry(self, telemetry_interval: Optional[int]) -> Optional[int]:
        """Probe interval: explicit argument, then ``REPRO_TRACE_TELEMETRY``."""
        if telemetry_interval is not None:
            return telemetry_interval if telemetry_interval > 0 else None
        value = _env.read(TELEMETRY_ENV_VAR)
        if not value:
            return None
        try:
            interval = int(value)
        except ValueError:
            return None
        return interval if interval > 0 else None

    def run(
        self,
        trace: Iterable[MemoryAccess],
        limit: Optional[int] = None,
        warmup_accesses: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lanes: Optional[bool] = None,
        telemetry_interval: Optional[int] = None,
    ) -> SimulationResult:
        """Run ``trace`` through the engine and return the measurement-phase result.

        The trace is consumed lazily in chunks of ``chunk_size`` records; it
        is never materialized, so arbitrarily long streams run in O(cache
        state + chunk) memory.  Streams that decode in chunks natively
        (:class:`~repro.trace.binary.BinaryTraceStream`) hand their decoded
        batches straight to the engine — no per-record generator hop.  The
        first ``warmup_accesses`` records (or ``config.warmup_fraction`` of
        the trace's length hint) warm caches and predictor state; counters
        are reset at the warmup boundary.  ``limit`` lazily truncates the
        trace, doing finite work even on an endless generator.

        ``lanes`` selects the lane fast path: ``.strc`` streams are decoded
        straight into flat integer lanes and simulated by :meth:`_step_lanes`
        without boxing a :class:`MemoryAccess` per record.  The default
        (``None``) consults the ``REPRO_ENGINE_LANES`` environment variable
        and otherwise enables the path; it silently falls back to the
        reference loop whenever the trace or a prefetcher cannot go
        lane-to-lane.  Both paths are bit-identical (gated by the golden
        counter tests).

        ``telemetry_interval`` (or ``REPRO_TRACE_TELEMETRY=N``) enables the
        simulation-time probe: every N measured records — sampled at chunk
        boundaries, so the fast path stays batched — prediction quality
        (coverage, overprediction, PHT occupancy) is recorded and exposed
        as ``result.telemetry``.  The probe reads counters only; golden
        results are identical with and without it.
        """
        interval = self._resolve_telemetry(telemetry_interval)
        probe = _TelemetryProbe(self, interval) if interval else None
        with obs_trace.span(
            "engine.run", {"engine": self.name or "engine", "cpus": self.config.num_cpus}
        ) as span:
            result = self._run_impl(trace, limit, warmup_accesses, chunk_size, lanes, probe)
            if probe is not None:
                result.telemetry = {"interval": probe.interval, "samples": probe.samples}
                # When a trace is active, the time-series also lands in the
                # trace file so trace-report can plot it next to the spans.
                obs_trace.emit("telemetry", obs_trace.current(), {
                    "name": self.name or "engine",
                    "interval": probe.interval,
                    "samples": probe.samples,
                })
            span.set("accesses", result.accesses)
            return result

    def _run_impl(
        self,
        trace: Iterable[MemoryAccess],
        limit: Optional[int],
        warmup_accesses: Optional[int],
        chunk_size: int,
        lanes: Optional[bool],
        probe: Optional[_TelemetryProbe],
    ) -> SimulationResult:
        warmup_count = self._resolve_warmup_count(trace, limit, warmup_accesses)

        lane_path = (
            self._lane_path(trace, limit, chunk_size) if self._resolve_lanes(lanes) else None
        )
        if lane_path is not None:
            lane_chunks, hooks = lane_path
            self._measuring = warmup_count == 0
            if self._measuring:
                self._reset_measurement()
            step_lanes = self._step_lanes
            remaining_warmup = warmup_count
            simulated = 0
            for chunk in lane_chunks:
                simulated += len(chunk)
                if not self._measuring:
                    head = len(chunk)
                    if remaining_warmup < head:
                        head = remaining_warmup
                        step_lanes(chunk.slice(0, head), hooks)
                        chunk = chunk.slice(head, None)
                        remaining_warmup = 0
                        self._reset_measurement()
                        self._measuring = True
                    else:
                        step_lanes(chunk, hooks)
                        remaining_warmup -= head
                        continue
                step_lanes(chunk, hooks)
                if probe is not None:
                    probe.note(simulated - warmup_count)
            _flush_engine_metrics("lanes", simulated)
            return self._finish_run(trace)

        if limit is None and isinstance(trace, TraceStream):
            chunks = trace.iter_chunks(chunk_size)
        else:
            stream = iter(trace)
            if limit is not None:
                stream = islice(stream, limit)
            chunks = iter_chunks(stream, chunk_size)

        self._measuring = warmup_count == 0
        if self._measuring:
            self._reset_measurement()

        step = self._step
        remaining_warmup = warmup_count
        simulated = 0
        for chunk in chunks:
            simulated += len(chunk)
            if not self._measuring:
                head = len(chunk)
                if remaining_warmup < head:
                    head = remaining_warmup
                    for record in chunk[:head]:
                        step(record)
                    chunk = chunk[head:]
                    remaining_warmup = 0
                    self._reset_measurement()
                    self._measuring = True
                else:
                    for record in chunk:
                        step(record)
                    remaining_warmup -= head
                    continue
            for record in chunk:
                step(record)
            if probe is not None:
                probe.note(simulated - warmup_count)

        _flush_engine_metrics("reference", simulated)
        return self._finish_run(trace)

    def _finish_run(self, trace) -> SimulationResult:
        if not self._measuring:
            # The stream ended inside the warmup phase (overestimated length
            # hint, or warmup_accesses/limit beyond the trace).  Reset so the
            # result is a clean, empty measurement phase rather than a
            # snapshot of warmup-phase tracking state.
            self._reset_measurement()
            self._measuring = True

        for prefetcher in self.prefetchers:
            prefetcher.finalize()
        self._snapshot_overpredictions()
        self._finalize_instructions()
        if isinstance(trace, TraceStream):
            metadata = getattr(trace, "metadata", None)
            if isinstance(metadata, WorkloadMetadata):
                self.result.workload = metadata
        return self.result

    def _step(self, record: MemoryAccess) -> None:
        outcome = self.memory.access(record)
        cpu = record.cpu
        icount = record.instruction_count
        latest = self._instruction_latest
        if icount > latest.get(cpu, 0):
            latest[cpu] = icount
        if self._measuring:
            self._record_outcome(record, outcome)
        response = self.prefetchers[cpu].on_access(record, outcome)
        if response.forced_evictions:
            self._apply_forced_evictions(cpu, response.forced_evictions)
        if response.prefetches:
            self._apply_prefetches(cpu, response.prefetches)

    def _lane_inline_evictions(self) -> bool:
        """True when every eviction-listener list is exactly the pair that
        construction registered (the memory system's directory-evict listener
        plus the engine's prefetcher forwarder; only the engine's retirement
        hook on the L2).  Then :meth:`_step_lanes` may run that work inline
        per eviction instead of through the listener closures.  Any extra
        listener (tests, tooling) forces the generic dispatch, which stays
        correct for arbitrary listener lists."""
        memory = self.memory
        directory_listeners = getattr(memory, "_directory_listeners", None)
        if directory_listeners is None or len(directory_listeners) != len(memory._l1s):
            return False
        for cpu, l1 in enumerate(memory._l1s):
            expected = [directory_listeners[cpu], self._l1_eviction_listeners[cpu]]
            if l1._eviction_listeners != expected:
                return False
        return memory.l2._eviction_listeners == [self._on_l2_eviction]

    def _step_lanes(self, chunk, hooks) -> None:
        """Simulate one lane chunk with the same semantics as :meth:`_step`.

        One fused loop walks the flat integer lanes and inlines the work of
        ``memory.access`` (directory transaction, L1 lookup/install, miss
        classification, L2 lookup/install), ``_record_outcome``, and
        ``_apply_prefetches``.  No ``MemoryAccess`` / ``AccessResult`` /
        ``AccessOutcomeRecord`` / ``CoherenceActions`` is ever constructed;
        the only objects built per event are the cache lines and directory
        entries that *are* the simulated state.  Counter effects are
        accumulated in locals and flushed once per chunk (all shared-object
        reads below are loop-invariant: ``result`` / ``_measuring`` / the
        tracked set only change at warmup boundaries between chunks).

        Bit-identity with the reference path is load-bearing and covered by
        the golden-counter tests; event *order* within a record mirrors the
        reference exactly (directory before L1, install before
        classification, classification before L2, eviction listeners fired
        mid-install in registration order).
        """
        memory = self.memory
        num_cpus = memory.num_cpus
        block_mask = self._block_mask

        directory = memory.directory
        entries = directory._entries
        modified = CoherenceState.MODIFIED
        shared = CoherenceState.SHARED
        invalid = CoherenceState.INVALID

        classifier = memory.classifier
        classify_block_miss = record_invalidation = record_remote_write = None
        if classifier is not None:
            classify_block_miss = classifier.classify_block_miss
            record_invalidation = classifier.record_invalidation
            record_remote_write = classifier.record_remote_write

        l1s = memory._l1s
        l1_sets = [l1._sets for l1 in l1s]
        l1_policies = [l1._policies for l1 in l1s]
        l1_stats = [l1.stats for l1 in l1s]
        l1_listeners = [l1._eviction_listeners for l1 in l1s]
        l1_invalidate = [l1.invalidate for l1 in l1s]
        l1_assoc = l1s[0].associativity
        l1_two_way = l1_assoc == 2
        l1_shift = l1s[0]._index_shift
        l1_set_mask = l1s[0]._set_mask

        l2 = memory.l2
        l2_sets = l2._sets
        l2_policies = l2._policies
        l2_stats = l2.stats
        l2_listeners = l2._eviction_listeners
        l2_assoc = l2.associativity
        l2_shift = l2._index_shift
        l2_set_mask = l2._set_mask

        prefetchers = self.prefetchers
        apply_forced = self._apply_forced_evictions
        apply_prefetches = self._apply_prefetches
        inline_evictions = self._lane_inline_evictions()

        # Per-CPU eviction handlers for the inlined listener path: ``None``
        # skips the call (NullPrefetcher's on_eviction is a stateless no-op),
        # a lane eviction hook runs unboxed, anything else falls back to the
        # boxed on_eviction + response application.
        evict_hooks = []
        for hook_cpu, prefetcher in enumerate(prefetchers):
            if type(prefetcher) is NullPrefetcher:
                evict_hooks.append(None)
                continue
            fn = prefetcher.lane_eviction_hook()
            if fn is None:

                def fn(block, _cpu=hook_cpu, _prefetcher=prefetcher):
                    response = _prefetcher.on_eviction(block, invalidated=False)
                    if response.forced_evictions:
                        apply_forced(_cpu, response.forced_evictions)
                    if response.prefetches:
                        apply_prefetches(_cpu, response.prefetches)

            evict_hooks.append(fn)

        measuring = self._measuring
        tracked = self._offchip_prefetched_unused
        latest = self._instruction_latest
        inst_max = [latest.get(cpu, 0) for cpu in range(num_cpus)]
        total_inst = memory.total_instructions

        # Cache-statistics tallies, flushed per chunk.  Mid-chunk readers of
        # hit/access counters would see deferred values, but the only
        # mid-chunk code is the construction-time eviction listeners, which
        # read none of these (eviction-side stats stay live in the install
        # helpers).
        zeros = [0] * num_cpus
        c1_reads = list(zeros)
        c1_writes = list(zeros)
        c1_hits = list(zeros)
        c1_pf_hits = list(zeros)
        c1_read_misses = list(zeros)
        c1_write_misses = list(zeros)
        c1_pf_fills = list(zeros)
        c2_reads = c2_writes = c2_hits = c2_pf_hits = 0
        c2_read_misses = c2_write_misses = c2_pf_fills = 0

        def install_l1_fill(cpu, cache_set, policy, block):
            """Inlined ``SetAssociativeCache._install`` of a prefetch fill
            (dirty=False, prefetched=True, used=False) into one L1 set, with
            the construction-time eviction listeners (directory evict +
            prefetcher forwarding) themselves inlined when verified safe.
            Demand installs are inlined directly in the record loop."""
            last_use = policy._last_use
            if len(cache_set) >= l1_assoc:
                stats = l1_stats[cpu]
                if l1_two_way:
                    # A full 2-way set is exactly two ways; clock values are
                    # unique, so the direct compare picks min()'s victim.
                    w0, w1 = cache_set
                    victim_way = w0 if last_use[w0] < last_use[w1] else w1
                else:
                    victim_way = min(cache_set, key=last_use.__getitem__)
                victim = cache_set.pop(victim_way)
                del last_use[victim_way]
                stats.evictions += 1
                if victim.dirty:
                    stats.dirty_evictions += 1
                if victim.prefetched and not victim.used:
                    stats.prefetched_evicted_unused += 1
                vblock = victim.block_addr
                if inline_evictions:
                    # Directory.evict(cpu, vblock), sans boxed entry lookup.
                    entry = entries.get(vblock)
                    if entry is not None:
                        sharers = entry.sharers
                        sharers.discard(cpu)
                        if entry.owner == cpu:
                            entry.owner = None
                        if not sharers:
                            entry.state = invalid
                            entry.owner = None
                        elif entry.state is modified and entry.owner is None:
                            entry.state = shared
                    # Engine listener: retire tracked blocks that left the
                    # chip (residency scans inlined; vblock is block-aligned
                    # so Cache.contains' masking is a no-op).
                    if vblock in tracked:
                        resident = False
                        for line in l2_sets[(vblock >> l2_shift) & l2_set_mask].values():
                            if line.block_addr == vblock:
                                resident = True
                                break
                        if not resident:
                            vindex = (vblock >> l1_shift) & l1_set_mask
                            for sets in l1_sets:
                                for line in sets[vindex].values():
                                    if line.block_addr == vblock:
                                        resident = True
                                        break
                                if resident:
                                    break
                        if not resident:
                            tracked.discard(vblock)
                            self._offchip_prefetched_wasted += 1
                    handler = evict_hooks[cpu]
                    if handler is not None:
                        handler(vblock)
                else:
                    evicted_line = EvictedLine(
                        vblock, victim.dirty, victim.prefetched, victim.used, False
                    )
                    for listener in l1_listeners[cpu]:
                        listener(evicted_line)
                way = victim_way
            else:
                way = 0
                while way in cache_set:
                    way += 1
            cache_set[way] = CacheLine(block, False, True, False)
            policy._clock = clock = policy._clock + 1
            last_use[way] = clock

        def install_l2_fill(cache_set, policy, block):
            """Inlined ``_install`` of a prefetch fill into one L2 set (sole
            listener: the engine's tracked-block retirement hook)."""
            last_use = policy._last_use
            if len(cache_set) >= l2_assoc:
                victim_way = min(cache_set, key=last_use.__getitem__)
                victim = cache_set.pop(victim_way)
                del last_use[victim_way]
                l2_stats.evictions += 1
                if victim.dirty:
                    l2_stats.dirty_evictions += 1
                if victim.prefetched and not victim.used:
                    l2_stats.prefetched_evicted_unused += 1
                vblock = victim.block_addr
                if inline_evictions:
                    if vblock in tracked:
                        resident = False
                        vindex = (vblock >> l1_shift) & l1_set_mask
                        for sets in l1_sets:
                            for line in sets[vindex].values():
                                if line.block_addr == vblock:
                                    resident = True
                                    break
                            if resident:
                                break
                        if not resident:
                            tracked.discard(vblock)
                            self._offchip_prefetched_wasted += 1
                else:
                    evicted_line = EvictedLine(
                        vblock, victim.dirty, victim.prefetched, victim.used, False
                    )
                    for listener in l2_listeners:
                        listener(evicted_line)
                way = victim_way
            else:
                way = 0
                while way in cache_set:
                    way += 1
            cache_set[way] = CacheLine(block, False, True, False)
            policy._clock = clock = policy._clock + 1
            last_use[way] = clock

        # Per-chunk counter accumulators, flushed in the finally block (so a
        # mid-chunk ValueError leaves exactly the already-processed records
        # counted, as the per-record reference path would).
        n_done = 0
        dir_reads = dir_writes = dir_invals = dir_downgrades = 0
        m_reads = m_writes = m_system = m_invalidations = 0
        m_l1_read_cov = m_l1_write_cov = m_l2_read_cov = 0
        m_l1_read_miss = m_l1_write_miss = m_false_sharing = 0
        m_l2_demand_reads = m_l2_read_hits = 0
        m_offchip_reads = m_offchip_writes = 0
        m_pf_issued = m_pf_l1 = m_pf_l2 = 0

        try:
            for pc, address, code, cpu, icount in zip(
                chunk.pc, chunk.address, chunk.code, chunk.cpu, chunk.instruction_count
            ):
                if cpu >= num_cpus:
                    raise ValueError(f"record.cpu={cpu} out of range for {num_cpus} CPUs")
                n_done += 1
                if icount > inst_max[cpu]:
                    inst_max[cpu] = icount
                    if icount > total_inst:
                        total_inst = icount

                is_write = (code & 1) == 1
                block = address & block_mask

                # --- Directory transaction (before the local lookup). -------
                invalidations_sent = 0
                entry = entries.get(block)
                if entry is None:
                    entry = DirectoryEntry(block_addr=block)  # repro: ignore[HOT001] -- directory entries are the simulated state the reference path allocates too
                    entries[block] = entry
                if is_write:
                    dir_writes += 1
                    sharers = entry.sharers
                    invalidations_sent = len(sharers)
                    if cpu in sharers:
                        invalidations_sent -= 1
                    if invalidations_sent:
                        others = [other for other in sharers if other != cpu]
                        dir_invals += invalidations_sent
                        sharers.clear()
                        sharers.add(cpu)
                        entry.owner = cpu
                        entry.state = modified
                        for other in others:
                            evicted = l1_invalidate[other](block)
                            if evicted is not None:
                                if record_invalidation is not None:
                                    record_invalidation(other, block, address)
                            elif record_remote_write is not None:
                                record_remote_write(other, block, address)
                    else:
                        if not sharers:
                            sharers.add(cpu)
                        entry.owner = cpu
                        entry.state = modified
                else:
                    dir_reads += 1
                    state = entry.state
                    if state is modified and entry.owner != cpu:
                        dir_downgrades += 1
                        entry.state = shared
                        entry.owner = None
                    entry.sharers.add(cpu)
                    if state is invalid:
                        entry.state = shared

                # --- L1 lookup (install-on-miss inlined). -------------------
                set_index = (address >> l1_shift) & l1_set_mask
                cache_set = l1_sets[cpu][set_index]
                if is_write:
                    c1_writes[cpu] += 1
                else:
                    c1_reads[cpu] += 1
                l1_hit = l1_prefetch_hit = l2_hit = False
                for way, line in cache_set.items():
                    if line.block_addr == block:
                        policy = l1_policies[cpu][set_index]
                        policy._clock = clock = policy._clock + 1
                        policy._last_use[way] = clock
                        if line.prefetched and not line.used:
                            l1_prefetch_hit = True
                            c1_pf_hits[cpu] += 1
                        c1_hits[cpu] += 1
                        line.used = True
                        if is_write:
                            line.dirty = True
                        l1_hit = True
                        break
                if not l1_hit:
                    if is_write:
                        c1_write_misses[cpu] += 1
                    else:
                        c1_read_misses[cpu] += 1
                    # install_l1(...) inlined for the demand miss (the hottest
                    # call site; ~every record on miss-heavy workloads), with
                    # dirty=is_write, prefetched=False folded in.
                    policy = l1_policies[cpu][set_index]
                    last_use = policy._last_use
                    if len(cache_set) >= l1_assoc:
                        stats = l1_stats[cpu]
                        if l1_two_way:
                            w0, w1 = cache_set
                            way = w0 if last_use[w0] < last_use[w1] else w1
                        else:
                            way = min(cache_set, key=last_use.__getitem__)
                        victim = cache_set.pop(way)
                        del last_use[way]
                        stats.evictions += 1
                        if victim.dirty:
                            stats.dirty_evictions += 1
                        if victim.prefetched and not victim.used:
                            stats.prefetched_evicted_unused += 1
                        vblock = victim.block_addr
                        if inline_evictions:
                            entry = entries.get(vblock)
                            if entry is not None:
                                sharers = entry.sharers
                                sharers.discard(cpu)
                                if entry.owner == cpu:
                                    entry.owner = None
                                if not sharers:
                                    entry.state = invalid
                                    entry.owner = None
                                elif entry.state is modified and entry.owner is None:
                                    entry.state = shared
                            if vblock in tracked:
                                resident = False
                                for line in l2_sets[(vblock >> l2_shift) & l2_set_mask].values():
                                    if line.block_addr == vblock:
                                        resident = True
                                        break
                                if not resident:
                                    vindex = (vblock >> l1_shift) & l1_set_mask
                                    for sets in l1_sets:
                                        for line in sets[vindex].values():
                                            if line.block_addr == vblock:
                                                resident = True
                                                break
                                        if resident:
                                            break
                                if not resident:
                                    tracked.discard(vblock)
                                    self._offchip_prefetched_wasted += 1
                            handler = evict_hooks[cpu]
                            if handler is not None:
                                handler(vblock)
                        else:
                            evicted_line = EvictedLine(  # repro: ignore[HOT001] -- boxed only on the foreign-listener fallback, once per eviction as the listener API requires
                                vblock, victim.dirty, victim.prefetched, victim.used, False
                            )
                            for listener in l1_listeners[cpu]:
                                listener(evicted_line)
                    else:
                        way = 0
                        while way in cache_set:
                            way += 1
                    cache_set[way] = CacheLine(block, is_write, False, True)  # repro: ignore[HOT001] -- cache lines are the simulated state the reference path allocates too
                    policy._clock = clock = policy._clock + 1
                    last_use[way] = clock

                    # --- Miss classification, then shared L2. ---------------
                    was_false_sharing = (
                        classify_block_miss is not None and classify_block_miss(cpu, block)
                    )

                    l2_index = (address >> l2_shift) & l2_set_mask
                    l2_set = l2_sets[l2_index]
                    if is_write:
                        c2_writes += 1
                    else:
                        c2_reads += 1
                    for way, line in l2_set.items():
                        if line.block_addr == block:
                            policy = l2_policies[l2_index]
                            policy._clock = clock = policy._clock + 1
                            policy._last_use[way] = clock
                            if line.prefetched and not line.used:
                                c2_pf_hits += 1
                            c2_hits += 1
                            line.used = True
                            if is_write:
                                line.dirty = True
                            l2_hit = True
                            break
                    if not l2_hit:
                        if is_write:
                            c2_write_misses += 1
                        else:
                            c2_read_misses += 1
                        # install_l2(...) inlined for the demand miss.
                        policy = l2_policies[l2_index]
                        last_use = policy._last_use
                        if len(l2_set) >= l2_assoc:
                            way = min(l2_set, key=last_use.__getitem__)
                            victim = l2_set.pop(way)
                            del last_use[way]
                            l2_stats.evictions += 1
                            if victim.dirty:
                                l2_stats.dirty_evictions += 1
                            if victim.prefetched and not victim.used:
                                l2_stats.prefetched_evicted_unused += 1
                            vblock = victim.block_addr
                            if inline_evictions:
                                if vblock in tracked:
                                    resident = False
                                    vindex = (vblock >> l1_shift) & l1_set_mask
                                    for sets in l1_sets:
                                        for line in sets[vindex].values():
                                            if line.block_addr == vblock:
                                                resident = True
                                                break
                                        if resident:
                                            break
                                    if not resident:
                                        tracked.discard(vblock)
                                        self._offchip_prefetched_wasted += 1
                            else:
                                evicted_line = EvictedLine(  # repro: ignore[HOT001] -- boxed only on the foreign-listener fallback, once per eviction as the listener API requires
                                    vblock, victim.dirty, victim.prefetched, victim.used, False
                                )
                                for listener in l2_listeners:
                                    listener(evicted_line)
                        else:
                            way = 0
                            while way in l2_set:
                                way += 1
                        l2_set[way] = CacheLine(block, is_write, False, True)  # repro: ignore[HOT001] -- cache lines are the simulated state the reference path allocates too
                        policy._clock = clock = policy._clock + 1
                        last_use[way] = clock

                # --- Measurement counters (reference: _record_outcome). -----
                if measuring:
                    if is_write:
                        m_writes += 1
                    else:
                        m_reads += 1
                    if code & 2:
                        m_system += 1
                    m_invalidations += invalidations_sent
                    if l1_prefetch_hit:
                        if is_write:
                            m_l1_write_cov += 1
                        else:
                            m_l1_read_cov += 1
                    if tracked and block in tracked:
                        tracked.discard(block)
                        if not (l1_hit or l2_hit):
                            self._offchip_prefetched_wasted += 1
                        elif not is_write:
                            m_l2_read_cov += 1
                    if not l1_hit:
                        if is_write:
                            m_l1_write_miss += 1
                        else:
                            m_l1_read_miss += 1
                        if was_false_sharing:
                            m_false_sharing += 1
                        if is_write:
                            if not l2_hit:
                                m_offchip_writes += 1
                        else:
                            m_l2_demand_reads += 1
                            if l2_hit:
                                m_l2_read_hits += 1
                            else:
                                m_offchip_reads += 1

                # --- Prefetcher hook + stream fills (ref: _apply_prefetches).
                hook = hooks[cpu]
                if hook is not None:
                    addresses = hook[0](pc, address)
                    if addresses:
                        target_l1 = hook[1]
                        for paddr in addresses:
                            pblock = paddr & block_mask
                            dir_reads += 1
                            entry = entries.get(pblock)
                            if entry is None:
                                entry = DirectoryEntry(block_addr=pblock)  # repro: ignore[HOT001] -- directory entries are the simulated state the reference path allocates too
                                entries[pblock] = entry
                            state = entry.state
                            if state is modified and entry.owner != cpu:
                                dir_downgrades += 1
                                entry.state = shared
                                entry.owner = None
                            entry.sharers.add(cpu)
                            if state is invalid:
                                entry.state = shared
                            # L2 fill; the residency scan doubles as the
                            # reference path's was-off-chip probe (nothing
                            # between them can change L2 residency).
                            findex = (pblock >> l2_shift) & l2_set_mask
                            fset = l2_sets[findex]
                            resident = False
                            for line in fset.values():
                                if line.block_addr == pblock:
                                    resident = True
                                    break
                            if not resident:
                                c2_pf_fills += 1
                                install_l2_fill(fset, l2_policies[findex], pblock)
                            if target_l1:
                                findex = (pblock >> l1_shift) & l1_set_mask
                                fset = l1_sets[cpu][findex]
                                for line in fset.values():
                                    if line.block_addr == pblock:
                                        break
                                else:
                                    c1_pf_fills[cpu] += 1
                                    install_l1_fill(cpu, fset, l1_policies[cpu][findex], pblock)
                            if not resident:
                                # The prefetch brought the block on-chip;
                                # its first demand use is a covered off-chip
                                # miss.
                                tracked.add(pblock)
                            if measuring:
                                m_pf_issued += 1
                                if target_l1:
                                    m_pf_l1 += 1
                                m_pf_l2 += 1
        finally:
            memory.total_accesses += n_done
            memory.total_instructions = total_inst
            for cpu in range(num_cpus):
                peak = inst_max[cpu]
                if peak > latest.get(cpu, 0):
                    latest[cpu] = peak
            directory.read_requests += dir_reads
            directory.write_requests += dir_writes
            directory.invalidations_sent += dir_invals
            directory.downgrades_sent += dir_downgrades
            for cpu in range(num_cpus):
                reads = c1_reads[cpu]
                writes = c1_writes[cpu]
                stats = l1_stats[cpu]
                if c1_pf_fills[cpu]:
                    stats.prefetch_fills += c1_pf_fills[cpu]
                if not (reads or writes):
                    continue
                stats.accesses += reads + writes
                stats.reads += reads
                stats.writes += writes
                stats.hits += c1_hits[cpu]
                rm = c1_read_misses[cpu]
                wm = c1_write_misses[cpu]
                stats.misses += rm + wm
                stats.read_misses += rm
                stats.write_misses += wm
                pf = c1_pf_hits[cpu]
                if pf:
                    stats.prefetch_hits += pf
                    stats.prefetched_used += pf
            if c2_pf_fills:
                l2_stats.prefetch_fills += c2_pf_fills
            if c2_reads or c2_writes:
                l2_stats.accesses += c2_reads + c2_writes
                l2_stats.reads += c2_reads
                l2_stats.writes += c2_writes
                l2_stats.hits += c2_hits
                l2_stats.misses += c2_read_misses + c2_write_misses
                l2_stats.read_misses += c2_read_misses
                l2_stats.write_misses += c2_write_misses
                if c2_pf_hits:
                    l2_stats.prefetch_hits += c2_pf_hits
                    l2_stats.prefetched_used += c2_pf_hits
            if measuring:
                result = self.result
                result.accesses += n_done
                result.reads += m_reads
                result.writes += m_writes
                result.system_accesses += m_system
                result.invalidations += m_invalidations
                result.l1_read_covered += m_l1_read_cov
                result.l1_write_covered += m_l1_write_cov
                result.l2_read_covered += m_l2_read_cov
                result.l1_read_misses += m_l1_read_miss
                result.l1_write_misses += m_l1_write_miss
                result.false_sharing_misses += m_false_sharing
                result.l2_demand_reads += m_l2_demand_reads
                result.l2_read_hits += m_l2_read_hits
                result.offchip_read_misses += m_offchip_reads
                result.offchip_write_misses += m_offchip_writes
                result.prefetches_issued += m_pf_issued
                result.prefetch_fills_l1 += m_pf_l1
                result.prefetch_fills_l2 += m_pf_l2
                traffic = result.traffic
                misses = m_l1_read_miss + m_l1_write_miss
                if misses:
                    traffic.record_block_transfer(TrafficClass.DEMAND_FETCH, misses)
                    traffic.record_useful_bytes(self._block_size * misses)
                if m_pf_issued:
                    traffic.record_block_transfer(TrafficClass.PREFETCH, m_pf_issued)

    def _finalize_instructions(self) -> None:
        total = 0
        for cpu, latest in self._instruction_latest.items():
            baseline = self._instruction_baseline.get(cpu, 0)
            total += max(0, latest - baseline)
        self.result.instructions = max(total, 1)


def run_simulation(
    trace: Iterable[MemoryAccess],
    config: Optional[SimulationConfig] = None,
    prefetcher_factory: Optional[PrefetcherFactory] = None,
    name: str = "",
    limit: Optional[int] = None,
    warmup_accesses: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper: build an engine, run ``trace``, return the result."""
    engine = SimulationEngine(config=config, prefetcher_factory=prefetcher_factory, name=name)
    return engine.run(trace, limit=limit, warmup_accesses=warmup_accesses)
