"""Append-only per-point completion journal for resumable sweeps.

A sweep that dies mid-run — SIGKILL, OOM, a nightly job's time limit —
used to lose every completed-but-unstored point.  The journal closes that
window: as each sweep point completes, the parent appends one ndjson
record (``{"digest": ..., "status": "done", ...}``) *after* the point's
result is durable in the :class:`~repro.simulation.result_cache.\
SweepResultCache`.  A restarted sweep loads the journal, answers the
journaled points from the cache, and executes only what is missing — the
resume path ``repro.cli experiment --resume`` and the nightly job rely on.

Design constraints, in order:

* **Crash-safe appends.**  Each record is one ``os.write`` of one short
  line on an ``O_APPEND`` descriptor — the POSIX-atomic append shape — so
  concurrent writers (parallel sweeps, a serve daemon sharing the cache
  directory) interleave whole lines, and a crash can tear at most the
  final line.
* **Torn tails are data loss, not corruption.**  :meth:`SweepJournal.load`
  skips undecodable lines instead of raising; a torn record merely means
  that point recomputes.  A torn write has no trailing newline, so the
  *next* append lands on the same physical line — the loader recovers the
  intact record from the tail of such a merged line, so one torn write
  costs exactly one record.
* **Keyed to the code fingerprint.**  The journal file name embeds
  :func:`~repro.simulation.result_cache.entry_prefix`, matching the cache
  entries it indexes: a code change starts a fresh journal, and stale
  journals are prunable by listing, exactly like stale cache entries.
* **No wall-clock, no entropy.**  Records carry digests, statuses, and
  attempt counts — nothing that varies run to run — so journals from
  identical runs are byte-identical, like everything else here.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from repro import faults, obs
from repro.obs import trace
from repro.simulation.result_cache import entry_prefix

__all__ = ["SweepJournal", "journal_path"]

#: Subdirectory of the cache root holding completion journals.
JOURNAL_SUBDIR = "journal"


def journal_path(directory: Union[str, Path]) -> Path:
    """Journal file for the current code fingerprint under ``directory``."""
    return Path(directory) / JOURNAL_SUBDIR / f"sweep-{entry_prefix()}.ndjson"


def _parse_line(line: bytes) -> Optional[dict]:
    """One journal line -> record dict, or ``None`` if unrecoverable.

    A crash can tear the final append, leaving a truncated record with no
    newline; the next append then lands on the same physical line
    (``{"atte...{"attempts": 1, ...}``).  When the whole line does not
    parse, retry from each later ``{`` so the intact trailing record is
    recovered and only the torn one is lost.
    """
    text = line.decode("utf-8", errors="replace")
    start = 0
    while True:
        try:
            record = json.loads(text[start:])
        except json.JSONDecodeError:
            start = text.find("{", start + 1)
            if start < 0:
                return None
            continue
        return record if isinstance(record, dict) else None


class SweepJournal:
    """Append-only record of sweep-point completions in one cache directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = journal_path(directory)
        self._loaded: Optional[Dict[str, dict]] = None

    # ------------------------------------------------------------------ #
    def load(self) -> Dict[str, dict]:
        """Latest record per digest; torn/invalid lines are skipped.

        The parse is cached on the instance — a sweep loads once up front
        and then only appends; construct a fresh journal to re-read.
        """
        if self._loaded is not None:
            return self._loaded
        records: Dict[str, dict] = {}
        try:
            with self.path.open("rb") as handle:
                for line in handle:
                    record = _parse_line(line)
                    digest = record.get("digest") if record is not None else None
                    if isinstance(digest, str):
                        records[digest] = record
        except OSError:
            pass  # no journal yet — nothing to resume
        self._loaded = records
        return records

    def completed(self) -> Set[str]:
        """Digests whose latest record is ``status == "done"``."""
        return {
            digest
            for digest, record in self.load().items()
            if record.get("status") == "done"
        }

    def failed(self) -> Dict[str, dict]:
        """Latest record per digest whose status is ``"failed"``."""
        return {
            digest: record
            for digest, record in self.load().items()
            if record.get("status") == "failed"
        }

    # ------------------------------------------------------------------ #
    def record(self, digest: str, status: str, **fields: Any) -> None:
        """Append one record; failures are non-fatal (the sweep goes on).

        Call only after the fact it records is durable (the cache entry
        written) — the journal is the index, the cache is the data.
        """
        record = {"digest": digest, "status": status}
        record.update(fields)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with trace.span(
            "journal.append", {"status": status, "digest": digest[:16]}, root=False
        ) as span:
            spec = faults.check("journal.append")
            if spec is not None:
                if spec.kind in faults.MANGLING_KINDS:
                    line = faults.mangle(spec, line)
                else:
                    faults.act(spec)
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)
            except OSError:
                span.mark_error("journal append failed")
                return  # a lost journal line costs one recompute on resume
        obs.counter(
            "repro_sweep_journal_appends_total",
            "Journal records appended, by completion status.",
            labels=("status",),
        ).labels(status).inc()
        if self._loaded is not None:
            self._loaded[digest] = record

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return f"SweepJournal(path={str(self.path)!r})"
