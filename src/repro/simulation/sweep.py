"""Parallel, fault-tolerant sweep runner for experiment configurations.

Every figure of the paper is a *sweep*: the same per-item function (one
application, one category, one block size, ...) evaluated over a list of
items.  :class:`SweepRunner` fans such sweeps out over ``multiprocessing``
workers while preserving item order, and degrades gracefully to serial
execution when parallelism is unavailable (restricted containers, unpicklable
tasks) or not requested.

Because each worker is a separate process, the per-item functions must be
importable module-level callables with picklable arguments and results — the
experiment runners in :mod:`repro.experiments` are written that way.  Workers
rebuild their own traces (the in-process trace cache is per-worker), trading
redundant generation for fully independent, deterministic runs.

A :class:`~repro.simulation.result_cache.SweepResultCache` can be attached to
memoize completed task results on disk: cached tasks are answered before any
worker is spawned, only the misses fan out, and fresh results are stored by
the parent process *as each point completes* — not after the whole sweep —
so an interrupted run keeps everything it finished.  Pair the cache with a
:class:`~repro.simulation.journal.SweepJournal` and the sweep becomes
resumable: each completion is journaled once its cache entry is durable, and
a restarted sweep re-executes only the missing points.

Fault tolerance is governed by a :class:`SweepPolicy` (per-point retries
with exponential backoff, an optional per-point timeout for parallel runs,
journaling, and *partial* mode, where a point that exhausts its retries
yields a :class:`FailedPoint` marker plus an entry in the runner's failure
manifest instead of aborting the sweep).  The policy can be set per runner,
ambiently via :func:`set_default_policy` (the CLI's ``--resume`` /
``--max-retries`` flags), or through the environment
(``REPRO_SWEEP_RESUME=1``, ``REPRO_SWEEP_RETRIES=N``) so nightly jobs opt
in without code changes.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import _env, faults, obs
from repro.obs import trace
from repro.simulation.journal import SweepJournal
from repro.simulation.result_cache import SweepResultCache, default_cache, remove_temp_files

#: Environment variable enabling journaled, resumable sweeps ("1" to enable).
SWEEP_RESUME_ENV = "REPRO_SWEEP_RESUME"

#: Environment variable setting the default per-point retry budget.
SWEEP_RETRIES_ENV = "REPRO_SWEEP_RETRIES"


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``fn(*args, **kwargs)`` identified by ``key``."""

    key: Any
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class FailedPoint:
    """Partial-mode placeholder for a point that exhausted its retries."""

    key: Any
    error: str
    attempts: int


@dataclass(frozen=True)
class SweepPolicy:
    """Fault-tolerance knobs for a sweep (see module docstring)."""

    #: Re-executions granted to a failing point before it counts as failed.
    max_retries: int = 0
    #: First retry backoff in seconds; doubles per attempt.
    backoff_base: float = 0.05
    #: Parallel-mode deadline per point result; ``None`` waits forever.
    #: On expiry the pool is abandoned and the rest of the sweep runs
    #: serially in the parent, so one lost worker cannot hang the sweep.
    point_timeout: Optional[float] = None
    #: Failed points become :class:`FailedPoint` results instead of raising.
    partial: bool = False
    #: Journal per-point completions next to the result cache (resume).
    journal: bool = False


def _run_task(task: SweepTask) -> Any:
    """Execute one task through the ``sweep.point`` fault-injection site."""
    faults.fire("sweep.point")
    return task.execute()


def _execute_task_guarded(task: SweepTask) -> Tuple[bool, Any]:
    """Top-level trampoline so tasks can be dispatched through a Pool.

    Task exceptions are returned rather than raised so the caller can tell a
    failing task (retry or re-raise it) apart from failing pool
    infrastructure (fall back to serial execution).
    """
    try:
        return True, _run_task(task)
    except Exception as exc:  # repro: ignore[EXC001] -- returned to the parent, which retries or re-raises task failures
        return False, exc


def default_worker_count() -> int:
    """Worker count used when a parallel sweep does not specify one."""
    return max(1, os.cpu_count() or 1)


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM as KeyboardInterrupt for the duration of a sweep.

    ``kill <pid>`` of a parallel sweep then takes the same orderly path as
    Ctrl-C: the ``multiprocessing.Pool`` context manager terminates the
    child processes and the runner sweeps up its temp cache files, instead
    of the parent dying mid-``map`` and leaking both.  Signal handlers can
    only be installed from the main thread; elsewhere (e.g. the serve
    pool's executor threads) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):  # noqa: ARG001 - signal handler signature
        raise KeyboardInterrupt
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover - non-main interpreter thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class SweepRunner:
    """Runs sweep tasks serially or across a ``multiprocessing`` pool.

    ``max_workers=None``, ``0``, or ``1`` selects serial execution (the
    default — deterministic, no process overhead, right for small sweeps).
    Larger values fan tasks out over that many worker processes.  If the pool
    cannot be created or the tasks cannot be pickled, the runner falls back
    to serial execution rather than failing the sweep.

    Per-point fault tolerance (retries, timeouts, journaling, partial mode)
    follows the explicit constructor arguments, then the ambient
    :class:`SweepPolicy`.  After :meth:`run`, ``self.report`` holds the
    reuse/failure accounting and ``self.manifest`` the
    :class:`FailedPoint` list of a partial run.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[SweepResultCache] = None,
        journal: Optional[SweepJournal] = None,
        max_retries: Optional[int] = None,
        backoff_base: Optional[float] = None,
        point_timeout: Optional[float] = None,
        partial: Optional[bool] = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be non-negative, got {max_workers}")
        self.max_workers = max_workers
        self.cache = cache if cache is not None else default_cache()
        policy = default_policy()
        self.max_retries = policy.max_retries if max_retries is None else max_retries
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        self.backoff_base = policy.backoff_base if backoff_base is None else backoff_base
        self.point_timeout = policy.point_timeout if point_timeout is None else point_timeout
        self.partial = policy.partial if partial is None else partial
        if journal is None and policy.journal and self.cache is not None:
            journal = SweepJournal(self.cache.directory)
        self.journal = journal
        self.report: Dict[str, int] = {}
        self.manifest: List[FailedPoint] = []

    @property
    def parallel(self) -> bool:
        return (self.max_workers or 0) > 1

    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Execute ``tasks`` and return their results in task order.

        With a cache attached, previously completed tasks are answered from
        disk and only the remainder is executed (serially or in parallel);
        fresh results are stored by the parent process — one by one, as
        points complete — never by workers.  With a journal as well, points
        completed by an interrupted earlier run are counted as ``resumed``
        in ``self.report``.
        """
        tasks = list(tasks)
        self.manifest = []
        report = {
            "total": len(tasks), "cached": 0, "resumed": 0,
            "executed": 0, "failed": 0, "retries": 0,
        }
        self.report = report
        # The sweep span is the trace parent of every point, cache op, and
        # journal append below (all on this thread, so ambient nesting
        # works); in a serve worker it nests under the worker's span.
        with trace.span("sweep.run", {"total": len(tasks)}) as sweep_span:
            if not tasks:
                _note_report(report)
                return []
            cache = self.cache
            results: List[Any] = [None] * len(tasks)
            digests: List[Optional[str]] = [None] * len(tasks)
            pending: List[int] = []
            journal_done = (
                self.journal.completed()
                if (self.journal is not None and cache is not None)
                else set()
            )
            if cache is None:
                pending = list(range(len(tasks)))
            else:
                for index, task in enumerate(tasks):
                    digest = cache.fingerprint(task.fn, task.args, task.kwargs)
                    digests[index] = digest
                    if digest is not None:
                        hit, value = cache.get(digest)
                        if hit:
                            results[index] = value
                            report["cached"] += 1
                            if digest in journal_done:
                                report["resumed"] += 1
                            continue
                    pending.append(index)
            if pending:
                try:
                    self._execute_pending(tasks, pending, digests, results, report)
                except KeyboardInterrupt:
                    # Scoped to this process's own staging files: a sibling
                    # sweep or a serve daemon sharing the cache directory may
                    # have atomic writes in flight that must not be yanked
                    # from under it.  Completed points are already cached and
                    # journaled, so a rerun resumes where this one stopped.
                    remove_temp_files(
                        cache.directory if cache is not None else None,
                        pids={os.getpid()},
                    )
                    _note_report(report)
                    raise
            _note_report(report)
            for outcome in ("cached", "resumed", "executed", "failed", "retries"):
                sweep_span.set(outcome, report[outcome])
            return results

    # ------------------------------------------------------------------ #
    def _execute_pending(
        self,
        tasks: Sequence[SweepTask],
        pending: List[int],
        digests: List[Optional[str]],
        results: List[Any],
        report: Dict[str, int],
    ) -> None:
        """Execute the cache-miss points, storing each as it completes."""
        remaining: List[Tuple[int, int]] = [(index, 0) for index in pending]
        if self.parallel and len(remaining) > 1:
            remaining = self._execute_parallel(tasks, pending, digests, results, report)
        if remaining:
            with _sigterm_as_interrupt():
                for index, prior_attempts in remaining:
                    self._run_point(
                        tasks[index], index, digests[index], results, report,
                        prior_attempts=prior_attempts,
                    )

    def _execute_parallel(
        self,
        tasks: Sequence[SweepTask],
        pending: List[int],
        digests: List[Optional[str]],
        results: List[Any],
        report: Dict[str, int],
    ) -> List[Tuple[int, int]]:
        """Fan pending points over a Pool; return ``(index, attempts_used)``
        for every point the pool did not complete (failed first attempt with
        retries left, lost to a timed-out/hung worker, or never started
        because pool infrastructure failed) — the caller finishes them
        serially in the parent."""
        completed: set = set()
        retry: List[Tuple[int, int]] = []
        timed_out = False
        try:
            processes = min(self.max_workers, len(pending))
            with multiprocessing.Pool(processes=processes) as pool:
                # The SIGTERM handler goes in only *after* the workers have
                # forked: a child inheriting the raising handler would
                # survive Pool.terminate() (which relies on SIGTERM's
                # default disposition) and leak, wedged on the shared queue.
                with _sigterm_as_interrupt():
                    iterator = pool.imap(
                        _execute_task_guarded, [tasks[index] for index in pending]
                    )
                    for index in pending:
                        try:
                            if self.point_timeout is not None:
                                ok, value = iterator.next(self.point_timeout)
                            else:
                                ok, value = next(iterator)
                        except multiprocessing.TimeoutError:
                            # A worker died or hung mid-point: the pool can
                            # never deliver this (ordered) result.  Abandon
                            # the pool and finish in the parent.
                            timed_out = True
                            warnings.warn(
                                f"parallel sweep point (task {index}) missed its "
                                f"{self.point_timeout}s deadline; abandoning the "
                                "pool and finishing serially",
                                RuntimeWarning,
                                stacklevel=3,
                            )
                            break
                        completed.add(index)
                        if ok:
                            self._complete(
                                tasks[index], index, digests[index], value,
                                results, report, attempts=1,
                            )
                        elif self.max_retries > 0:
                            retry.append((index, 1))
                        else:
                            self._fail(tasks[index], index, digests[index],
                                       value, results, report, attempts=1)
        except (OSError, ValueError, AttributeError, pickle.PicklingError) as exc:
            # Pool infrastructure failed — sandboxed environments may lack
            # semaphores/fork, and ad-hoc callables (lambdas, closures) may
            # not pickle.  Task-level exceptions never reach here: workers
            # return them, and they are handled above.
            warnings.warn(
                f"parallel sweep unavailable ({type(exc).__name__}: {exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
        # Anything the pool never delivered (timeout break, infrastructure
        # failure) still has attempts=0 and runs serially via the caller.
        leftover = [(index, 0) for index in pending if index not in completed]
        return retry + leftover

    def _run_point(
        self,
        task: SweepTask,
        index: int,
        digest: Optional[str],
        results: List[Any],
        report: Dict[str, int],
        prior_attempts: int = 0,
    ) -> None:
        """Execute one point serially with the policy's retry budget.

        ``prior_attempts`` credits failures already burned by the parallel
        stage, so a point retried here still gets ``max_retries`` total
        re-executions, each preceded by exponential backoff.
        """
        attempts = prior_attempts
        while True:
            if attempts > 0:
                # Every attempt after a failure backs off exponentially.
                delay = self.backoff_base * (2 ** (attempts - 1))
                if delay > 0:
                    time.sleep(delay)
            attempts += 1
            try:
                # One span per attempt, so a retried point shows as sibling
                # sweep.point spans with increasing attempt numbers.
                with trace.span(
                    "sweep.point", {"key": str(task.key), "attempt": attempts},
                    root=False,
                ):
                    value = _run_task(task)
            except Exception as exc:  # repro: ignore[EXC001] -- retried, then re-raised or recorded in the failure manifest
                if attempts <= self.max_retries:
                    continue
                self._fail(task, index, digest, exc, results, report, attempts)
                return
            self._complete(task, index, digest, value, results, report, attempts)
            return

    # ------------------------------------------------------------------ #
    def _complete(
        self,
        task: SweepTask,
        index: int,
        digest: Optional[str],
        value: Any,
        results: List[Any],
        report: Dict[str, int],
        attempts: int,
    ) -> None:
        """Record one finished point: result slot, cache entry, journal line."""
        results[index] = value
        report["executed"] += 1
        report["retries"] += max(0, attempts - 1)
        if digest is not None and self.cache is not None:
            self.cache.put(digest, value)
            if self.journal is not None:
                # Journaled only after the cache entry is durable: the
                # journal indexes the cache, it never leads it.
                self.journal.record(
                    digest, "done",
                    fn=_task_identity(task), key=str(task.key), attempts=attempts,
                )

    def _fail(
        self,
        task: SweepTask,
        index: int,
        digest: Optional[str],
        error: BaseException,
        results: List[Any],
        report: Dict[str, int],
        attempts: int,
    ) -> None:
        """A point exhausted its retries: journal it, then degrade or raise."""
        report["failed"] += 1
        report["retries"] += max(0, attempts - 1)
        message = f"{type(error).__name__}: {error}"
        if digest is not None and self.journal is not None:
            self.journal.record(
                digest, "failed",
                fn=_task_identity(task), key=str(task.key),
                attempts=attempts, error=message,
            )
        if not self.partial:
            raise error
        failed = FailedPoint(key=task.key, error=message, attempts=attempts)
        results[index] = failed
        self.manifest.append(failed)

    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        **fixed_kwargs: Any,
    ) -> List[Any]:
        """Apply ``fn(item, **fixed_kwargs)`` to every item, preserving order."""
        tasks = [
            SweepTask(key=item, fn=fn, args=(item,), kwargs=dict(fixed_kwargs))
            for item in items
        ]
        return self.run(tasks)


def _task_identity(task: SweepTask) -> str:
    module = getattr(task.fn, "__module__", "?")
    qualname = getattr(task.fn, "__qualname__", repr(task.fn))
    return f"{module}.{qualname}"


def sweep_map(
    fn: Callable[..., Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    cache: Optional[SweepResultCache] = None,
    **fixed_kwargs: Any,
) -> List[Any]:
    """One-shot convenience wrapper around :meth:`SweepRunner.map`."""
    return SweepRunner(max_workers=workers, cache=cache).map(fn, items, **fixed_kwargs)


# --------------------------------------------------------------------------- #
# Ambient policy and sweep reporting
# --------------------------------------------------------------------------- #
#: Sentinel distinguishing "never configured" from "explicitly disabled".
_POLICY_UNSET = object()
_ambient_policy: Any = _POLICY_UNSET

#: Reuse/failure accounting of the most recent sweep in this process, so
#: entry points (the CLI's ``--resume`` report) can surface it without
#: threading the runner through every figure module.
_last_report: Optional[Dict[str, int]] = None


def set_default_policy(policy: Optional[SweepPolicy]) -> Any:
    """Set (or, with ``None``, reset) the process-wide ambient sweep policy.

    Returns an opaque token for the previous setting; pass it back to
    restore whatever was configured before (the same save/restore contract
    as :func:`~repro.simulation.result_cache.set_default_cache`).
    """
    global _ambient_policy
    previous = _ambient_policy
    _ambient_policy = policy
    return previous


def default_policy() -> SweepPolicy:
    """The ambient policy for runners not handed explicit knobs.

    Resolution order: :func:`set_default_policy`'s setting, then the
    environment (``REPRO_SWEEP_RESUME=1`` enables journaling,
    ``REPRO_SWEEP_RETRIES=N`` sets the retry budget), then the defaults.
    """
    if _ambient_policy is not _POLICY_UNSET and _ambient_policy is not None:
        return _ambient_policy
    journal = _env.flag(SWEEP_RESUME_ENV)
    retries_text = _env.read(SWEEP_RETRIES_ENV)
    max_retries = 0
    if retries_text:
        try:
            max_retries = max(0, int(retries_text))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {SWEEP_RETRIES_ENV}={retries_text!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return SweepPolicy(max_retries=max_retries, journal=journal)


def _note_report(report: Dict[str, int]) -> None:
    global _last_report
    _last_report = dict(report)
    # One batched flush per sweep into the process metrics registry: the
    # per-point tallies already live in ``report``, so no counter is
    # touched inside the sweep loop itself.
    points = obs.counter(
        "repro_sweep_points_total",
        "Sweep points by outcome (cached includes resumed; executed ran fresh).",
        labels=("outcome",),
    )
    for outcome in ("cached", "resumed", "executed", "failed"):
        count = report.get(outcome, 0)
        if count:
            points.labels(outcome).inc(count)
    retries = report.get("retries", 0)
    if retries:
        obs.counter(
            "repro_sweep_retries_total", "Per-point retry attempts across sweeps."
        ).inc(retries)
    obs.counter("repro_sweep_runs_total", "Completed SweepRunner.run invocations.").inc()


def last_sweep_report() -> Optional[Dict[str, int]]:
    """Accounting of the most recent sweep run in this process (or None)."""
    return None if _last_report is None else dict(_last_report)
