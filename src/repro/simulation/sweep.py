"""Parallel sweep runner for experiment configurations.

Every figure of the paper is a *sweep*: the same per-item function (one
application, one category, one block size, ...) evaluated over a list of
items.  :class:`SweepRunner` fans such sweeps out over ``multiprocessing``
workers while preserving item order, and degrades gracefully to serial
execution when parallelism is unavailable (restricted containers, unpicklable
tasks) or not requested.

Because each worker is a separate process, the per-item functions must be
importable module-level callables with picklable arguments and results — the
experiment runners in :mod:`repro.experiments` are written that way.  Workers
rebuild their own traces (the in-process trace cache is per-worker), trading
redundant generation for fully independent, deterministic runs.

A :class:`~repro.simulation.result_cache.SweepResultCache` can be attached to
memoize completed task results on disk: cached tasks are answered before any
worker is spawned, only the misses fan out, and fresh results are stored by
the parent process.  Repeated sweeps over the same (workload, seed, scale,
configuration) — across figures and across runs — then cost a handful of
pickle loads instead of full simulations.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import signal
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.simulation.result_cache import SweepResultCache, default_cache, remove_temp_files


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``fn(*args, **kwargs)`` identified by ``key``."""

    key: Any
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


def _execute_task_guarded(task: SweepTask) -> Tuple[bool, Any]:
    """Top-level trampoline so tasks can be dispatched through a Pool.

    Task exceptions are returned rather than raised so the caller can tell a
    failing task (re-raise it) apart from failing pool infrastructure (fall
    back to serial execution).
    """
    try:
        return True, task.execute()
    except Exception as exc:  # repro: ignore[EXC001] -- returned to the parent, which re-raises task failures
        return False, exc


def default_worker_count() -> int:
    """Worker count used when a parallel sweep does not specify one."""
    return max(1, os.cpu_count() or 1)


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM as KeyboardInterrupt for the duration of a sweep.

    ``kill <pid>`` of a parallel sweep then takes the same orderly path as
    Ctrl-C: the ``multiprocessing.Pool`` context manager terminates the
    child processes and the runner sweeps up its temp cache files, instead
    of the parent dying mid-``map`` and leaking both.  Signal handlers can
    only be installed from the main thread; elsewhere (e.g. the serve
    pool's executor threads) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):  # noqa: ARG001 - signal handler signature
        raise KeyboardInterrupt
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover - non-main interpreter thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class SweepRunner:
    """Runs sweep tasks serially or across a ``multiprocessing`` pool.

    ``max_workers=None``, ``0``, or ``1`` selects serial execution (the
    default — deterministic, no process overhead, right for small sweeps).
    Larger values fan tasks out over that many worker processes.  If the pool
    cannot be created or the tasks cannot be pickled, the runner falls back
    to serial execution rather than failing the sweep.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[SweepResultCache] = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be non-negative, got {max_workers}")
        self.max_workers = max_workers
        self.cache = cache if cache is not None else default_cache()

    @property
    def parallel(self) -> bool:
        return (self.max_workers or 0) > 1

    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Execute ``tasks`` and return their results in task order.

        With a cache attached, previously completed tasks are answered from
        disk and only the remainder is executed (serially or in parallel);
        fresh results are stored by the parent process, never by workers.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        cache = self.cache
        if cache is None:
            return self._execute(tasks)

        results: List[Any] = [None] * len(tasks)
        pending: List[int] = []
        digests: List[Optional[str]] = []
        for index, task in enumerate(tasks):
            digest = cache.fingerprint(task.fn, task.args, task.kwargs)
            digests.append(digest)
            if digest is not None:
                hit, value = cache.get(digest)
                if hit:
                    results[index] = value
                    continue
            pending.append(index)
        if pending:
            fresh = self._execute([tasks[index] for index in pending])
            for index, value in zip(pending, fresh):
                results[index] = value
                if digests[index] is not None:
                    cache.put(digests[index], value)
        return results

    def _execute(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Run ``tasks`` (no caching), preserving order; ``tasks`` is non-empty.

        KeyboardInterrupt/SIGTERM shut the sweep down gracefully: pool
        children are terminated (by ``Pool.__exit__``) and the temp files
        their interrupted atomic cache writes staged are removed rather
        than leaked; the interrupt is then re-raised.
        """
        try:
            return self._run_tasks(tasks)
        except KeyboardInterrupt:
            # Scoped to this process's own staging files: a sibling sweep or
            # a serve daemon sharing the cache directory may have atomic
            # writes in flight that must not be yanked out from under it.
            remove_temp_files(
                self.cache.directory if self.cache is not None else None,
                pids={os.getpid()},
            )
            raise

    def _run_tasks(self, tasks: Sequence[SweepTask]) -> List[Any]:
        if not self.parallel or len(tasks) == 1:
            with _sigterm_as_interrupt():
                return [task.execute() for task in tasks]
        try:
            processes = min(self.max_workers, len(tasks))
            with multiprocessing.Pool(processes=processes) as pool:
                # The SIGTERM handler goes in only *after* the workers have
                # forked: a child inheriting the raising handler would
                # survive Pool.terminate() (which relies on SIGTERM's
                # default disposition) and leak, wedged on the shared queue.
                with _sigterm_as_interrupt():
                    outcomes = pool.map(_execute_task_guarded, tasks)
        except (OSError, ValueError, AttributeError, pickle.PicklingError) as exc:
            # Pool infrastructure failed — sandboxed environments may lack
            # semaphores/fork, and ad-hoc callables (lambdas, closures) may
            # not pickle.  Task-level exceptions never reach here: workers
            # return them, and they are re-raised below.
            warnings.warn(
                f"parallel sweep unavailable ({type(exc).__name__}: {exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [task.execute() for task in tasks]
        results = []
        for ok, value in outcomes:
            if not ok:
                raise value
            results.append(value)
        return results

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        **fixed_kwargs: Any,
    ) -> List[Any]:
        """Apply ``fn(item, **fixed_kwargs)`` to every item, preserving order."""
        tasks = [
            SweepTask(key=item, fn=fn, args=(item,), kwargs=dict(fixed_kwargs))
            for item in items
        ]
        return self.run(tasks)


def sweep_map(
    fn: Callable[..., Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    cache: Optional[SweepResultCache] = None,
    **fixed_kwargs: Any,
) -> List[Any]:
    """One-shot convenience wrapper around :meth:`SweepRunner.map`."""
    return SweepRunner(max_workers=workers, cache=cache).map(fn, items, **fixed_kwargs)
