"""Content-addressed on-disk memoization for sweep results.

Every figure of the paper re-runs the same deterministic per-item
simulations; across the fig04–fig13 suite (and across repeated invocations)
most tasks are exact repeats.  :class:`SweepResultCache` memoizes completed
:class:`~repro.simulation.sweep.SweepTask` results on disk, keyed by a
fingerprint of

* the task's function identity (``module.qualname``),
* its arguments and keyword arguments (canonically encoded, covering the
  task key, experiment configuration, and trace identity — workload name,
  CPU count, scale, and seed are all arguments of the experiment runners),
  and
* a *code fingerprint* of the whole ``repro`` package source, so any code
  change — workload generators included — invalidates every prior entry
  rather than silently serving stale results.

Entries are pickles stored under ``<digest>.pkl`` and written atomically
(temp file + ``os.replace``), so concurrent sweep workers and interrupted
runs can never corrupt the cache; at worst a result is recomputed.

The cache is opt-in: library entry points take an explicit cache (or none),
``repro.cli experiment`` enables it by default with ``--no-cache`` as the
escape hatch, and the ``REPRO_SWEEP_CACHE=1`` environment variable turns it
on ambiently for programmatic sweeps.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable enabling the ambient default cache ("1" to enable).
CACHE_ENABLE_ENV = "REPRO_SWEEP_CACHE"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sms``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-sms"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (names + contents).

    Computed once per process (~1 MB of source).  Any edit anywhere in the
    package — predictor, engine, workload generator — changes the
    fingerprint and therefore every cache key.
    """
    import repro

    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class _Uncacheable(Exception):
    """Raised while fingerprinting a task that has no stable identity."""


def _canonical(value: Any, out: list) -> None:
    """Append a stable, type-tagged encoding of ``value`` to ``out``.

    Only data whose representation is process-independent is accepted;
    anything else (arbitrary objects, lambdas, open handles) raises
    :class:`_Uncacheable` and the task simply runs uncached.
    """
    if value is None or value is True or value is False:
        out.append(repr(value))
    elif isinstance(value, (int, float, str, bytes)):
        out.append(f"{type(value).__name__}:{value!r}")
    elif isinstance(value, (tuple, list)):
        out.append(f"{type(value).__name__}[")
        for item in value:
            _canonical(item, out)
        out.append("]")
    elif isinstance(value, dict):
        out.append("dict[")
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise _Uncacheable(f"unsortable dict keys: {exc}") from exc
        for key, item in items:
            _canonical(key, out)
            out.append("=")
            _canonical(item, out)
        out.append("]")
    else:
        raise _Uncacheable(f"value of type {type(value).__name__} has no stable encoding")


def _function_identity(fn: Callable[..., Any]) -> str:
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise _Uncacheable("function has no module/qualname")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise _Uncacheable(f"{qualname} is not an importable module-level function")
    return f"{module}.{qualname}"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    skipped: int = 0  # tasks with no stable fingerprint
    stores: int = 0
    errors: int = 0  # unreadable/unpicklable entries (treated as misses)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skipped": self.skipped,
            "stores": self.stores,
            "errors": self.errors,
        }


class SweepResultCache:
    """On-disk, content-addressed store of completed sweep task results."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def fingerprint(self, fn: Callable[..., Any], args: Tuple, kwargs: Any) -> Optional[str]:
        """Digest identifying one task, or ``None`` when it has no stable key."""
        try:
            parts = [_function_identity(fn), "@", code_fingerprint(), "("]
            _canonical(tuple(args), parts)
            _canonical(dict(kwargs), parts)
            parts.append(")")
        except _Uncacheable:
            self.stats.skipped += 1
            return None
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    def _entry_path(self, digest: str) -> Path:
        return self.directory / f"{digest}.pkl"

    # ------------------------------------------------------------------ #
    def get(self, digest: str) -> Tuple[bool, Any]:
        """Return ``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        path = self._entry_path(digest)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception as exc:  # corrupt entry: recompute, don't fail the sweep
            self.stats.errors += 1
            self.stats.misses += 1
            warnings.warn(
                f"discarding unreadable sweep cache entry {path.name}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, digest: str, value: Any) -> None:
        """Store ``value`` under ``digest`` atomically; failures are non-fatal."""
        path = self._entry_path(digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError) as exc:
            self.stats.errors += 1
            warnings.warn(
                f"could not store sweep cache entry: {exc}", RuntimeWarning, stacklevel=2
            )
            return
        self.stats.stores += 1

    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every entry; return the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"SweepResultCache(directory={str(self.directory)!r}, stats={self.stats})"


#: Sentinel distinguishing "never configured" from "explicitly disabled".
_AMBIENT_UNSET = object()
_ambient_cache: Any = _AMBIENT_UNSET


def set_default_cache(cache: Optional[SweepResultCache]) -> Any:
    """Set (or, with ``None``, disable) the process-wide ambient cache.

    Entry points that own the process — the CLI, the benchmark harness —
    use this to configure caching for every sweep they trigger without
    threading a cache argument through each figure runner.  An explicit
    setting overrides the ``REPRO_SWEEP_CACHE`` environment default.

    Returns an opaque token for the previous setting; pass it back to this
    function to restore whatever was configured before (including the
    "never configured" state), so scoped use does not clobber a caller's
    ambient cache::

        previous = set_default_cache(my_cache)
        try:
            ...
        finally:
            set_default_cache(previous)
    """
    global _ambient_cache
    previous = _ambient_cache
    _ambient_cache = cache
    return previous


def default_cache() -> Optional[SweepResultCache]:
    """The ambient cache for sweeps that were not handed one explicitly.

    Resolution order: :func:`set_default_cache`'s setting, then
    ``REPRO_SWEEP_CACHE=1`` (library/test runs default to no caching so
    results never depend on on-disk state unless asked for).
    """
    if _ambient_cache is not _AMBIENT_UNSET:
        return _ambient_cache
    if os.environ.get(CACHE_ENABLE_ENV, "") == "1":
        return SweepResultCache()
    return None
