"""Content-addressed on-disk memoization for sweep results.

Every figure of the paper re-runs the same deterministic per-item
simulations; across the fig04–fig13 suite (and across repeated invocations)
most tasks are exact repeats.  :class:`SweepResultCache` memoizes completed
:class:`~repro.simulation.sweep.SweepTask` results on disk, keyed by a
fingerprint of

* the task's function identity (``module.qualname``),
* its arguments and keyword arguments (canonically encoded, covering the
  task key, experiment configuration, and trace identity — workload name,
  CPU count, scale, and seed are all arguments of the experiment runners),
  and
* a *code fingerprint* of the whole ``repro`` package source, so any code
  change — workload generators included — invalidates every prior entry
  rather than silently serving stale results.

Entries are pickles stored under ``<digest>.pkl`` and written atomically
(temp file + ``os.replace``), so concurrent sweep workers and interrupted
runs can never corrupt the cache; at worst a result is recomputed.  Each
entry is framed with a payload checksum (magic ``RSC1`` + SHA-256 +
pickle bytes): a torn or bit-flipped entry — a crash mid-write on a
non-atomic filesystem, disk trouble, a truncated restore — is *detected*
on read, moved to a ``quarantine/`` side directory for inspection, and
treated as a miss so the sweep regenerates it instead of raising or
silently serving garbage.  Unframed entries from older code versions load
as plain pickles.

The cache is opt-in: library entry points take an explicit cache (or none),
``repro.cli experiment`` enables it by default with ``--no-cache`` as the
escape hatch, and the ``REPRO_SWEEP_CACHE=1`` environment variable turns it
on ambiently for programmatic sweeps.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

from repro import _env, faults, obs
from repro.obs import trace

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable enabling the ambient default cache ("1" to enable).
CACHE_ENABLE_ENV = "REPRO_SWEEP_CACHE"

#: Subdirectory of the cache root holding memoized ``.strc`` traces
#: (see :mod:`repro.experiments.common`).
TRACES_SUBDIR = "traces"

#: Subdirectory of the cache root where corrupt entries are moved (never
#: deleted: a corrupt entry is evidence worth keeping until pruned).
QUARANTINE_SUBDIR = "quarantine"

#: Framing for checksummed sweep-cache entries:
#: ``RSC1`` + 32-byte SHA-256 of the payload + pickle payload.
ENTRY_MAGIC = b"RSC1"
_CHECKSUM_BYTES = 32


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sms``."""
    override = _env.read(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-sms"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (names + contents).

    Computed once per process (~1 MB of source).  Any edit anywhere in the
    package — predictor, engine, workload generator — changes the
    fingerprint and therefore every cache key.
    """
    import repro

    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class _Uncacheable(Exception):
    """Raised while fingerprinting a task that has no stable identity."""


def _canonical(value: Any, out: list) -> None:
    """Append a stable, type-tagged encoding of ``value`` to ``out``.

    Only data whose representation is process-independent is accepted;
    anything else (arbitrary objects, lambdas, open handles) raises
    :class:`_Uncacheable` and the task simply runs uncached.
    """
    if value is None or value is True or value is False:
        out.append(repr(value))
    elif isinstance(value, (int, float, str, bytes)):
        out.append(f"{type(value).__name__}:{value!r}")
    elif isinstance(value, (tuple, list)):
        out.append(f"{type(value).__name__}[")
        for item in value:
            _canonical(item, out)
        out.append("]")
    elif isinstance(value, dict):
        out.append("dict[")
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise _Uncacheable(f"unsortable dict keys: {exc}") from exc
        for key, item in items:
            _canonical(key, out)
            out.append("=")
            _canonical(item, out)
        out.append("]")
    else:
        raise _Uncacheable(f"value of type {type(value).__name__} has no stable encoding")


def _function_identity(fn: Callable[..., Any]) -> str:
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise _Uncacheable("function has no module/qualname")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise _Uncacheable(f"{qualname} is not an importable module-level function")
    return f"{module}.{qualname}"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    skipped: int = 0  # tasks with no stable fingerprint
    stores: int = 0
    errors: int = 0  # unreadable/unpicklable entries (treated as misses)
    quarantined: int = 0  # corrupt entries moved aside instead of served

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skipped": self.skipped,
            "stores": self.stores,
            "errors": self.errors,
            "quarantined": self.quarantined,
        }


class SweepResultCache:
    """On-disk, content-addressed store of completed sweep task results."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def fingerprint(self, fn: Callable[..., Any], args: Tuple, kwargs: Any) -> Optional[str]:
        """Digest identifying one task, or ``None`` when it has no stable key."""
        try:
            parts = [_function_identity(fn), "@", code_fingerprint(), "("]
            _canonical(tuple(args), parts)
            _canonical(dict(kwargs), parts)
            parts.append(")")
        except _Uncacheable:
            self.stats.skipped += 1
            obs.note_cache_op("sweep", "skip")
            return None
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    def _entry_path(self, digest: str) -> Path:
        # The digest already embeds the code fingerprint; prefixing the file
        # name with it too makes stale entries (from older code versions —
        # permanently unreachable, since any code change rewrites every
        # digest) recognizable from the directory listing alone, which is
        # what ``repro.cli cache prune`` relies on.
        return self.directory / f"{entry_prefix()}-{digest}.pkl"

    # ------------------------------------------------------------------ #
    def get(self, digest: str) -> Tuple[bool, Any]:
        """Return ``(True, value)`` on a hit, ``(False, None)`` on a miss.

        Corrupt entries — bad checksum, truncated frame, unpicklable
        payload — are quarantined (moved to ``quarantine/``) and reported
        as misses, so one damaged file costs one recompute, never a
        failed sweep or a silently wrong result.
        """
        path = self._entry_path(digest)
        with trace.span("cache.get", {"digest": digest[:16]}, root=False) as span:
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                self.stats.misses += 1
                obs.note_cache_op("sweep", "miss")
                span.set("outcome", "miss")
                return False, None
            except OSError as exc:
                self.stats.errors += 1
                self.stats.misses += 1
                obs.note_cache_op("sweep", "error", "miss")
                span.mark_error(f"unreadable entry: {exc}")
                warnings.warn(
                    f"could not read sweep cache entry {path.name}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False, None
            try:
                value = self._decode(data)
            except Exception as exc:  # repro: ignore[EXC001] -- corrupt entry: quarantine and recompute, don't fail the sweep
                self.stats.errors += 1
                self.stats.quarantined += 1
                self.stats.misses += 1
                obs.note_cache_op("sweep", "error", "quarantine", "miss")
                span.mark_error(f"quarantined corrupt entry: {exc}")
                warnings.warn(
                    f"quarantining corrupt sweep cache entry {path.name}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                quarantine_file(path, self.directory)
                return False, None
            self.stats.hits += 1
            obs.note_cache_op("sweep", "hit")
            span.set("outcome", "hit")
            return True, value

    @staticmethod
    def _decode(data: bytes) -> Any:
        """Verify and unpickle one entry's bytes (checksummed or legacy)."""
        if data[: len(ENTRY_MAGIC)] == ENTRY_MAGIC:
            header_end = len(ENTRY_MAGIC) + _CHECKSUM_BYTES
            if len(data) < header_end:
                raise ValueError("truncated entry frame")
            checksum = data[len(ENTRY_MAGIC):header_end]
            payload = data[header_end:]
            if hashlib.sha256(payload).digest() != checksum:
                raise ValueError("entry checksum mismatch")
            return pickle.loads(payload)
        # Legacy unframed entry (pre-checksum code versions).
        return pickle.loads(data)

    def put(self, digest: str, value: Any) -> None:
        """Store ``value`` under ``digest`` atomically; failures are non-fatal.

        The entry is framed as magic + SHA-256(payload) + payload so
        :meth:`get` can detect torn and corrupted writes.
        """
        path = self._entry_path(digest)
        with trace.span("cache.put", {"digest": digest[:16]}, root=False) as span:
            try:
                payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                data = ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
                spec = faults.check("cache.put")
                if spec is not None:
                    if spec.kind in faults.MANGLING_KINDS:
                        data = faults.mangle(spec, data)
                    else:
                        faults.act(spec)
                self.directory.mkdir(parents=True, exist_ok=True)
                # The writer's pid is embedded in the staging name so
                # interrupt cleanup can remove exactly its own leftovers
                # without racing the atomic writes of sibling processes
                # sharing the directory.
                fd, temp_name = tempfile.mkstemp(
                    dir=str(self.directory), suffix=f".{os.getpid()}.tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(data)
                    os.replace(temp_name, path)
                except BaseException:  # repro: ignore[EXC001] -- re-raised after removing the staging temp file
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
                    raise
            except (OSError, pickle.PicklingError) as exc:
                self.stats.errors += 1
                obs.note_cache_op("sweep", "error")
                span.mark_error(f"store failed: {exc}")
                warnings.warn(
                    f"could not store sweep cache entry: {exc}", RuntimeWarning,
                    stacklevel=2,
                )
                return
            self.stats.stores += 1
            obs.note_cache_op("sweep", "store")
            span.set("bytes", len(data))

    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every entry; return the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"SweepResultCache(directory={str(self.directory)!r}, stats={self.stats})"


def entry_prefix() -> str:
    """File-name prefix tying cache entries to the current code fingerprint."""
    return code_fingerprint()[:16]


def quarantine_file(path: Path, root: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """Move a corrupt cache file into ``<root>/quarantine/``; None on failure.

    Shared by the sweep cache and the trace cache: the damaged file is
    preserved for inspection (and pruning) instead of deleted, and the
    original name is kept so the offending entry stays identifiable.
    Pass the cache root as ``root`` so both caches share one quarantine
    directory; it defaults to the file's own parent.
    """
    quarantine_root = Path(root) if root is not None else path.parent
    destination = quarantine_root / QUARANTINE_SUBDIR / path.name
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(str(path), str(destination))
    except OSError:
        # Fall back to deletion: a corrupt entry must never be served again.
        _unlink(path)
        return None
    return destination


def _tally(paths) -> Tuple[int, int]:
    """(count, total bytes) over ``paths``, tolerating concurrent deletion."""
    count = 0
    total = 0
    for path in paths:
        try:
            total += path.stat().st_size
        except OSError:
            continue
        count += 1
    return count, total


def cache_overview(directory: Optional[Union[str, Path]] = None) -> dict:
    """Entry counts and byte sizes for the sweep and trace caches.

    ``stale`` entries carry a code fingerprint other than the current
    package's — they can never be served again (every lookup key embeds the
    current fingerprint) and are what :func:`prune_cache` removes.  Temp
    files are atomic-write staging left behind by interrupted runs; the
    ``quarantine`` count covers corrupt entries moved aside on read.
    """
    root = Path(directory) if directory is not None else default_cache_dir()
    prefix = f"{entry_prefix()}-"
    sweep_fresh, sweep_stale, sweep_temp = [], [], []
    if root.is_dir():
        for path in root.glob("*.pkl"):
            (sweep_fresh if path.name.startswith(prefix) else sweep_stale).append(path)
        sweep_temp = list(root.glob("*.tmp"))
    traces_root = root / TRACES_SUBDIR
    suffix = f"-{entry_prefix()}.strc"
    trace_fresh, trace_stale, trace_temp = [], [], []
    if traces_root.is_dir():
        for path in traces_root.glob("*.strc"):
            if path.name.startswith(".tmp-"):
                continue
            (trace_fresh if path.name.endswith(suffix) else trace_stale).append(path)
        trace_temp = list(traces_root.glob(".tmp-*"))

    def section(fresh, stale, temp) -> dict:
        entries, entry_bytes = _tally(fresh)
        stale_entries, stale_bytes = _tally(stale)
        return {
            "entries": entries,
            "bytes": entry_bytes,
            "stale_entries": stale_entries,
            "stale_bytes": stale_bytes,
            "temp_files": len(temp),
        }

    quarantine_root = root / QUARANTINE_SUBDIR
    quarantined, quarantined_bytes = _tally(
        quarantine_root.glob("*") if quarantine_root.is_dir() else []
    )
    return {
        "directory": str(root),
        "sweep": section(sweep_fresh, sweep_stale, sweep_temp),
        "traces": section(trace_fresh, trace_stale, trace_temp),
        "quarantine": {"entries": quarantined, "bytes": quarantined_bytes},
    }


def prune_cache(directory: Optional[Union[str, Path]] = None) -> dict:
    """Remove stale-fingerprint entries and temp files from both caches.

    Safe with respect to live data — current-fingerprint entries are never
    touched — but should not race a *running* sweep, whose in-progress
    atomic writes stage through the temp files this removes.
    Returns removal counts per category.
    """
    root = Path(directory) if directory is not None else default_cache_dir()
    prefix = f"{entry_prefix()}-"
    removed = {"sweep_entries": 0, "trace_entries": 0, "temp_files": 0, "quarantined": 0}
    if root.is_dir():
        for path in root.glob("*.pkl"):
            if not path.name.startswith(prefix):
                removed["sweep_entries"] += _unlink(path)
    traces_root = root / TRACES_SUBDIR
    suffix = f"-{entry_prefix()}.strc"
    if traces_root.is_dir():
        for path in traces_root.glob("*.strc"):
            if not path.name.startswith(".tmp-") and not path.name.endswith(suffix):
                removed["trace_entries"] += _unlink(path)
    quarantine_root = root / QUARANTINE_SUBDIR
    if quarantine_root.is_dir():
        for path in quarantine_root.glob("*"):
            if path.is_file():
                removed["quarantined"] += _unlink(path)
    removed["temp_files"] = remove_temp_files(root)
    pruned = obs.counter(
        "repro_cache_pruned_total",
        "Cache entries removed by prune, per cache kind.",
        labels=("cache",),
    )
    pruned.labels("sweep").inc(removed["sweep_entries"])
    pruned.labels("trace").inc(removed["trace_entries"])
    return removed


def remove_temp_files(
    directory: Optional[Union[str, Path]] = None,
    pids: Optional[set] = None,
) -> int:
    """Delete atomic-write staging files from both cache directories.

    Interrupted or killed processes (Ctrl-C'd sweeps, SIGKILLed serve
    workers) leak ``*.<pid>.tmp`` pickles in the sweep cache and
    ``.tmp-<pid>-*`` traces in the trace cache; completed entries are never
    touched.  ``pids`` scopes removal to those writers' files — pass it
    whenever sibling processes may share the directory with live atomic
    writes in flight; ``None`` removes every process's staging files and is
    only safe when no writer is running.  Returns the number removed.
    """
    root = Path(directory) if directory is not None else default_cache_dir()
    removed = 0
    if root.is_dir():
        for path in root.glob("*.tmp"):
            if _sweep_temp_pid_matches(path.name, pids):
                removed += _unlink(path)
    traces_root = root / TRACES_SUBDIR
    if traces_root.is_dir():
        for path in traces_root.glob(".tmp-*"):
            if _trace_temp_pid_matches(path.name, pids):
                removed += _unlink(path)
    return removed


def _sweep_temp_pid_matches(name: str, pids: Optional[set]) -> bool:
    if pids is None:
        return True
    parts = name.split(".")  # "<random>.<pid>.tmp"
    return len(parts) >= 3 and parts[-2].isdigit() and int(parts[-2]) in pids


def _trace_temp_pid_matches(name: str, pids: Optional[set]) -> bool:
    if pids is None:
        return True
    parts = name.split("-")  # ".tmp-<pid>-<entry name>"
    return len(parts) >= 3 and parts[1].isdigit() and int(parts[1]) in pids


def _unlink(path: Path) -> int:
    try:
        path.unlink()
    except OSError:
        return 0
    return 1


#: Sentinel distinguishing "never configured" from "explicitly disabled".
_AMBIENT_UNSET = object()
_ambient_cache: Any = _AMBIENT_UNSET


def set_default_cache(cache: Optional[SweepResultCache]) -> Any:
    """Set (or, with ``None``, disable) the process-wide ambient cache.

    Entry points that own the process — the CLI, the benchmark harness —
    use this to configure caching for every sweep they trigger without
    threading a cache argument through each figure runner.  An explicit
    setting overrides the ``REPRO_SWEEP_CACHE`` environment default.

    Returns an opaque token for the previous setting; pass it back to this
    function to restore whatever was configured before (including the
    "never configured" state), so scoped use does not clobber a caller's
    ambient cache::

        previous = set_default_cache(my_cache)
        try:
            ...
        finally:
            set_default_cache(previous)
    """
    global _ambient_cache
    previous = _ambient_cache
    _ambient_cache = cache
    return previous


def default_cache() -> Optional[SweepResultCache]:
    """The ambient cache for sweeps that were not handed one explicitly.

    Resolution order: :func:`set_default_cache`'s setting, then
    ``REPRO_SWEEP_CACHE=1`` (library/test runs default to no caching so
    results never depend on on-disk state unless asked for).
    """
    if _ambient_cache is not _AMBIENT_UNSET:
        return _ambient_cache
    if _env.flag(CACHE_ENABLE_ENV):
        return SweepResultCache()
    return None
