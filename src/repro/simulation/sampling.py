"""Statistical sampling (SMARTS-style) and paired-measurement confidence intervals.

The paper launches cycle-accurate measurements from many checkpoints drawn
over the application's steady state and reports 95% confidence intervals on
the *change* in performance using paired-measurement sampling [31, 32].  We
mirror that methodology: each sample is one trace segment (a different seed
or a different slice of the workload) simulated under both the base and the
SMS configuration; the per-sample speedups form the paired population whose
mean and confidence interval Figure 12 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

# Two-sided 97.5% Student-t quantiles for small sample sizes (degrees of
# freedom 1..30); beyond 30 the normal quantile 1.96 is used.  Tabulated so
# the sampling module has no SciPy dependency on the hot path.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_quantile_975(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value."""
    if degrees_of_freedom < 1:
        raise ValueError("degrees_of_freedom must be >= 1")
    return _T_TABLE.get(degrees_of_freedom, 1.96)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric half-width at 95% confidence."""

    mean: float
    half_width: float

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def relative_error(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else math.inf

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


@dataclass
class SampledMeasurement:
    """A population of per-sample measurements of one metric."""

    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError("no samples collected")
        return sum(self.values) / len(self.values)

    @property
    def variance(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)

    @property
    def std_dev(self) -> float:
        return math.sqrt(self.variance)

    def confidence_interval(self) -> ConfidenceInterval:
        """95% confidence interval on the mean."""
        if not self.values:
            raise ValueError("no samples collected")
        if len(self.values) == 1:
            return ConfidenceInterval(mean=self.values[0], half_width=0.0)
        critical = t_quantile_975(len(self.values) - 1)
        half_width = critical * self.std_dev / math.sqrt(len(self.values))
        return ConfidenceInterval(mean=self.mean, half_width=half_width)

    def meets_target(self, relative_error: float = 0.05) -> bool:
        """True if the CI half-width is within ``relative_error`` of the mean
        (the paper targets ±5% error on the change in performance)."""
        return self.confidence_interval().relative_error <= relative_error


def paired_speedup(
    baseline_values: Sequence[float],
    improved_values: Sequence[float],
) -> ConfidenceInterval:
    """Paired-measurement speedup confidence interval.

    ``baseline_values`` and ``improved_values`` are per-sample execution times
    (or CPIs) measured on the *same* sample under the two configurations; the
    per-pair ratio ``baseline / improved`` is the sample speedup.
    """
    if len(baseline_values) != len(improved_values):
        raise ValueError(
            f"paired sampling requires equal sample counts "
            f"({len(baseline_values)} vs {len(improved_values)})"
        )
    if not baseline_values:
        raise ValueError("no samples provided")
    ratios = SampledMeasurement()
    for base, improved in zip(baseline_values, improved_values):
        if improved <= 0:
            raise ValueError("improved-configuration time must be positive")
        ratios.add(base / improved)
    return ratios.confidence_interval()
