"""System configuration (Table 1 of the paper).

:class:`MachineConfig` captures the timing-relevant machine parameters of the
paper's 16-processor directory system; :class:`SimulationConfig` captures the
functional parameters the simulation engine needs (cache geometry, number of
processors, block size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.interconnect.torus import TorusTopology


@dataclass(frozen=True)
class MachineConfig:
    """Timing parameters of the simulated machine (Table 1)."""

    clock_ghz: float = 4.0
    dispatch_width: int = 8
    rob_entries: int = 256
    store_buffer_entries: int = 64
    l1_load_to_use_cycles: int = 2
    l2_hit_cycles: int = 25
    memory_latency_ns: float = 60.0
    torus: TorusTopology = field(default_factory=TorusTopology)
    peak_bisection_gb_per_s: float = 128.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    @property
    def memory_latency_cycles(self) -> float:
        """DRAM access latency in CPU cycles."""
        return self.memory_latency_ns * self.clock_ghz

    @property
    def remote_network_cycles(self) -> float:
        """Average round-trip network latency for an off-chip access, in cycles."""
        return self.torus.average_remote_latency_ns(round_trip=True) * self.clock_ghz

    @property
    def off_chip_latency_cycles(self) -> float:
        """Average total latency of an off-chip miss (network + DRAM), in cycles."""
        return self.memory_latency_cycles + self.remote_network_cycles

    @classmethod
    def paper_default(cls) -> "MachineConfig":
        return cls()


@dataclass(frozen=True)
class SimulationConfig:
    """Functional parameters of the simulated memory system."""

    num_cpus: int = 16
    block_size: int = 64
    l1_capacity: int = 64 * 1024
    l1_associativity: int = 2
    l1_mshrs: int = 32
    sms_stream_slots: int = 16
    l2_capacity: int = 8 * 1024 * 1024
    l2_associativity: int = 8
    l2_mshrs: int = 32
    replacement: str = "lru"
    classify_false_sharing: bool = True
    warmup_fraction: float = 0.3
    #: Absolute warmup length in accesses.  When set it takes precedence over
    #: ``warmup_fraction``, which lets length-hint-free streams (e.g. piped
    #: traces) run with a warmup phase.
    warmup_accesses: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cpus <= 0:
            raise ValueError(f"num_cpus must be positive, got {self.num_cpus}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}")
        if self.warmup_accesses is not None and self.warmup_accesses < 0:
            raise ValueError(
                f"warmup_accesses must be non-negative, got {self.warmup_accesses}"
            )

    @classmethod
    def paper_default(cls) -> "SimulationConfig":
        """The Table-1 configuration: 16 CPUs, 64 kB 2-way L1, 8 MB 8-way L2."""
        return cls()

    @classmethod
    def small(cls, num_cpus: int = 4) -> "SimulationConfig":
        """A scaled-down configuration for fast tests and class-level studies.

        The per-processor caches keep the paper's L1 geometry (64 kB, 2-way);
        only the processor count and the shared L2 capacity are reduced so
        that short synthetic traces still exercise off-chip behaviour.
        """
        return cls(
            num_cpus=num_cpus,
            l1_capacity=64 * 1024,
            l2_capacity=2 * 1024 * 1024,
        )

    def with_block_size(self, block_size: int) -> "SimulationConfig":
        """Return a copy with a different cache block size (Figure 4 sweeps)."""
        values = dict(
            num_cpus=self.num_cpus,
            block_size=block_size,
            l1_capacity=self.l1_capacity,
            l1_associativity=self.l1_associativity,
            l1_mshrs=self.l1_mshrs,
            sms_stream_slots=self.sms_stream_slots,
            l2_capacity=self.l2_capacity,
            l2_associativity=self.l2_associativity,
            l2_mshrs=self.l2_mshrs,
            replacement=self.replacement,
            classify_false_sharing=self.classify_false_sharing,
            warmup_fraction=self.warmup_fraction,
            warmup_accesses=self.warmup_accesses,
            seed=self.seed,
        )
        return SimulationConfig(**values)
