"""Interconnect substrate.

The paper's system (Table 1) is a 16-node directory machine on a 4x4 2D
torus with 25 ns per-hop latency and 128 GB/s peak bisection bandwidth.  The
timing model uses this package to translate off-chip misses into latency
(average hop count x per-hop latency + memory access time) and to account for
the bandwidth consumed by demand fetches, prefetches, and overpredictions.
"""

from repro.interconnect.torus import TorusTopology
from repro.interconnect.traffic import BandwidthAccountant, TrafficClass

__all__ = ["TorusTopology", "BandwidthAccountant", "TrafficClass"]
