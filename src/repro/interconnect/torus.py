"""2D torus topology model.

Provides hop-count computation and average-distance statistics for a
``width x height`` torus.  Nodes are numbered row-major; each node is a
processor + memory-controller tile as in the paper's 16-node system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class TorusTopology:
    """A 2D torus with wrap-around links in both dimensions."""

    width: int = 4
    height: int = 4
    hop_latency_ns: float = 25.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("torus dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Return the (x, y) coordinates of ``node``."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Return the node index at coordinates (x, y) (taken modulo size)."""
        return (y % self.height) * self.width + (x % self.width)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range for {self.num_nodes}-node torus")

    def hop_count(self, src: int, dst: int) -> int:
        """Minimal hop count between ``src`` and ``dst`` with wrap-around routing."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        hops_x = abs(sx - dx)
        hops_y = abs(sy - dy)
        return min(hops_x, self.width - hops_x) + min(hops_y, self.height - hops_y)

    def latency_ns(self, src: int, dst: int) -> float:
        """One-way network latency between two nodes."""
        return self.hop_count(src, dst) * self.hop_latency_ns

    def neighbors(self, node: int) -> List[int]:
        """Return the four torus neighbours of ``node``."""
        x, y = self.coordinates(node)
        return [
            self.node_at(x + 1, y),
            self.node_at(x - 1, y),
            self.node_at(x, y + 1),
            self.node_at(x, y - 1),
        ]

    def all_pairs(self) -> Iterator[Tuple[int, int]]:
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                yield src, dst

    def average_hop_count(self) -> float:
        """Average hop count over all ordered (src, dst) pairs with src != dst."""
        total = 0
        pairs = 0
        for src, dst in self.all_pairs():
            if src == dst:
                continue
            total += self.hop_count(src, dst)
            pairs += 1
        return total / pairs if pairs else 0.0

    def average_remote_latency_ns(self, round_trip: bool = True) -> float:
        """Average network latency for a remote access (request + response)."""
        one_way = self.average_hop_count() * self.hop_latency_ns
        return 2.0 * one_way if round_trip else one_way
