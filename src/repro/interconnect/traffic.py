"""Bandwidth accounting.

Figure 4's argument against large cache blocks rests on bandwidth
efficiency: larger blocks move more unused data.  The accountant tallies
bytes moved per traffic class so experiments can report bandwidth overhead
relative to a 64-byte-block baseline, and so the timing model can check
demand + prefetch traffic against the machine's bisection bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class TrafficClass(enum.Enum):
    """Category of interconnect traffic."""

    DEMAND_FETCH = "demand_fetch"
    PREFETCH = "prefetch"
    WRITEBACK = "writeback"
    INVALIDATION = "invalidation"
    UPGRADE = "upgrade"


# Control messages (invalidations, upgrades) are small fixed-size packets.
_CONTROL_MESSAGE_BYTES = 8


@dataclass
class BandwidthAccountant:
    """Tallies bytes transferred over the interconnect by class."""

    block_size: int = 64
    bytes_by_class: Dict[TrafficClass, int] = field(default_factory=dict)
    useful_bytes: int = 0

    def record_block_transfer(self, traffic_class: TrafficClass, blocks: int = 1) -> None:
        """Record the transfer of ``blocks`` cache blocks of ``traffic_class``."""
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + blocks * self.block_size
        )

    def record_control_message(self, traffic_class: TrafficClass, messages: int = 1) -> None:
        """Record ``messages`` small control packets (invalidations, upgrades)."""
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + messages * _CONTROL_MESSAGE_BYTES
        )

    def record_useful_bytes(self, byte_count: int) -> None:
        """Record bytes that were actually consumed by demand accesses."""
        self.useful_bytes += byte_count

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    def bytes_for(self, traffic_class: TrafficClass) -> int:
        return self.bytes_by_class.get(traffic_class, 0)

    def bandwidth_efficiency(self) -> float:
        """Fraction of transferred bytes that were useful (demand-consumed)."""
        total = self.total_bytes
        return self.useful_bytes / total if total else 1.0

    def utilization(self, elapsed_seconds: float, peak_bytes_per_second: float) -> float:
        """Fraction of peak bisection bandwidth consumed over ``elapsed_seconds``."""
        if elapsed_seconds <= 0 or peak_bytes_per_second <= 0:
            raise ValueError("elapsed_seconds and peak_bytes_per_second must be positive")
        return self.total_bytes / (elapsed_seconds * peak_bytes_per_second)
