"""Coherence substrate.

A functional directory-based invalidation protocol over the per-processor L1
caches, plus the false-sharing classification used in the block-size study of
Figure 4.  The protocol is deliberately untimed — the point of modelling
coherence here is its *behavioural* interaction with SMS: invalidations end
spatial region generations and can kill prefetched blocks before use, and
larger coherence units create false sharing.
"""

from repro.coherence.protocol import CoherenceState, DirectoryEntry
from repro.coherence.directory import Directory
from repro.coherence.false_sharing import FalseSharingClassifier, MissClassification
from repro.coherence.multiprocessor import AccessOutcomeRecord, MultiprocessorMemorySystem

__all__ = [
    "CoherenceState",
    "DirectoryEntry",
    "Directory",
    "FalseSharingClassifier",
    "MissClassification",
    "AccessOutcomeRecord",
    "MultiprocessorMemorySystem",
]
