"""Multiprocessor memory system.

Combines per-CPU private L1 caches, a shared L2, a directory, and the
false-sharing classifier into a single functional model with one entry point,
:meth:`MultiprocessorMemorySystem.access`.  The prefetcher-aware simulation
engine (:mod:`repro.simulation.engine`) drives this model and layers SMS /
GHB / oracle prefetching on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro._compat import DATACLASS_SLOTS
from repro.coherence.directory import Directory
from repro.coherence.false_sharing import FalseSharingClassifier, MissClassification
from repro.memory.cache import AccessOutcome, AccessResult, SetAssociativeCache
from repro.memory.hierarchy import MemoryLevel
from repro.trace.record import MemoryAccess


@dataclass(**DATACLASS_SLOTS)
class AccessOutcomeRecord:
    """Everything the engine and timing model need to know about one access."""

    record: MemoryAccess
    level: MemoryLevel
    l1_result: AccessResult
    l2_result: Optional[AccessResult] = None
    miss_classification: Optional[MissClassification] = None
    invalidations_sent: int = 0

    @property
    def l1_miss(self) -> bool:
        return self.l1_result.is_miss

    @property
    def l2_miss(self) -> bool:
        return self.l2_result is not None and self.l2_result.is_miss

    @property
    def off_chip(self) -> bool:
        return self.level is MemoryLevel.MEMORY

    @property
    def l1_covered_by_prefetch(self) -> bool:
        return self.l1_result.is_prefetch_hit

    @property
    def l2_covered_by_prefetch(self) -> bool:
        return self.l2_result is not None and self.l2_result.is_prefetch_hit

    @property
    def false_sharing(self) -> bool:
        return self.miss_classification is MissClassification.FALSE_SHARING


class MultiprocessorMemorySystem:
    """N private L1s + shared L2 + directory MSI coherence."""

    def __init__(
        self,
        num_cpus: int = 16,
        block_size: int = 64,
        l1_capacity: int = 64 * 1024,
        l1_associativity: int = 2,
        l2_capacity: int = 8 * 1024 * 1024,
        l2_associativity: int = 8,
        replacement: str = "lru",
        classify_false_sharing: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if num_cpus <= 0:
            raise ValueError(f"num_cpus must be positive, got {num_cpus}")
        self.num_cpus = num_cpus
        self.block_size = block_size
        # Power-of-two block mapping, precomputed for the per-access hot path.
        self._block_mask = ~(block_size - 1)
        self._l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(
                capacity_bytes=l1_capacity,
                block_size=block_size,
                associativity=l1_associativity,
                replacement=replacement,
                name=f"L1[{cpu}]",
                seed=None if seed is None else seed + cpu,
            )
            for cpu in range(num_cpus)
        ]
        self.l2 = SetAssociativeCache(
            capacity_bytes=l2_capacity,
            block_size=block_size,
            associativity=l2_associativity,
            replacement=replacement,
            name="L2",
            seed=seed,
        )
        self.directory = Directory(coherence_unit=block_size)
        self.classifier = (
            FalseSharingClassifier(block_size=block_size, sharing_granularity=min(64, block_size))
            if classify_false_sharing
            else None
        )
        # Keep the directory's sharer lists consistent with L1 replacements.
        # The listeners are kept addressable so the engine's lane fast path
        # can verify a cache's listener list is exactly what construction
        # registered (and hence safe to inline).
        self._directory_listeners = []
        for cpu, l1 in enumerate(self._l1s):
            listener = self._make_directory_evict_listener(cpu)
            self._directory_listeners.append(listener)
            l1.add_eviction_listener(listener)
        self.total_accesses = 0
        self.total_instructions = 0

    # ------------------------------------------------------------------ #
    def _make_directory_evict_listener(self, cpu: int):
        def _listener(evicted) -> None:
            self.directory.evict(cpu, evicted.block_addr)

        return _listener

    def l1(self, cpu: int) -> SetAssociativeCache:
        """Return the private L1 of processor ``cpu``."""
        return self._l1s[cpu]

    @property
    def l1_caches(self) -> List[SetAssociativeCache]:
        return list(self._l1s)

    # ------------------------------------------------------------------ #
    def access(self, record: MemoryAccess) -> AccessOutcomeRecord:
        """Process one demand access, including all coherence side effects."""
        cpu = record.cpu
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"record.cpu={cpu} out of range for {self.num_cpus} CPUs")
        self.total_accesses += 1
        icount = record.instruction_count
        if icount > self.total_instructions:
            self.total_instructions = icount

        address = record.address
        block = address & self._block_mask
        is_write = record.is_write
        classifier = self.classifier

        # --- Coherence actions happen before the local lookup. -------------
        invalidations_sent = 0
        if is_write:
            actions = self.directory.write(cpu, block)
            for other in actions.invalidate_cpus:
                evicted = self._l1s[other].invalidate(block)
                if evicted is not None and classifier is not None:
                    classifier.record_invalidation(other, block, address)
                elif classifier is not None:
                    # The remote CPU had no L1 copy but had previously lost
                    # one; keep accumulating the chunks written remotely.
                    classifier.record_remote_write(other, block, address)
                invalidations_sent += 1
        else:
            self.directory.read(cpu, block)
            # Downgrades are writebacks in a real system; functionally the
            # remote copy stays resident (now shared), so no cache change.

        # --- L1 lookup. -----------------------------------------------------
        l1_result = self._l1s[cpu].access(address, is_write=is_write)
        if l1_result.outcome is not AccessOutcome.MISS:
            return AccessOutcomeRecord(
                record=record,
                level=MemoryLevel.L1,
                l1_result=l1_result,
                invalidations_sent=invalidations_sent,
            )

        classification = None
        if classifier is not None:
            classification = classifier.classify_miss(cpu, block)

        # --- Shared L2 lookup. -----------------------------------------------
        l2_result = self.l2.access(address, is_write=is_write)
        level = MemoryLevel.L2 if l2_result.outcome is not AccessOutcome.MISS else MemoryLevel.MEMORY
        return AccessOutcomeRecord(
            record=record,
            level=level,
            l1_result=l1_result,
            l2_result=l2_result,
            miss_classification=classification,
            invalidations_sent=invalidations_sent,
        )

    # ------------------------------------------------------------------ #
    def prefetch_fill(self, cpu: int, address: int, into_l1: bool = True, into_l2: bool = True) -> None:
        """Install a prefetched block on behalf of ``cpu``.

        SMS stream requests behave like reads in the coherence protocol
        (Section 3.2), so the directory registers the CPU as a sharer.
        """
        block = address & self._block_mask
        self.directory.read(cpu, block)
        if into_l2:
            self.l2.fill(block, prefetched=True)
        if into_l1:
            self._l1s[cpu].fill(block, prefetched=True)

    def l1_contains(self, cpu: int, address: int) -> bool:
        return self._l1s[cpu].contains(address)

    # ------------------------------------------------------------------ #
    def aggregate_l1_stats(self):
        """Return the sum of all per-CPU L1 statistics."""
        total = self._l1s[0].stats
        for l1 in self._l1s[1:]:
            total = total.merge(l1.stats)
        return total

    def __repr__(self) -> str:
        return (
            f"MultiprocessorMemorySystem(cpus={self.num_cpus}, block={self.block_size}, "
            f"l1={self._l1s[0].capacity_bytes}B, l2={self.l2.capacity_bytes}B)"
        )
