"""Coherence protocol state definitions.

The directory tracks each block in one of three stable states (an MSI-style
protocol is sufficient for a functional model): Invalid (no cached copies),
Shared (one or more read-only copies), or Modified (exactly one writable
copy).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set


class CoherenceState(enum.Enum):
    """Directory-visible state of one block."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class DirectoryEntry:
    """Directory bookkeeping for a single block address."""

    block_addr: int
    state: CoherenceState = CoherenceState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None

    def has_sharer(self, cpu: int) -> bool:
        return cpu in self.sharers

    @property
    def num_sharers(self) -> int:
        return len(self.sharers)

    def validate(self) -> None:
        """Check the protocol invariants for this entry; raise on violation."""
        if self.state is CoherenceState.INVALID:
            if self.sharers or self.owner is not None:
                raise AssertionError(f"invalid block {self.block_addr:#x} has sharers/owner")
        elif self.state is CoherenceState.SHARED:
            if not self.sharers:
                raise AssertionError(f"shared block {self.block_addr:#x} has no sharers")
            if self.owner is not None:
                raise AssertionError(f"shared block {self.block_addr:#x} has an owner")
        elif self.state is CoherenceState.MODIFIED:
            if self.owner is None:
                raise AssertionError(f"modified block {self.block_addr:#x} has no owner")
            if self.sharers != {self.owner}:
                raise AssertionError(
                    f"modified block {self.block_addr:#x} sharers {self.sharers} != owner {self.owner}"
                )


@dataclass
class CoherenceActions:
    """Actions the directory requests in response to one access.

    ``invalidate`` maps a CPU index to the block it must invalidate;
    ``downgrade`` lists CPUs whose modified copy must be written back and
    demoted to shared.
    """

    invalidate_cpus: Set[int] = field(default_factory=set)
    downgrade_cpus: Set[int] = field(default_factory=set)
    was_remote_modified: bool = False
    was_shared_elsewhere: bool = False

    @property
    def coherence_traffic(self) -> int:
        """Number of coherence messages implied by these actions."""
        return len(self.invalidate_cpus) + len(self.downgrade_cpus)
