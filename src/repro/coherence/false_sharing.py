"""False-sharing classification.

Figure 4 of the paper separates, for block sizes larger than the 64-byte
coherence unit, the misses caused purely by *false sharing* from all other
misses.  A coherence miss is false sharing when the missing processor re-
fetches a block only because another processor wrote a *different* 64-byte
chunk of it; had the block size been 64 bytes the miss would not have
occurred.

The classifier watches invalidations and subsequent misses: for every block a
CPU loses to an invalidation it remembers which 64-byte chunks remote writers
touched; when the CPU later misses on that block, the miss is false sharing
if the accessed chunk is disjoint from every remotely-written chunk since the
invalidation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.memory.block import block_address


class MissClassification(enum.Enum):
    """Classification of a single miss."""

    COLD_OR_REPLACEMENT = "cold_or_replacement"
    TRUE_SHARING = "true_sharing"
    FALSE_SHARING = "false_sharing"


@dataclass
class _InvalidationRecord:
    """Chunks written by remote CPUs since this CPU lost the block."""

    written_chunks: Set[int] = field(default_factory=set)


class FalseSharingClassifier:
    """Classify coherence misses as true or false sharing."""

    def __init__(self, block_size: int, sharing_granularity: int = 64) -> None:
        if sharing_granularity > block_size:
            raise ValueError(
                f"sharing_granularity ({sharing_granularity}) cannot exceed block_size ({block_size})"
            )
        self.block_size = block_size
        self.sharing_granularity = sharing_granularity
        # (cpu, block) -> record of remote writes since invalidation
        self._pending: Dict[Tuple[int, int], _InvalidationRecord] = {}
        self.true_sharing_misses = 0
        self.false_sharing_misses = 0
        self.other_misses = 0

    def _chunk(self, address: int) -> int:
        return block_address(address, self.sharing_granularity)

    def record_invalidation(self, cpu: int, address: int, writer_address: int) -> None:
        """CPU ``cpu`` lost the block containing ``address`` to a remote write."""
        block = block_address(address, self.block_size)
        record = self._pending.setdefault((cpu, block), _InvalidationRecord())
        record.written_chunks.add(self._chunk(writer_address))

    def record_remote_write(self, cpu: int, address: int, writer_address: int) -> None:
        """A remote write touched a block this CPU already lost; accumulate the chunk."""
        block = block_address(address, self.block_size)
        key = (cpu, block)
        if key in self._pending:
            self._pending[key].written_chunks.add(self._chunk(writer_address))

    def classify_block_miss(self, cpu: int, block: int) -> bool:
        """Lane-path :meth:`classify_miss` for an already block-aligned address.

        Same state transitions and counters; returns whether the miss was
        false sharing instead of the classification enum.  A block-aligned
        address is its own block and (block sizes being multiples of the
        sharing granularity) its own chunk, so the per-call power-of-two
        re-validation inside :func:`~repro.memory.block.block_address` is
        skipped.
        """
        record = self._pending.pop((cpu, block), None)
        if record is None:
            self.other_misses += 1
            return False
        if block in record.written_chunks:
            self.true_sharing_misses += 1
            return False
        self.false_sharing_misses += 1
        return True

    def classify_miss(self, cpu: int, address: int) -> MissClassification:
        """Classify a miss by CPU ``cpu`` on ``address`` and clear its record."""
        block = block_address(address, self.block_size)
        record = self._pending.pop((cpu, block), None)
        if record is None:
            self.other_misses += 1
            return MissClassification.COLD_OR_REPLACEMENT
        if self._chunk(address) in record.written_chunks:
            self.true_sharing_misses += 1
            return MissClassification.TRUE_SHARING
        self.false_sharing_misses += 1
        return MissClassification.FALSE_SHARING

    @property
    def coherence_misses(self) -> int:
        return self.true_sharing_misses + self.false_sharing_misses

    def false_sharing_fraction(self) -> float:
        total = self.true_sharing_misses + self.false_sharing_misses + self.other_misses
        return self.false_sharing_misses / total if total else 0.0
