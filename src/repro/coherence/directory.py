"""Directory controller for the MSI protocol.

The directory is a purely functional model: given a read or write by a CPU it
returns the set of coherence actions (invalidations, downgrades) that other
CPUs' caches must perform, and updates its own sharer bookkeeping.  Applying
those actions to the caches is the caller's responsibility (see
:class:`repro.coherence.multiprocessor.MultiprocessorMemorySystem`), which
keeps the directory reusable for caches of any organisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.coherence.protocol import CoherenceActions, CoherenceState, DirectoryEntry


class Directory:
    """Tracks sharers of every block at a fixed coherence granularity."""

    def __init__(self, coherence_unit: int = 64) -> None:
        if coherence_unit <= 0 or coherence_unit & (coherence_unit - 1):
            raise ValueError(f"coherence_unit must be a power of two, got {coherence_unit}")
        self.coherence_unit = coherence_unit
        self._unit_mask = ~(coherence_unit - 1)
        self._entries: Dict[int, DirectoryEntry] = {}
        self.read_requests = 0
        self.write_requests = 0
        self.invalidations_sent = 0
        self.downgrades_sent = 0

    def _entry(self, address: int) -> DirectoryEntry:
        block = address & self._unit_mask
        entry = self._entries.get(block)
        if entry is None:
            entry = DirectoryEntry(block_addr=block)
            self._entries[block] = entry
        return entry

    def lookup(self, address: int) -> Optional[DirectoryEntry]:
        """Return the directory entry covering ``address`` (no allocation)."""
        return self._entries.get(address & self._unit_mask)

    def sharers(self, address: int) -> Iterable[int]:
        entry = self.lookup(address)
        return set(entry.sharers) if entry else set()

    # ------------------------------------------------------------------ #
    def read(self, cpu: int, address: int) -> CoherenceActions:
        """CPU ``cpu`` reads ``address``: returns required coherence actions."""
        self.read_requests += 1
        entry = self._entry(address)
        actions = CoherenceActions()
        if entry.state is CoherenceState.MODIFIED and entry.owner != cpu:
            # Remote modified copy: force a writeback/downgrade to shared.
            actions.downgrade_cpus.add(entry.owner)
            actions.was_remote_modified = True
            self.downgrades_sent += 1
            entry.state = CoherenceState.SHARED
            entry.owner = None
        elif entry.state is CoherenceState.SHARED and entry.sharers - {cpu}:
            actions.was_shared_elsewhere = True
        entry.sharers.add(cpu)
        if entry.state is CoherenceState.INVALID:
            entry.state = CoherenceState.SHARED
        if entry.state is CoherenceState.MODIFIED and entry.owner == cpu:
            pass  # already owned; no state change
        entry.validate()
        return actions

    def write(self, cpu: int, address: int) -> CoherenceActions:
        """CPU ``cpu`` writes ``address``: invalidate all other copies."""
        self.write_requests += 1
        entry = self._entry(address)
        actions = CoherenceActions()
        others = entry.sharers - {cpu}
        if others:
            actions.invalidate_cpus = set(others)
            actions.was_shared_elsewhere = True
            if entry.state is CoherenceState.MODIFIED:
                actions.was_remote_modified = True
            self.invalidations_sent += len(others)
        entry.sharers = {cpu}
        entry.owner = cpu
        entry.state = CoherenceState.MODIFIED
        entry.validate()
        return actions

    def evict(self, cpu: int, address: int) -> None:
        """CPU ``cpu`` dropped its copy (replacement); update sharer bookkeeping."""
        entry = self.lookup(address)
        if entry is None:
            return
        entry.sharers.discard(cpu)
        if entry.owner == cpu:
            entry.owner = None
        if not entry.sharers:
            entry.state = CoherenceState.INVALID
            entry.owner = None
        elif entry.state is CoherenceState.MODIFIED and entry.owner is None:
            entry.state = CoherenceState.SHARED
        entry.validate()

    @property
    def tracked_blocks(self) -> int:
        return len(self._entries)
