"""Address arithmetic helpers shared by caches and predictors.

Addresses throughout the repository are plain non-negative integers (byte
addresses).  Block and region sizes must be powers of two, matching real
hardware and allowing mask-based arithmetic.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def _check_power_of_two(value: int, name: str) -> None:
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


def align_down(address: int, granularity: int) -> int:
    """Align ``address`` down to a multiple of ``granularity`` (a power of two)."""
    _check_power_of_two(granularity, "granularity")
    return address & ~(granularity - 1)


def block_address(address: int, block_size: int) -> int:
    """Return the base address of the cache block containing ``address``."""
    _check_power_of_two(block_size, "block_size")
    return address & ~(block_size - 1)


def region_base(address: int, region_size: int) -> int:
    """Return the base address of the spatial region containing ``address``."""
    _check_power_of_two(region_size, "region_size")
    return address & ~(region_size - 1)


def block_index_in_region(address: int, region_size: int, block_size: int) -> int:
    """Return the block index (spatial region offset) of ``address`` within its region."""
    _check_power_of_two(region_size, "region_size")
    _check_power_of_two(block_size, "block_size")
    if block_size > region_size:
        raise ValueError(
            f"block_size ({block_size}) cannot exceed region_size ({region_size})"
        )
    return (address & (region_size - 1)) // block_size


def blocks_per_region(region_size: int, block_size: int) -> int:
    """Return the number of cache blocks in one spatial region."""
    _check_power_of_two(region_size, "region_size")
    _check_power_of_two(block_size, "block_size")
    if block_size > region_size:
        raise ValueError(
            f"block_size ({block_size}) cannot exceed region_size ({region_size})"
        )
    return region_size // block_size
