"""Sectored tag arrays.

Prior spatial predictors trained on *sectored* (sub-blocked) cache tag
arrays: one tag per region-sized sector, with a valid bit per cache block
inside the sector.  The valid bits of a sector implicitly record the spatial
footprint observed while the sector's tag was resident.

This module provides the generic :class:`SectoredTagArray` used to model both
organisations compared against the AGT in Figure 8:

* the *logical sectored* tag array (Chen et al. [4]) computes cache contents
  as if the cache were sectored but does not affect real replacements; and
* the *decoupled sectored* cache (Kumar & Wilkerson [17], Seznec [22]) whose
  tag conflicts constrain what the real cache may hold.

The trainer adapters that turn these structures into SMS-compatible training
sources live in :mod:`repro.core.training`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.block import (
    block_index_in_region,
    blocks_per_region,
    is_power_of_two,
    region_base,
)
from repro.memory.replacement import ReplacementPolicy, make_policy


@dataclass
class SectorState:
    """State of one sector (spatial region) entry in a sectored tag array."""

    region: int
    num_blocks: int
    trigger_pc: int = 0
    trigger_offset: int = 0
    trigger_address: int = 0
    valid_bits: List[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.valid_bits:
            self.valid_bits = [False] * self.num_blocks

    def set_block(self, offset: int) -> None:
        if not 0 <= offset < self.num_blocks:
            raise IndexError(f"offset {offset} out of range for {self.num_blocks}-block sector")
        self.valid_bits[offset] = True

    def clear_block(self, offset: int) -> None:
        if not 0 <= offset < self.num_blocks:
            raise IndexError(f"offset {offset} out of range for {self.num_blocks}-block sector")
        self.valid_bits[offset] = False

    def has_block(self, offset: int) -> bool:
        return self.valid_bits[offset]

    @property
    def pattern_bits(self) -> int:
        """Return the footprint as an integer bit mask (bit i = block i accessed)."""
        bits = 0
        for index, valid in enumerate(self.valid_bits):
            if valid:
                bits |= 1 << index
        return bits

    @property
    def population(self) -> int:
        return sum(1 for valid in self.valid_bits if valid)


class SectoredTagArray:
    """A set-associative array of sector entries keyed by region base address."""

    def __init__(
        self,
        num_sectors: int,
        associativity: int,
        region_size: int,
        block_size: int = 64,
        replacement: str = "lru",
        name: str = "sectored-tags",
    ) -> None:
        if num_sectors <= 0 or num_sectors % associativity != 0:
            raise ValueError(
                f"num_sectors ({num_sectors}) must be a positive multiple of associativity ({associativity})"
            )
        self.name = name
        self.num_sectors = num_sectors
        self.associativity = associativity
        self.region_size = region_size
        self.block_size = block_size
        self.blocks_per_sector = blocks_per_region(region_size, block_size)
        self.num_sets = num_sectors // associativity
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"number of sets must be a power of two, got {self.num_sets}")
        self._sets: List[Dict[int, SectorState]] = [dict() for _ in range(self.num_sets)]
        self._policies: List[ReplacementPolicy] = [make_policy(replacement) for _ in range(self.num_sets)]
        self.allocations = 0
        self.conflict_evictions = 0

    # ------------------------------------------------------------------ #
    def set_index(self, address: int) -> int:
        return (address // self.region_size) % self.num_sets

    def _find_way(self, set_index: int, region: int) -> Optional[int]:
        for way, sector in self._sets[set_index].items():
            if sector.region == region:
                return way
        return None

    def lookup(self, address: int) -> Optional[SectorState]:
        """Return the sector covering ``address``, updating recency on hit."""
        region = region_base(address, self.region_size)
        set_index = self.set_index(address)
        way = self._find_way(set_index, region)
        if way is None:
            return None
        self._policies[set_index].on_access(way)
        return self._sets[set_index][way]

    def probe(self, address: int) -> Optional[SectorState]:
        """Return the sector covering ``address`` without touching recency."""
        region = region_base(address, self.region_size)
        set_index = self.set_index(address)
        way = self._find_way(set_index, region)
        if way is None:
            return None
        return self._sets[set_index][way]

    def allocate(
        self,
        address: int,
        trigger_pc: int = 0,
    ) -> Tuple[SectorState, Optional[SectorState]]:
        """Allocate a sector for the region containing ``address``.

        Returns ``(new_sector, evicted_sector)``.  ``evicted_sector`` is the
        conflict victim (with its accumulated footprint) or ``None``.
        """
        region = region_base(address, self.region_size)
        set_index = self.set_index(address)
        tag_set = self._sets[set_index]
        policy = self._policies[set_index]
        existing_way = self._find_way(set_index, region)
        if existing_way is not None:
            policy.on_access(existing_way)
            return tag_set[existing_way], None

        evicted: Optional[SectorState] = None
        if len(tag_set) >= self.associativity:
            victim_way = policy.victim(list(tag_set.keys()), [])
            evicted = tag_set.pop(victim_way)
            policy.on_invalidate(victim_way)
            self.conflict_evictions += 1
            way = victim_way
        else:
            used = set(tag_set.keys())
            way = next(w for w in range(self.associativity) if w not in used)

        sector = SectorState(
            region=region,
            num_blocks=self.blocks_per_sector,
            trigger_pc=trigger_pc,
            trigger_offset=block_index_in_region(address, self.region_size, self.block_size),
            trigger_address=address,
        )
        tag_set[way] = sector
        policy.on_fill(way)
        self.allocations += 1
        return sector, evicted

    def remove(self, address: int) -> Optional[SectorState]:
        """Remove and return the sector covering ``address``, if present."""
        region = region_base(address, self.region_size)
        set_index = self.set_index(address)
        way = self._find_way(set_index, region)
        if way is None:
            return None
        self._policies[set_index].on_invalidate(way)
        return self._sets[set_index].pop(way)

    def sectors(self) -> List[SectorState]:
        """Return all resident sectors (test/inspection helper)."""
        result = []
        for tag_set in self._sets:
            result.extend(tag_set.values())
        return result

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class LogicalSectoredTagArray(SectoredTagArray):
    """A sectored tag array sized as if a given cache were sectored.

    A cache of ``capacity_bytes`` with sectors of ``region_size`` bytes holds
    ``capacity_bytes / region_size`` sectors; the logical tag array has that
    many entries, at the cache's associativity, and mirrors the conflict
    behaviour the cache would have if it really were sectored — without
    affecting the real cache's contents.
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        region_size: int,
        block_size: int = 64,
        replacement: str = "lru",
        name: str = "logical-sectored",
    ) -> None:
        num_sectors = max(associativity, capacity_bytes // region_size)
        # Round the set count down to a power of two so indexing stays mask-based.
        num_sets = num_sectors // associativity
        power = 1
        while power * 2 <= num_sets:
            power *= 2
        num_sectors = power * associativity
        super().__init__(
            num_sectors=num_sectors,
            associativity=associativity,
            region_size=region_size,
            block_size=block_size,
            replacement=replacement,
            name=name,
        )
        self.modeled_capacity_bytes = capacity_bytes
