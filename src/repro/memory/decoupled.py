"""A decoupled sectored cache.

Prior spatial predictors (Kumar & Wilkerson's spatial footprint predictor)
trained on a *decoupled sectored* cache [22]: the tag array holds one tag per
region-sized sector with a valid bit per block, so a block may only be
resident while its sector's tag is resident, and replacing a sector evicts
all of its blocks.  Section 4.3 of the paper shows this organisation loses
coverage on commercial workloads because interleaved accesses conflict in the
sector tags.

:class:`repro.core.training.DecoupledSectoredTrainer` approximates this
organisation by forcing evictions into a conventional cache; this module
provides the *actual* cache structure for higher-fidelity studies and for the
unit tests that validate the approximation.  It exposes the same access/fill/
invalidate/listener interface as :class:`repro.memory.cache.SetAssociativeCache`,
so it can stand in wherever a cache-like object is expected.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.memory.block import (
    block_address,
    block_index_in_region,
    blocks_per_region,
    is_power_of_two,
    region_base,
)
from repro.memory.cache import AccessOutcome, AccessResult, CacheLine, EvictedLine
from repro.memory.replacement import ReplacementPolicy, make_policy
from repro.memory.stats import CacheStatistics


class _Sector:
    """One resident sector: region tag plus per-block line state."""

    __slots__ = ("region", "lines")

    def __init__(self, region: int, num_blocks: int) -> None:
        self.region = region
        self.lines: Dict[int, CacheLine] = {}

    def line_for(self, offset: int) -> Optional[CacheLine]:
        return self.lines.get(offset)


class DecoupledSectoredCache:
    """A sectored cache: sector-granularity tags, block-granularity data."""

    def __init__(
        self,
        capacity_bytes: int,
        sector_size: int = 2048,
        block_size: int = 64,
        associativity: int = 2,
        replacement: str = "lru",
        name: str = "sectored-cache",
        seed: Optional[int] = None,
    ) -> None:
        if not is_power_of_two(block_size) or not is_power_of_two(sector_size):
            raise ValueError("block_size and sector_size must be powers of two")
        if sector_size < block_size:
            raise ValueError(
                f"sector_size ({sector_size}) must be at least block_size ({block_size})"
            )
        if capacity_bytes <= 0 or capacity_bytes % (sector_size * associativity) != 0:
            raise ValueError(
                "capacity_bytes must be a positive multiple of sector_size * associativity "
                f"(got capacity={capacity_bytes}, sector={sector_size}, assoc={associativity})"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.sector_size = sector_size
        self.block_size = block_size
        self.associativity = associativity
        self.blocks_per_sector = blocks_per_region(sector_size, block_size)
        self.num_sets = capacity_bytes // (sector_size * associativity)
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"number of sets must be a power of two, got {self.num_sets}")
        self._sets: List[Dict[int, _Sector]] = [dict() for _ in range(self.num_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(replacement, seed=None if seed is None else seed + index)
            for index in range(self.num_sets)
        ]
        self.stats = CacheStatistics()
        self.sector_evictions = 0
        self._eviction_listeners: List[Callable[[EvictedLine], None]] = []

    # ------------------------------------------------------------------ #
    def add_eviction_listener(self, listener: Callable[[EvictedLine], None]) -> None:
        self._eviction_listeners.append(listener)

    def _notify(self, evicted: EvictedLine) -> None:
        for listener in self._eviction_listeners:
            listener(evicted)

    # ------------------------------------------------------------------ #
    def set_index(self, address: int) -> int:
        return (address // self.sector_size) % self.num_sets

    def _offset(self, address: int) -> int:
        return block_index_in_region(address, self.sector_size, self.block_size)

    def _find_way(self, set_index: int, region: int) -> Optional[int]:
        for way, sector in self._sets[set_index].items():
            if sector.region == region:
                return way
        return None

    def _lookup_sector(self, address: int, touch: bool) -> Optional[_Sector]:
        region = region_base(address, self.sector_size)
        set_index = self.set_index(address)
        way = self._find_way(set_index, region)
        if way is None:
            return None
        if touch:
            self._policies[set_index].on_access(way)
        return self._sets[set_index][way]

    # ------------------------------------------------------------------ #
    def contains(self, address: int) -> bool:
        sector = self._lookup_sector(address, touch=False)
        return sector is not None and self._offset(address) in sector.lines

    def probe(self, address: int) -> Optional[CacheLine]:
        sector = self._lookup_sector(address, touch=False)
        if sector is None:
            return None
        return sector.line_for(self._offset(address))

    @property
    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(len(sector.lines) for cache_set in self._sets for sector in cache_set.values())

    @property
    def resident_sectors(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    # ------------------------------------------------------------------ #
    def _evict_sector(self, set_index: int, way: int, invalidated: bool = False) -> None:
        sector = self._sets[set_index].pop(way)
        self._policies[set_index].on_invalidate(way)
        self.sector_evictions += 1
        for offset, line in sector.lines.items():
            self.stats.evictions += 1
            if line.dirty:
                self.stats.dirty_evictions += 1
            if line.prefetched and not line.used:
                self.stats.prefetched_evicted_unused += 1
            self._notify(
                EvictedLine(
                    block_addr=line.block_addr,
                    dirty=line.dirty,
                    prefetched=line.prefetched,
                    used=line.used,
                    invalidated=invalidated,
                )
            )

    def _sector_for_install(self, address: int) -> _Sector:
        region = region_base(address, self.sector_size)
        set_index = self.set_index(address)
        way = self._find_way(set_index, region)
        policy = self._policies[set_index]
        if way is not None:
            policy.on_access(way)
            return self._sets[set_index][way]
        cache_set = self._sets[set_index]
        if len(cache_set) >= self.associativity:
            victim_way = policy.victim(list(cache_set.keys()), [])
            self._evict_sector(set_index, victim_way)
        used_ways = set(cache_set.keys())
        way = next(w for w in range(self.associativity) if w not in used_ways)
        sector = _Sector(region=region, num_blocks=self.blocks_per_sector)
        cache_set[way] = sector
        policy.on_fill(way)
        return sector

    # ------------------------------------------------------------------ #
    def access(self, address: int, is_write: bool = False, allocate: bool = True) -> AccessResult:
        """Demand access: hit requires both the sector tag and the block's valid bit."""
        block = block_address(address, self.block_size)
        offset = self._offset(address)
        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        sector = self._lookup_sector(address, touch=True)
        line = sector.line_for(offset) if sector is not None else None
        if line is not None:
            if line.prefetched and not line.used:
                outcome = AccessOutcome.PREFETCH_HIT
                self.stats.prefetch_hits += 1
                self.stats.prefetched_used += 1
            else:
                outcome = AccessOutcome.HIT
            self.stats.hits += 1
            line.mark_demand_use(is_write)
            return AccessResult(outcome=outcome, block_addr=block)

        self.stats.misses += 1
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        if allocate:
            sector = self._sector_for_install(address)
            sector.lines[offset] = CacheLine(block_addr=block, dirty=is_write, prefetched=False, used=True)
        return AccessResult(outcome=AccessOutcome.MISS, block_addr=block)

    def fill(self, address: int, prefetched: bool = False, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a block (e.g. a prefetch fill); allocates its sector if needed."""
        block = block_address(address, self.block_size)
        offset = self._offset(address)
        if self.contains(address):
            return None
        if prefetched:
            self.stats.prefetch_fills += 1
        sector = self._sector_for_install(address)
        sector.lines[offset] = CacheLine(
            block_addr=block, dirty=dirty, prefetched=prefetched, used=not prefetched
        )
        return None

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        """Invalidate one block (the sector tag stays if other blocks remain)."""
        sector = self._lookup_sector(address, touch=False)
        if sector is None:
            return None
        offset = self._offset(address)
        line = sector.lines.pop(offset, None)
        if line is None:
            return None
        self.stats.invalidations += 1
        if line.prefetched and not line.used:
            self.stats.prefetched_evicted_unused += 1
        evicted = EvictedLine(
            block_addr=line.block_addr,
            dirty=line.dirty,
            prefetched=line.prefetched,
            used=line.used,
            invalidated=True,
        )
        self._notify(evicted)
        if not sector.lines:
            # Drop the now-empty sector tag.
            set_index = self.set_index(address)
            way = self._find_way(set_index, sector.region)
            if way is not None:
                self._sets[set_index].pop(way)
                self._policies[set_index].on_invalidate(way)
        return evicted

    def flush(self) -> List[EvictedLine]:
        """Remove every resident sector, notifying listeners for each block."""
        flushed: List[EvictedLine] = []
        collector = flushed.append
        self._eviction_listeners.append(collector)
        try:
            for set_index, cache_set in enumerate(self._sets):
                for way in list(cache_set):
                    self._evict_sector(set_index, way, invalidated=True)
        finally:
            self._eviction_listeners.remove(collector)
        return flushed

    def __repr__(self) -> str:
        return (
            f"DecoupledSectoredCache(name={self.name!r}, capacity={self.capacity_bytes}, "
            f"sector={self.sector_size}, block={self.block_size}, assoc={self.associativity})"
        )
