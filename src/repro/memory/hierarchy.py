"""A simple multi-level cache hierarchy.

The hierarchy wires an L1 and an L2 (and conceptually main memory below
them) into a single ``access`` call that reports which level served the
request.  The multiprocessor simulation engine manages its own per-CPU L1s
and shared L2 directly (it needs to interleave coherence actions), but the
hierarchy is the convenient front door for uniprocessor studies, the
examples, and the block-size opportunity experiments of Figure 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.memory.cache import AccessResult, SetAssociativeCache


class MemoryLevel(enum.Enum):
    """Which level of the hierarchy supplied the data."""

    L1 = "L1"
    L2 = "L2"
    MEMORY = "memory"


@dataclass
class HierarchyOutcome:
    """Result of a hierarchy access."""

    level: MemoryLevel
    l1_result: AccessResult
    l2_result: Optional[AccessResult] = None

    @property
    def l1_miss(self) -> bool:
        return self.l1_result.is_miss

    @property
    def l2_miss(self) -> bool:
        return self.l2_result is not None and self.l2_result.is_miss

    @property
    def off_chip(self) -> bool:
        return self.level is MemoryLevel.MEMORY

    @property
    def served_by_prefetch(self) -> bool:
        return self.l1_result.is_prefetch_hit


class CacheHierarchy:
    """A two-level (L1 + shared L2) cache hierarchy for a single processor."""

    def __init__(self, l1: SetAssociativeCache, l2: Optional[SetAssociativeCache] = None) -> None:
        if l2 is not None and l2.block_size != l1.block_size:
            raise ValueError(
                f"L1 and L2 block sizes must match (got {l1.block_size} and {l2.block_size})"
            )
        self.l1 = l1
        self.l2 = l2

    @property
    def block_size(self) -> int:
        return self.l1.block_size

    @property
    def levels(self) -> List[SetAssociativeCache]:
        return [c for c in (self.l1, self.l2) if c is not None]

    def access(self, address: int, is_write: bool = False) -> HierarchyOutcome:
        """Perform a demand access, filling lower levels on the way."""
        l1_result = self.l1.access(address, is_write=is_write)
        if not l1_result.is_miss:
            return HierarchyOutcome(level=MemoryLevel.L1, l1_result=l1_result)
        if self.l2 is None:
            return HierarchyOutcome(level=MemoryLevel.MEMORY, l1_result=l1_result)
        l2_result = self.l2.access(address, is_write=is_write)
        level = MemoryLevel.L2 if not l2_result.is_miss else MemoryLevel.MEMORY
        return HierarchyOutcome(level=level, l1_result=l1_result, l2_result=l2_result)

    def prefetch_fill(self, address: int, into_l1: bool = True) -> None:
        """Install a prefetched block (into L1 and L2, or L2 only)."""
        if self.l2 is not None:
            self.l2.fill(address, prefetched=True)
        if into_l1:
            self.l1.fill(address, prefetched=True)

    def invalidate(self, address: int) -> None:
        """Invalidate the block in every level (coherence action)."""
        self.l1.invalidate(address)
        if self.l2 is not None:
            self.l2.invalidate(address)

    def contains(self, address: int) -> bool:
        return self.l1.contains(address) or (self.l2 is not None and self.l2.contains(address))
