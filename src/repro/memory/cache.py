"""Set-associative cache model.

The cache is a functional (untimed) model: it tracks which blocks are
resident, applies a replacement policy, and reports hits, misses, evictions
and invalidations.  Timing is layered on separately by
:mod:`repro.simulation.timing`.

Prefetch bookkeeping
--------------------
Every line remembers whether it was *filled by a prefetch* and whether it has
been *demand-referenced* since the fill.  This is what allows coverage and
overprediction to be measured exactly as the paper defines them: a demand hit
on a prefetched, not-yet-used line is a covered miss; a prefetched line that
leaves the cache unused is an overprediction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro._compat import DATACLASS_SLOTS
from repro.memory.block import is_power_of_two
from repro.memory.replacement import ReplacementPolicy, make_policy
from repro.memory.stats import CacheStatistics


class AccessOutcome(enum.Enum):
    """Result of a demand access."""

    HIT = "hit"
    MISS = "miss"
    PREFETCH_HIT = "prefetch_hit"

    @property
    def is_miss(self) -> bool:
        return self is AccessOutcome.MISS

    @property
    def is_hit(self) -> bool:
        return not self.is_miss


@dataclass(**DATACLASS_SLOTS)
class CacheLine:
    """State of one resident cache block."""

    block_addr: int
    dirty: bool = False
    prefetched: bool = False
    used: bool = True

    def mark_demand_use(self, is_write: bool) -> None:
        self.used = True
        if is_write:
            self.dirty = True


@dataclass(frozen=True, **DATACLASS_SLOTS)
class EvictedLine:
    """Information about a block leaving the cache."""

    block_addr: int
    dirty: bool
    prefetched: bool
    used: bool
    invalidated: bool = False

    @property
    def was_unused_prefetch(self) -> bool:
        return self.prefetched and not self.used


@dataclass(**DATACLASS_SLOTS)
class AccessResult:
    """Outcome of :meth:`SetAssociativeCache.access`."""

    outcome: AccessOutcome
    block_addr: int
    evicted: Optional[EvictedLine] = None

    @property
    def is_miss(self) -> bool:
        return self.outcome is AccessOutcome.MISS

    @property
    def is_prefetch_hit(self) -> bool:
        return self.outcome is AccessOutcome.PREFETCH_HIT


# Callback signature: called with the EvictedLine each time a line leaves the
# cache (replacement or invalidation).  Used by SMS to terminate generations.
EvictionListener = Callable[[EvictedLine], None]


class SetAssociativeCache:
    """A classic set-associative, write-back, allocate-on-miss cache."""

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 64,
        associativity: int = 2,
        replacement: str = "lru",
        name: str = "cache",
        seed: Optional[int] = None,
    ) -> None:
        if not is_power_of_two(block_size):
            raise ValueError(f"block_size must be a power of two, got {block_size}")
        if capacity_bytes <= 0 or capacity_bytes % (block_size * associativity) != 0:
            raise ValueError(
                "capacity_bytes must be a positive multiple of block_size * associativity "
                f"(got capacity={capacity_bytes}, block={block_size}, assoc={associativity})"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = capacity_bytes // (block_size * associativity)
        if not is_power_of_two(self.num_sets):
            raise ValueError(
                f"number of sets must be a power of two, got {self.num_sets} "
                f"(capacity={capacity_bytes}, block={block_size}, assoc={associativity})"
            )
        self._replacement_name = replacement
        self._seed = seed
        # Hot-path address arithmetic: block/set mapping is mask-and-shift
        # (both sizes are powers of two), precomputed once so per-access
        # lookups avoid division and the power-of-two re-validation in
        # :func:`repro.memory.block.block_address`.
        self._block_mask = ~(block_size - 1)
        self._index_shift = block_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Each set is a dict way -> CacheLine plus a replacement policy.
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(replacement, seed=None if seed is None else seed + i)
            for i in range(self.num_sets)
        ]
        self.stats = CacheStatistics()
        self._eviction_listeners: List[EvictionListener] = []

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #
    def set_index(self, address: int) -> int:
        """Return the set index for ``address``."""
        return (address >> self._index_shift) & self._set_mask

    def _find_way(self, set_index: int, block_addr: int) -> Optional[int]:
        for way, line in self._sets[set_index].items():
            if line.block_addr == block_addr:
                return way
        return None

    # ------------------------------------------------------------------ #
    # Listeners
    # ------------------------------------------------------------------ #
    def add_eviction_listener(self, listener: EvictionListener) -> None:
        """Register a callback invoked whenever a line leaves the cache."""
        self._eviction_listeners.append(listener)

    def _notify_eviction(self, evicted: EvictedLine) -> None:
        for listener in self._eviction_listeners:
            listener(evicted)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def contains(self, address: int) -> bool:
        """Return True if the block containing ``address`` is resident."""
        block = address & self._block_mask
        cache_set = self._sets[(address >> self._index_shift) & self._set_mask]
        for line in cache_set.values():
            if line.block_addr == block:
                return True
        return False

    def probe(self, address: int) -> Optional[CacheLine]:
        """Return the resident line for ``address`` without updating any state."""
        block = address & self._block_mask
        set_index = (address >> self._index_shift) & self._set_mask
        way = self._find_way(set_index, block)
        if way is None:
            return None
        return self._sets[set_index][way]

    def resident_blocks(self) -> List[int]:
        """Return a list of all resident block addresses (for tests)."""
        blocks = []
        for cache_set in self._sets:
            blocks.extend(line.block_addr for line in cache_set.values())
        return blocks

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def access(self, address: int, is_write: bool = False, allocate: bool = True) -> AccessResult:
        """Perform a demand access; allocate on miss if ``allocate`` is True."""
        block = address & self._block_mask
        set_index = (address >> self._index_shift) & self._set_mask
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        # Hit fast path: scan the (small) set inline rather than via
        # _find_way + a second dict lookup.
        cache_set = self._sets[set_index]
        for way, line in cache_set.items():
            if line.block_addr == block:
                self._policies[set_index].on_access(way)
                if line.prefetched and not line.used:
                    outcome = AccessOutcome.PREFETCH_HIT
                    stats.prefetch_hits += 1
                    stats.prefetched_used += 1
                else:
                    outcome = AccessOutcome.HIT
                stats.hits += 1
                line.used = True
                if is_write:
                    line.dirty = True
                return AccessResult(outcome=outcome, block_addr=block)

        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        evicted = None
        if allocate:
            evicted = self._install(set_index, block, prefetched=False, dirty=is_write)
        return AccessResult(outcome=AccessOutcome.MISS, block_addr=block, evicted=evicted)

    def fill(self, address: int, prefetched: bool = False, dirty: bool = False) -> Optional[EvictedLine]:
        """Install the block containing ``address`` (e.g. a prefetch fill).

        Returns the line evicted to make room, if any.  Filling a block that
        is already resident is a no-op (the existing line keeps its state).
        """
        block = address & self._block_mask
        set_index = (address >> self._index_shift) & self._set_mask
        if self._find_way(set_index, block) is not None:
            return None
        if prefetched:
            self.stats.prefetch_fills += 1
        return self._install(set_index, block, prefetched=prefetched, dirty=dirty)

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        """Remove the block containing ``address`` (coherence invalidation)."""
        block = address & self._block_mask
        set_index = (address >> self._index_shift) & self._set_mask
        way = self._find_way(set_index, block)
        if way is None:
            return None
        line = self._sets[set_index].pop(way)
        self._policies[set_index].on_invalidate(way)
        self.stats.invalidations += 1
        if line.prefetched and not line.used:
            self.stats.prefetched_evicted_unused += 1
        evicted = EvictedLine(
            block_addr=line.block_addr,
            dirty=line.dirty,
            prefetched=line.prefetched,
            used=line.used,
            invalidated=True,
        )
        self._notify_eviction(evicted)
        return evicted

    def flush(self) -> List[EvictedLine]:
        """Remove every resident line, notifying listeners for each."""
        flushed = []
        for set_index, cache_set in enumerate(self._sets):
            for way in list(cache_set):
                line = cache_set.pop(way)
                self._policies[set_index].on_invalidate(way)
                evicted = EvictedLine(
                    block_addr=line.block_addr,
                    dirty=line.dirty,
                    prefetched=line.prefetched,
                    used=line.used,
                    invalidated=True,
                )
                self._notify_eviction(evicted)
                flushed.append(evicted)
        return flushed

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _install(self, set_index: int, block: int, prefetched: bool, dirty: bool) -> Optional[EvictedLine]:
        cache_set = self._sets[set_index]
        policy = self._policies[set_index]
        evicted_line: Optional[EvictedLine] = None
        if len(cache_set) >= self.associativity:
            valid_ways = list(cache_set.keys())
            victim_way = policy.victim(valid_ways, [])
            victim = cache_set.pop(victim_way)
            policy.on_invalidate(victim_way)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            if victim.prefetched and not victim.used:
                self.stats.prefetched_evicted_unused += 1
            evicted_line = EvictedLine(
                block_addr=victim.block_addr,
                dirty=victim.dirty,
                prefetched=victim.prefetched,
                used=victim.used,
                invalidated=False,
            )
            self._notify_eviction(evicted_line)
            way = victim_way
        else:
            used_ways = set(cache_set.keys())
            way = next(w for w in range(self.associativity) if w not in used_ways)
        cache_set[way] = CacheLine(
            block_addr=block,
            dirty=dirty,
            prefetched=prefetched,
            used=not prefetched,
        )
        policy.on_fill(way)
        return evicted_line

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(name={self.name!r}, capacity={self.capacity_bytes}, "
            f"block={self.block_size}, assoc={self.associativity}, sets={self.num_sets})"
        )
