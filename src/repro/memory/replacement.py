"""Replacement policies for set-associative structures.

A policy instance manages a single cache set (or any small fully-associative
pool of ways).  Policies are also reused by the Pattern History Table and the
Active Generation Table, which are organised like caches.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


class ReplacementPolicy:
    """Interface for per-set replacement state."""

    def on_fill(self, way: int) -> None:
        """Record that ``way`` was filled with a new line."""
        raise NotImplementedError

    def on_access(self, way: int) -> None:
        """Record a hit on ``way``."""
        raise NotImplementedError

    def on_invalidate(self, way: int) -> None:
        """Record that ``way`` was invalidated."""
        raise NotImplementedError

    def victim(self, valid_ways: List[int], invalid_ways: List[int]) -> int:
        """Choose a way to evict.

        ``invalid_ways`` lists ways currently holding no line; these are
        always preferred.  ``valid_ways`` lists occupied ways.
        """
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement, tracked with a logical timestamp."""

    def __init__(self) -> None:
        self._clock = 0
        self._last_use: Dict[int, int] = {}

    def _touch(self, way: int) -> None:
        self._clock += 1
        self._last_use[way] = self._clock

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def on_access(self, way: int) -> None:
        self._touch(way)

    def on_invalidate(self, way: int) -> None:
        self._last_use.pop(way, None)

    def victim(self, valid_ways: List[int], invalid_ways: List[int]) -> int:
        if invalid_ways:
            return invalid_ways[0]
        if not valid_ways:
            raise ValueError("victim() called with no ways")
        return min(valid_ways, key=lambda way: self._last_use.get(way, -1))


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a per-policy deterministic RNG."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def on_fill(self, way: int) -> None:
        pass

    def on_access(self, way: int) -> None:
        pass

    def on_invalidate(self, way: int) -> None:
        pass

    def victim(self, valid_ways: List[int], invalid_ways: List[int]) -> int:
        if invalid_ways:
            return invalid_ways[0]
        if not valid_ways:
            raise ValueError("victim() called with no ways")
        return self._rng.choice(valid_ways)


_POLICIES = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Construct a replacement policy by name (``"lru"`` or ``"random"``)."""
    key = name.lower()
    if key not in _POLICIES:
        raise ValueError(f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}")
    if key == "random":
        return RandomPolicy(seed=seed)
    return _POLICIES[key]()
