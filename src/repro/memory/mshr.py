"""Miss Status Holding Registers.

MSHRs bound the number of outstanding misses a cache can sustain.  In this
functional model they are used for two things:

* the simulation engine consults them to decide whether a stream request can
  be issued (Table 1: the L1 has 32 MSHRs plus 16 dedicated SMS stream
  request slots);
* the timing model uses the observed outstanding-miss occupancy to estimate
  memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MSHREntry:
    """One outstanding miss."""

    block_addr: int
    is_prefetch: bool = False
    merged_requests: int = 0


class MSHRFile:
    """A finite pool of MSHR entries keyed by block address."""

    def __init__(self, num_entries: int, name: str = "mshr") -> None:
        if num_entries <= 0:
            raise ValueError(f"num_entries must be positive, got {num_entries}")
        self.name = name
        self.num_entries = num_entries
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.rejections = 0
        self.peak_occupancy = 0
        self._occupancy_samples: List[int] = []

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def outstanding(self, block_addr: int) -> bool:
        """Return True if a miss to ``block_addr`` is already in flight."""
        return block_addr in self._entries

    def allocate(self, block_addr: int, is_prefetch: bool = False) -> Optional[MSHREntry]:
        """Allocate (or merge into) an entry for ``block_addr``.

        Returns the entry, or ``None`` when the file is full and the block is
        not already outstanding (the request must be rejected or stalled).
        """
        existing = self._entries.get(block_addr)
        if existing is not None:
            existing.merged_requests += 1
            self.merges += 1
            return existing
        if self.is_full:
            self.rejections += 1
            return None
        entry = MSHREntry(block_addr=block_addr, is_prefetch=is_prefetch)
        self._entries[block_addr] = entry
        self.allocations += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def release(self, block_addr: int) -> Optional[MSHREntry]:
        """Complete the miss to ``block_addr`` and free its entry."""
        return self._entries.pop(block_addr, None)

    def sample_occupancy(self) -> None:
        """Record the current occupancy (used to estimate MLP)."""
        self._occupancy_samples.append(len(self._entries))

    @property
    def mean_occupancy(self) -> float:
        if not self._occupancy_samples:
            return 0.0
        return sum(self._occupancy_samples) / len(self._occupancy_samples)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return f"MSHRFile(name={self.name!r}, entries={self.num_entries}, occupancy={self.occupancy})"
