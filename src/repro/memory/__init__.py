"""Cache-hierarchy substrate.

This package provides the memory-system components the paper's evaluation is
built on: set-associative caches with configurable block size, replacement
policies, miss-status holding registers, a two-level hierarchy, and the
sectored / decoupled-sectored / logical-sectored tag arrays that prior
spatial predictors (Kumar & Wilkerson's Spatial Footprint Predictor and Chen
et al.'s Spatial Pattern Predictor) trained on.
"""

from repro.memory.block import (
    align_down,
    block_address,
    block_index_in_region,
    blocks_per_region,
    is_power_of_two,
    region_base,
)
from repro.memory.cache import AccessOutcome, CacheLine, EvictedLine, SetAssociativeCache
from repro.memory.replacement import LRUPolicy, RandomPolicy, ReplacementPolicy, make_policy
from repro.memory.mshr import MSHRFile, MSHREntry
from repro.memory.hierarchy import CacheHierarchy, HierarchyOutcome, MemoryLevel
from repro.memory.sectored import (
    LogicalSectoredTagArray,
    SectoredTagArray,
    SectorState,
)
from repro.memory.decoupled import DecoupledSectoredCache
from repro.memory.stats import CacheStatistics

__all__ = [
    "align_down",
    "block_address",
    "block_index_in_region",
    "blocks_per_region",
    "is_power_of_two",
    "region_base",
    "AccessOutcome",
    "CacheLine",
    "EvictedLine",
    "SetAssociativeCache",
    "ReplacementPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "make_policy",
    "MSHRFile",
    "MSHREntry",
    "CacheHierarchy",
    "HierarchyOutcome",
    "MemoryLevel",
    "SectoredTagArray",
    "LogicalSectoredTagArray",
    "SectorState",
    "DecoupledSectoredCache",
    "CacheStatistics",
]
