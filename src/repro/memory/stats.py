"""Cache statistics counters.

The counters distinguish demand misses from prefetch activity so that the
coverage and overprediction metrics of the paper (Figures 6, 8, 11) can be
computed directly:

* *covered miss*  — a demand access that hits a block that was brought into
  the cache by the prefetcher and had not yet been demand-referenced
  (``prefetch_hits``).  Without the prefetcher this access would have missed.
* *overprediction* — a prefetched block evicted or invalidated before any
  demand reference used it (``prefetched_evicted_unused``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStatistics:
    """Counter bundle for one cache."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    prefetch_hits: int = 0
    prefetch_fills: int = 0
    prefetched_used: int = 0
    prefetched_evicted_unused: int = 0
    evictions: int = 0
    invalidations: int = 0
    dirty_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def demand_misses(self) -> int:
        return self.misses

    @property
    def covered_misses(self) -> int:
        """Demand accesses that would have missed but hit on a prefetched block."""
        return self.prefetch_hits

    @property
    def overpredictions(self) -> int:
        """Prefetched blocks never used before leaving the cache."""
        return self.prefetched_evicted_unused

    def misses_per_instruction(self, instructions: int) -> float:
        return self.misses / instructions if instructions else 0.0

    def merge(self, other: "CacheStatistics") -> "CacheStatistics":
        """Return a new statistics object summing self and ``other``."""
        merged = CacheStatistics()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class PrefetcherStatistics:
    """Counters for a prefetcher's issue activity."""

    predictions: int = 0
    issued: int = 0
    dropped_duplicate: int = 0
    dropped_resource: int = 0
    pht_lookups: int = 0
    pht_hits: int = 0
    trained_patterns: int = 0

    @property
    def pht_hit_rate(self) -> float:
        return self.pht_hits / self.pht_lookups if self.pht_lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))
