"""Trace streams.

A :class:`TraceStream` is a reusable, named source of
:class:`~repro.trace.record.MemoryAccess` records.  Streams can be
materialized (a list in memory), generated lazily from a callable, built by
interleaving several per-processor streams into one multiprocessor trace, or
wrapped in a :class:`ChunkedTraceStream` for bounded-memory chunk iteration.

Streams are *single-pass on each iteration but replayable across
iterations*: consumers such as the simulation engine iterate them lazily and
never materialize them, so a billion-record stream costs O(chunk) memory.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.trace.record import MemoryAccess

#: Default number of records per chunk for chunked iteration.  Large enough
#: to amortize generator dispatch overhead, small enough to stay cache- and
#: memory-friendly.
DEFAULT_CHUNK_SIZE = 4096


def iter_chunks(
    records: Iterable[MemoryAccess], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[List[MemoryAccess]]:
    """Yield ``records`` as successive lists of up to ``chunk_size`` records.

    Only one chunk is resident at a time, so this is the building block for
    single-pass consumers (the simulation engine's fast path iterates chunks
    rather than individual records).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    iterator = iter(records)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def lane_chunk_iterator(stream, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Return a SoA lane-chunk iterator for ``stream``, or ``None``.

    Only streams that can decode straight into flat integer lanes expose
    ``iter_lane_chunks`` — binary trace files and chunked views over them.
    Text traces, generated workloads, and materialized record lists return
    ``None`` here, which is the engine's signal to fall back to the boxed
    reference path.  A wrapper whose source has no lane support may itself
    return ``None`` from ``iter_lane_chunks``; that propagates.
    """
    method = getattr(stream, "iter_lane_chunks", None)
    if method is None:
        return None
    return method(chunk_size)


def stream_length_hint(stream) -> Optional[int]:
    """Best-effort record count of ``stream`` without iterating it.

    Returns the exact ``len`` for sized containers, the stream's own
    :meth:`TraceStream.length_hint` when it provides one, or a
    ``total_accesses`` attribute (synthetic workloads), else ``None``.
    """
    try:
        return len(stream)
    except TypeError:
        pass
    hint_method = getattr(stream, "length_hint", None)
    if callable(hint_method):
        hint = hint_method()
        if hint is not None and hint >= 0:
            return hint
    total = getattr(stream, "total_accesses", None)
    if isinstance(total, int) and total >= 0:
        return total
    return None


def resolve_warmup_count(
    stream,
    fraction: float,
    limit: Optional[int] = None,
    warmup_accesses: Optional[int] = None,
) -> int:
    """Number of leading records that warm state without being measured.

    Resolution order: an explicit ``warmup_accesses``, then ``fraction`` of
    the stream's length hint (``len`` / ``length_hint()`` /
    ``total_accesses`` — never by materializing the stream), with ``limit``
    standing in for the length when no hint exists.  Raises ``ValueError``
    when a fraction-based warmup is requested but no length source exists.
    """
    if warmup_accesses is not None:
        if warmup_accesses < 0:
            raise ValueError(f"warmup_accesses must be non-negative, got {warmup_accesses}")
        return warmup_accesses if limit is None else min(warmup_accesses, limit)
    if fraction == 0.0:
        return 0
    length = stream_length_hint(stream)
    if length is None:
        length = limit
    elif limit is not None:
        length = min(length, limit)
    if length is None:
        raise ValueError(
            "cannot size the warmup phase: the trace has no length hint; "
            "pass warmup_accesses=..., give the stream a length hint, or use "
            "a warmup fraction of 0"
        )
    return int(length * fraction)


class TraceStream:
    """Base class for replayable access streams.

    Subclasses must implement :meth:`__iter__` such that iterating the stream
    twice yields the same sequence of records (replayability is what lets the
    benchmark harness run the same trace through many predictor
    configurations).
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name

    def __iter__(self) -> Iterator[MemoryAccess]:  # pragma: no cover - interface
        raise NotImplementedError

    def length_hint(self) -> Optional[int]:
        """Expected number of records, or ``None`` when unknown.

        Consumers use this to size warmup phases without materializing the
        stream; an estimate is acceptable.
        """
        return None

    def materialize(self) -> "MaterializedTrace":
        """Return an in-memory copy of this stream."""
        return MaterializedTrace(list(self), name=self.name)

    def take(self, count: int) -> "MaterializedTrace":
        """Return the first ``count`` records as a materialized trace."""
        records = list(islice(iter(self), count))
        return MaterializedTrace(records, name=f"{self.name}[:{count}]")

    def chunked(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "ChunkedTraceStream":
        """Wrap this stream for bounded-memory chunk iteration."""
        return ChunkedTraceStream(self, chunk_size=chunk_size)

    def iter_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[List[MemoryAccess]]:
        """Iterate this stream as successive record lists of ``chunk_size``."""
        return iter_chunks(self, chunk_size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class MaterializedTrace(TraceStream):
    """A trace held entirely in memory."""

    def __init__(self, records: Sequence[MemoryAccess], name: str = "trace") -> None:
        super().__init__(name=name)
        self._records = list(records)

    @classmethod
    def adopt(cls, records: List[MemoryAccess], name: str = "trace") -> "MaterializedTrace":
        """Wrap an existing record list without copying it.

        The caller cedes ownership: mutating ``records`` afterwards mutates
        the trace.  Used by bulk readers that already built the exact list
        (``read_trace_binary`` preallocates from the header count) so the
        constructor's defensive ``list(records)`` copy is not paid twice.
        """
        trace = cls.__new__(cls)
        TraceStream.__init__(trace, name=name)
        trace._records = records
        return trace

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def length_hint(self) -> Optional[int]:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def append(self, record: MemoryAccess) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[MemoryAccess]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> List[MemoryAccess]:
        return self._records

    def split_warmup(self, fraction: float = 0.5) -> tuple:
        """Split into (warmup, measurement) traces.

        The paper uses half of each trace for warm-up prior to collecting
        experimental results (Section 4); this helper mirrors that.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        cut = int(len(self._records) * fraction)
        warm = MaterializedTrace(self._records[:cut], name=f"{self.name}:warmup")
        meas = MaterializedTrace(self._records[cut:], name=f"{self.name}:measure")
        return warm, meas


class GeneratedTrace(TraceStream):
    """A trace produced lazily by a factory callable.

    The factory is invoked afresh on every iteration so that the stream is
    replayable provided the factory is deterministic.  ``length`` is an
    optional record-count hint (it need not be exact) that lets consumers
    size warmup phases without materializing the stream.
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[MemoryAccess]],
        name: str = "generated",
        length: Optional[int] = None,
    ) -> None:
        super().__init__(name=name)
        if length is not None and length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self._factory = factory
        self._length = length

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._factory())

    def length_hint(self) -> Optional[int]:
        return self._length


class ChunkedTraceStream(TraceStream):
    """A view of another stream that iterates in bounded-size chunks.

    Flat iteration (``for record in stream``) behaves exactly like the source
    stream; :meth:`iter_chunks` exposes the chunk granularity directly.  Only
    one chunk is ever resident, so wrapping a lazy source keeps memory
    O(chunk_size) regardless of trace length.
    """

    def __init__(
        self,
        source: Iterable[MemoryAccess],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: Optional[str] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        super().__init__(name=name or getattr(source, "name", "chunked"))
        self._source = source
        self.chunk_size = chunk_size

    def __iter__(self) -> Iterator[MemoryAccess]:
        for chunk in self.iter_chunks():
            yield from chunk

    def iter_chunks(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[List[MemoryAccess]]:
        return iter_chunks(self._source, chunk_size or self.chunk_size)

    def iter_lane_chunks(self, chunk_size: Optional[int] = None):
        """Forward lane iteration to the source; ``None`` when unsupported."""
        return lane_chunk_iterator(self._source, chunk_size or self.chunk_size)

    def length_hint(self) -> Optional[int]:
        return stream_length_hint(self._source)


class InterleavedTrace(TraceStream):
    """Interleave several per-processor traces into one multiprocessor trace.

    Records from each input stream are drawn in bursts whose lengths are
    sampled from a geometric distribution, which mimics the fine-grain
    interleaving of independent processors sharing a memory system.  Each
    input stream's records are re-attributed to the CPU index of its slot.
    """

    def __init__(
        self,
        streams: Sequence[TraceStream],
        seed: int = 0,
        mean_burst: int = 8,
        name: Optional[str] = None,
        reassign_cpus: bool = True,
    ) -> None:
        if not streams:
            raise ValueError("InterleavedTrace requires at least one input stream")
        if mean_burst < 1:
            raise ValueError(f"mean_burst must be >= 1, got {mean_burst}")
        super().__init__(name=name or "+".join(s.name for s in streams))
        self._streams = list(streams)
        self._seed = seed
        self._mean_burst = mean_burst
        self._reassign_cpus = reassign_cpus

    def __iter__(self) -> Iterator[MemoryAccess]:
        rng = random.Random(self._seed)
        iterators = [iter(s) for s in self._streams]
        active = list(range(len(iterators)))
        while active:
            slot = rng.choice(active)
            burst = 1 + int(rng.expovariate(1.0 / self._mean_burst))
            for _ in range(burst):
                try:
                    record = next(iterators[slot])
                except StopIteration:
                    active.remove(slot)
                    break
                if self._reassign_cpus and record.cpu != slot:
                    record = record.with_cpu(slot)
                yield record


def concatenate(streams: Sequence[TraceStream], name: str = "concat") -> MaterializedTrace:
    """Concatenate several streams end to end into one materialized trace."""
    records: List[MemoryAccess] = []
    for stream in streams:
        records.extend(stream)
    return MaterializedTrace(records, name=name)
