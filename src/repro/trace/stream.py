"""Trace streams.

A :class:`TraceStream` is a reusable, named source of
:class:`~repro.trace.record.MemoryAccess` records.  Streams can be
materialized (a list in memory), generated lazily from a callable, or built
by interleaving several per-processor streams into one multiprocessor trace.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.trace.record import MemoryAccess


class TraceStream:
    """Base class for replayable access streams.

    Subclasses must implement :meth:`__iter__` such that iterating the stream
    twice yields the same sequence of records (replayability is what lets the
    benchmark harness run the same trace through many predictor
    configurations).
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name

    def __iter__(self) -> Iterator[MemoryAccess]:  # pragma: no cover - interface
        raise NotImplementedError

    def materialize(self) -> "MaterializedTrace":
        """Return an in-memory copy of this stream."""
        return MaterializedTrace(list(self), name=self.name)

    def take(self, count: int) -> "MaterializedTrace":
        """Return the first ``count`` records as a materialized trace."""
        records: List[MemoryAccess] = []
        for record in self:
            if len(records) >= count:
                break
            records.append(record)
        return MaterializedTrace(records, name=f"{self.name}[:{count}]")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class MaterializedTrace(TraceStream):
    """A trace held entirely in memory."""

    def __init__(self, records: Sequence[MemoryAccess], name: str = "trace") -> None:
        super().__init__(name=name)
        self._records = list(records)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def append(self, record: MemoryAccess) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[MemoryAccess]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> List[MemoryAccess]:
        return self._records

    def split_warmup(self, fraction: float = 0.5) -> tuple:
        """Split into (warmup, measurement) traces.

        The paper uses half of each trace for warm-up prior to collecting
        experimental results (Section 4); this helper mirrors that.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        cut = int(len(self._records) * fraction)
        warm = MaterializedTrace(self._records[:cut], name=f"{self.name}:warmup")
        meas = MaterializedTrace(self._records[cut:], name=f"{self.name}:measure")
        return warm, meas


class GeneratedTrace(TraceStream):
    """A trace produced lazily by a factory callable.

    The factory is invoked afresh on every iteration so that the stream is
    replayable provided the factory is deterministic.
    """

    def __init__(self, factory: Callable[[], Iterable[MemoryAccess]], name: str = "generated") -> None:
        super().__init__(name=name)
        self._factory = factory

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._factory())


class InterleavedTrace(TraceStream):
    """Interleave several per-processor traces into one multiprocessor trace.

    Records from each input stream are drawn in bursts whose lengths are
    sampled from a geometric distribution, which mimics the fine-grain
    interleaving of independent processors sharing a memory system.  Each
    input stream's records are re-attributed to the CPU index of its slot.
    """

    def __init__(
        self,
        streams: Sequence[TraceStream],
        seed: int = 0,
        mean_burst: int = 8,
        name: Optional[str] = None,
        reassign_cpus: bool = True,
    ) -> None:
        if not streams:
            raise ValueError("InterleavedTrace requires at least one input stream")
        if mean_burst < 1:
            raise ValueError(f"mean_burst must be >= 1, got {mean_burst}")
        super().__init__(name=name or "+".join(s.name for s in streams))
        self._streams = list(streams)
        self._seed = seed
        self._mean_burst = mean_burst
        self._reassign_cpus = reassign_cpus

    def __iter__(self) -> Iterator[MemoryAccess]:
        rng = random.Random(self._seed)
        iterators = [iter(s) for s in self._streams]
        active = list(range(len(iterators)))
        while active:
            slot = rng.choice(active)
            burst = 1 + int(rng.expovariate(1.0 / self._mean_burst))
            for _ in range(burst):
                try:
                    record = next(iterators[slot])
                except StopIteration:
                    active.remove(slot)
                    break
                if self._reassign_cpus and record.cpu != slot:
                    record = record.with_cpu(slot)
                yield record


def concatenate(streams: Sequence[TraceStream], name: str = "concat") -> MaterializedTrace:
    """Concatenate several streams end to end into one materialized trace."""
    records: List[MemoryAccess] = []
    for stream in streams:
        records.extend(stream)
    return MaterializedTrace(records, name=name)
