"""Trace-level statistics.

These summaries are used by tests (to validate that workload generators
produce traces with the intended structure) and by the analysis package.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.trace.record import ExecutionMode, MemoryAccess


@dataclass
class TraceStatistics:
    """Aggregate statistics over a trace."""

    total_accesses: int = 0
    reads: int = 0
    writes: int = 0
    user_accesses: int = 0
    system_accesses: int = 0
    unique_pcs: int = 0
    unique_blocks: int = 0
    unique_regions: int = 0
    accesses_per_cpu: Dict[int, int] = field(default_factory=dict)
    max_instruction_count: int = 0

    @property
    def read_fraction(self) -> float:
        return self.reads / self.total_accesses if self.total_accesses else 0.0

    @property
    def write_fraction(self) -> float:
        return self.writes / self.total_accesses if self.total_accesses else 0.0

    @property
    def system_fraction(self) -> float:
        return self.system_accesses / self.total_accesses if self.total_accesses else 0.0

    @property
    def num_cpus(self) -> int:
        return len(self.accesses_per_cpu)


def summarize_trace(
    records: Iterable[MemoryAccess],
    block_size: int = 64,
    region_size: int = 2048,
) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``records``."""
    stats = TraceStatistics()
    pcs = set()
    blocks = set()
    regions = set()
    per_cpu: Counter = Counter()
    for record in records:
        stats.total_accesses += 1
        if record.is_read:
            stats.reads += 1
        else:
            stats.writes += 1
        if record.mode is ExecutionMode.SYSTEM:
            stats.system_accesses += 1
        else:
            stats.user_accesses += 1
        pcs.add(record.pc)
        blocks.add(record.block_address(block_size))
        regions.add(record.region_base(region_size))
        per_cpu[record.cpu] += 1
        if record.instruction_count > stats.max_instruction_count:
            stats.max_instruction_count = record.instruction_count
    stats.unique_pcs = len(pcs)
    stats.unique_blocks = len(blocks)
    stats.unique_regions = len(regions)
    stats.accesses_per_cpu = dict(per_cpu)
    return stats
