"""Trace infrastructure: memory-access records, streams, and statistics.

Every simulation in this repository is trace-driven.  A *trace* is an
iterable of :class:`~repro.trace.record.MemoryAccess` records, each one
describing a single data reference (program counter, byte address,
read/write, issuing CPU, and whether the access occurred in user or system
mode).  Workload generators (:mod:`repro.workloads`) produce traces; the
simulation engine (:mod:`repro.simulation`) consumes them lazily, one chunk
at a time, so traces of any length fit in O(chunk) memory.
"""

from repro.trace.record import AccessType, ExecutionMode, MemoryAccess
from repro.trace.stream import (
    ChunkedTraceStream,
    GeneratedTrace,
    InterleavedTrace,
    MaterializedTrace,
    TraceStream,
    iter_chunks,
    resolve_warmup_count,
    stream_length_hint,
)
from repro.trace.reader import FileTraceStream, read_trace, stream_trace, write_trace
from repro.trace.stats import TraceStatistics, summarize_trace

__all__ = [
    "AccessType",
    "ExecutionMode",
    "MemoryAccess",
    "TraceStream",
    "MaterializedTrace",
    "GeneratedTrace",
    "InterleavedTrace",
    "ChunkedTraceStream",
    "iter_chunks",
    "resolve_warmup_count",
    "stream_length_hint",
    "FileTraceStream",
    "read_trace",
    "stream_trace",
    "write_trace",
    "TraceStatistics",
    "summarize_trace",
]
