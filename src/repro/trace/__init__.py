"""Trace infrastructure: memory-access records, streams, and statistics.

Every simulation in this repository is trace-driven.  A *trace* is an
iterable of :class:`~repro.trace.record.MemoryAccess` records, each one
describing a single data reference (program counter, byte address,
read/write, issuing CPU, and whether the access occurred in user or system
mode).  Workload generators (:mod:`repro.workloads`) produce traces; the
simulation engine (:mod:`repro.simulation`) consumes them lazily, one chunk
at a time, so traces of any length fit in O(chunk) memory.

On-disk trace formats
---------------------

Two interchangeable file formats are supported, auto-detected by
:func:`~repro.trace.reader.stream_trace` / :func:`~repro.trace.reader.write_trace`
and convertible in either direction with ``repro.cli convert``:

**Text** (``.trace`` / any name; ``.gz`` for gzip) — one record per line,
human-readable and diff-friendly::

    <cpu> <mode:U|S> <type:R|W> <pc-hex> <address-hex> <instruction-count>

Blank lines and ``#`` comments are ignored.  This is the interchange format
for external tools; the reader validates every field.

**Binary** (``.strc`` / ``.strc.gz``) — struct-packed little-endian records
behind a fixed 16-byte header, roughly 6x faster to decode::

    header  := magic(4s = b"STRC") version(u16) flags(u16) record_count(u64)
    record  := pc(u64) address(u64) code(u8) cpu(u16) instruction_count(u64)

``code`` packs the access type and mode (bit 0: write, bit 1: system);
``flags`` bit 0 marks a gzip-compressed payload (the header itself is never
compressed, so the record count is patchable after a streaming write and
readable without decompression).  See :mod:`repro.trace.binary` for the full
specification.
"""

from repro.trace.record import AccessType, ExecutionMode, MemoryAccess
from repro.trace.stream import (
    ChunkedTraceStream,
    GeneratedTrace,
    InterleavedTrace,
    MaterializedTrace,
    TraceStream,
    iter_chunks,
    lane_chunk_iterator,
    resolve_warmup_count,
    stream_length_hint,
)
from repro.trace.binary import (
    BinaryTraceStream,
    LaneChunk,
    decode_record_lanes,
    is_binary_trace,
    read_trace_binary,
    write_trace_binary,
)
from repro.trace.reader import FileTraceStream, read_trace, stream_trace, write_trace
from repro.trace.stats import TraceStatistics, summarize_trace

__all__ = [
    "AccessType",
    "ExecutionMode",
    "MemoryAccess",
    "TraceStream",
    "MaterializedTrace",
    "GeneratedTrace",
    "InterleavedTrace",
    "ChunkedTraceStream",
    "iter_chunks",
    "lane_chunk_iterator",
    "resolve_warmup_count",
    "stream_length_hint",
    "FileTraceStream",
    "BinaryTraceStream",
    "LaneChunk",
    "decode_record_lanes",
    "is_binary_trace",
    "read_trace",
    "read_trace_binary",
    "stream_trace",
    "write_trace",
    "write_trace_binary",
    "TraceStatistics",
    "summarize_trace",
]
