"""Memory access records.

The fundamental unit of simulation input is a :class:`MemoryAccess`: one data
reference issued by one processor.  Traces routinely contain hundreds of
millions of records, so the record type is engineered for construction speed
and footprint first:

* it subclasses a plain :func:`collections.namedtuple`, so instances are
  tuples — allocated by a single C call, immutable, and `__slots__`-free;
* the access type and execution mode are packed into one small integer
  ``code`` field (bit 0: write, bit 1: system mode) instead of two enum
  references, which lets the binary trace decoder materialise records
  straight from :meth:`struct.Struct.iter_unpack` tuples via
  ``tuple.__new__`` with no per-record transformation; and
* the enum views (:attr:`MemoryAccess.access_type`,
  :attr:`MemoryAccess.mode`) are exposed as properties decoding ``code``.

The public constructor keeps the historical keyword signature
(``MemoryAccess(pc=..., address=..., access_type=..., cpu=..., mode=...,
instruction_count=...)``) and validates its arguments; trusted bulk decoders
bypass it with ``tuple.__new__(MemoryAccess, (pc, address, code, cpu,
instruction_count))``.
"""

from __future__ import annotations

import enum
from collections import namedtuple


class AccessType(enum.Enum):
    """Kind of memory reference."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class ExecutionMode(enum.Enum):
    """Privilege mode in which the access was issued.

    The paper's Figure 13 breaks execution time into *user busy* and *system
    busy* components; workload generators therefore tag every access with the
    mode that issued it so the timing model can reproduce the breakdown.
    """

    USER = "user"
    SYSTEM = "system"


#: ``code`` field bit layout.
CODE_WRITE = 0b01
CODE_SYSTEM = 0b10

#: Enum views indexed by ``code`` (bit 0 selects the type, bit 1 the mode).
_ACCESS_TYPE_OF_CODE = (AccessType.READ, AccessType.WRITE, AccessType.READ, AccessType.WRITE)
_MODE_OF_CODE = (ExecutionMode.USER, ExecutionMode.USER, ExecutionMode.SYSTEM, ExecutionMode.SYSTEM)

_MemoryAccessBase = namedtuple(
    "_MemoryAccessBase", ("pc", "address", "code", "cpu", "instruction_count")
)


class MemoryAccess(_MemoryAccessBase):
    """A single data reference.

    Attributes
    ----------
    pc:
        Program counter (byte address) of the load/store instruction.
    address:
        Byte address of the datum referenced.
    code:
        Packed access type and execution mode (bit 0: write, bit 1: system).
    cpu:
        Index of the issuing processor (0-based).
    instruction_count:
        Number of instructions (including non-memory ones) the workload
        executed up to and including this access.  Used to compute
        misses-per-instruction and the busy components of the timing model.
        Excluded from equality and hashing.
    """

    __slots__ = ()

    def __new__(
        cls,
        pc: int,
        address: int,
        access_type: AccessType = AccessType.READ,
        cpu: int = 0,
        mode: ExecutionMode = ExecutionMode.USER,
        instruction_count: int = 0,
    ) -> "MemoryAccess":
        if pc < 0:
            raise ValueError(f"pc must be non-negative, got {pc}")
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if cpu < 0:
            raise ValueError(f"cpu must be non-negative, got {cpu}")
        code = (CODE_WRITE if access_type is AccessType.WRITE else 0) | (
            CODE_SYSTEM if mode is ExecutionMode.SYSTEM else 0
        )
        return tuple.__new__(cls, (pc, address, code, cpu, instruction_count))

    # ------------------------------------------------------------------ #
    # Enum views over the packed ``code`` field.
    # ------------------------------------------------------------------ #
    @property
    def access_type(self) -> AccessType:
        # Mask: bits beyond the two defined ones are reserved (a corrupt or
        # future-format binary record must degrade, not raise IndexError).
        return _ACCESS_TYPE_OF_CODE[self[2] & 0b11]

    @property
    def mode(self) -> ExecutionMode:
        return _MODE_OF_CODE[self[2] & 0b11]

    @property
    def is_read(self) -> bool:
        return not self[2] & CODE_WRITE

    @property
    def is_write(self) -> bool:
        return bool(self[2] & CODE_WRITE)

    def __getnewargs__(self):
        # The tuple layout (pc, address, code, cpu, instruction_count) is not
        # the constructor signature, so pickle/deepcopy must rebuild through
        # the keyword semantics of __new__ — the inherited namedtuple default
        # would feed ``code`` into ``access_type`` and silently corrupt the
        # record.
        return (self[0], self[1], self.access_type, self[3], self.mode, self[4])

    # ------------------------------------------------------------------ #
    # instruction_count is bookkeeping, not identity: two records that
    # reference the same datum the same way are equal regardless of where in
    # the instruction stream they occurred.
    # ------------------------------------------------------------------ #
    def __eq__(self, other) -> bool:
        if isinstance(other, MemoryAccess):
            return self[:4] == other[:4]
        # False (not NotImplemented): NotImplemented would hand a plain-tuple
        # operand to the reflected tuple.__eq__, which compares element-wise
        # and would make records equal to their raw field tuples.
        return False

    def __ne__(self, other) -> bool:
        if isinstance(other, MemoryAccess):
            return self[:4] != other[:4]
        return True

    def __hash__(self) -> int:
        return hash(self[:4])

    def __repr__(self) -> str:
        return (
            f"MemoryAccess(pc={self[0]:#x}, address={self[1]:#x}, "
            f"access_type={self.access_type.name}, cpu={self[3]}, "
            f"mode={self.mode.name}, instruction_count={self[4]})"
        )

    # ------------------------------------------------------------------ #
    def block_address(self, block_size: int) -> int:
        """Return the address of the cache block containing this access."""
        return self[1] & ~(block_size - 1)

    def region_base(self, region_size: int) -> int:
        """Return the base address of the spatial region containing this access."""
        return self[1] & ~(region_size - 1)

    def region_offset(self, region_size: int, block_size: int) -> int:
        """Return the block offset of this access within its spatial region."""
        return (self[1] & (region_size - 1)) // block_size

    def with_cpu(self, cpu: int) -> "MemoryAccess":
        """Return a copy of this record re-attributed to ``cpu``."""
        if cpu < 0:
            raise ValueError(f"cpu must be non-negative, got {cpu}")
        return tuple.__new__(MemoryAccess, (self[0], self[1], self[2], cpu, self[4]))


def read_access(pc: int, address: int, cpu: int = 0, **kwargs) -> MemoryAccess:
    """Convenience constructor for a read access."""
    return MemoryAccess(pc=pc, address=address, access_type=AccessType.READ, cpu=cpu, **kwargs)


def write_access(pc: int, address: int, cpu: int = 0, **kwargs) -> MemoryAccess:
    """Convenience constructor for a write access."""
    return MemoryAccess(pc=pc, address=address, access_type=AccessType.WRITE, cpu=cpu, **kwargs)
