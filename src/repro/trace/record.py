"""Memory access records.

The fundamental unit of simulation input is a :class:`MemoryAccess`: one data
reference issued by one processor.  Records are deliberately tiny (slotted
dataclasses) because traces routinely contain hundreds of thousands of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """Kind of memory reference."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class ExecutionMode(enum.Enum):
    """Privilege mode in which the access was issued.

    The paper's Figure 13 breaks execution time into *user busy* and *system
    busy* components; workload generators therefore tag every access with the
    mode that issued it so the timing model can reproduce the breakdown.
    """

    USER = "user"
    SYSTEM = "system"


@dataclass(frozen=True)
class MemoryAccess:
    """A single data reference.

    Attributes
    ----------
    pc:
        Program counter (byte address) of the load/store instruction.
    address:
        Byte address of the datum referenced.
    access_type:
        Read or write.
    cpu:
        Index of the issuing processor (0-based).
    mode:
        User or system execution mode.
    instruction_count:
        Number of instructions (including non-memory ones) the workload
        executed up to and including this access.  Used to compute
        misses-per-instruction and the busy components of the timing model.
    """

    pc: int
    address: int
    access_type: AccessType = AccessType.READ
    cpu: int = 0
    mode: ExecutionMode = ExecutionMode.USER
    instruction_count: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"pc must be non-negative, got {self.pc}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.cpu < 0:
            raise ValueError(f"cpu must be non-negative, got {self.cpu}")

    @property
    def is_read(self) -> bool:
        return self.access_type.is_read

    @property
    def is_write(self) -> bool:
        return self.access_type.is_write

    def block_address(self, block_size: int) -> int:
        """Return the address of the cache block containing this access."""
        return self.address & ~(block_size - 1)

    def region_base(self, region_size: int) -> int:
        """Return the base address of the spatial region containing this access."""
        return self.address & ~(region_size - 1)

    def region_offset(self, region_size: int, block_size: int) -> int:
        """Return the block offset of this access within its spatial region."""
        return (self.address & (region_size - 1)) // block_size

    def with_cpu(self, cpu: int) -> "MemoryAccess":
        """Return a copy of this record re-attributed to ``cpu``."""
        return MemoryAccess(
            pc=self.pc,
            address=self.address,
            access_type=self.access_type,
            cpu=cpu,
            mode=self.mode,
            instruction_count=self.instruction_count,
        )


def read_access(pc: int, address: int, cpu: int = 0, **kwargs) -> MemoryAccess:
    """Convenience constructor for a read access."""
    return MemoryAccess(pc=pc, address=address, access_type=AccessType.READ, cpu=cpu, **kwargs)


def write_access(pc: int, address: int, cpu: int = 0, **kwargs) -> MemoryAccess:
    """Convenience constructor for a write access."""
    return MemoryAccess(pc=pc, address=address, access_type=AccessType.WRITE, cpu=cpu, **kwargs)
