"""Binary (struct-packed) trace file I/O — the ``.strc`` format.

Text traces are convenient to inspect and diff, but parsing them dominates
end-to-end reproduction time on full-scale runs: every line costs a split,
two hex conversions, and two code-table lookups.  The binary format stores
the same records struct-packed so the decoder is a single
:meth:`struct.Struct.iter_unpack` sweep over buffered reads — roughly an
order of magnitude faster (see ``benchmarks/bench_throughput.py``).

File layout
-----------

A ``.strc`` file is a fixed 16-byte header followed by a record payload::

    header  := magic(4s = b"STRC") version(u16) flags(u16) record_count(u64)
    payload := record *
    record  := pc(u64) address(u64) code(u8) cpu(u16) instruction_count(u64)

All integers are little-endian; records are 27 bytes with no padding.  The
``code`` byte is the packed :attr:`~repro.trace.record.MemoryAccess.code`
field (bit 0: write, bit 1: system mode), and the five record fields are laid
out in exactly the order of the :class:`~repro.trace.record.MemoryAccess`
tuple, so decoding a record is ``tuple.__new__(MemoryAccess, unpacked)`` with
no per-record transformation.

Bits 2–7 of ``code`` are reserved: writers emit zero, and readers ignore
them (the enum views mask to the low two bits), so corrupt or
future-format records degrade instead of raising.

``flags`` bit 0 marks a gzip-compressed payload (the ``.strc.gz`` variant).
The header itself is *never* compressed: the writer streams records of
unknown count, then seeks back and patches ``record_count`` — which works
for gzip files too precisely because the header lives outside the compressed
member.  ``record_count`` is ``0xFFFF_FFFF_FFFF_FFFF`` when unknown (e.g. a
foreign writer that could not seek); readers then fall back to counting.

The record count in the header gives :class:`BinaryTraceStream` an exact
``length_hint`` for free, which fraction-based warmup sizing needs and the
text reader can only obtain with a full counting pass.
"""

from __future__ import annotations

import gzip
import sys
from array import array
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.trace.record import MemoryAccess
from repro.trace.stream import DEFAULT_CHUNK_SIZE, MaterializedTrace, TraceStream

import struct

#: First four bytes of every binary trace file.
MAGIC = b"STRC"

#: Current format version (bumped on any incompatible layout change).
VERSION = 1

#: Header flag bit: the payload is a gzip member.
FLAG_GZIP = 0x0001

#: ``record_count`` sentinel meaning "not recorded".
UNKNOWN_COUNT = 0xFFFF_FFFF_FFFF_FFFF

HEADER = struct.Struct("<4sHHQ")
#: Byte offset of ``record_count`` within the header (patched after writing).
_COUNT_OFFSET = 8

#: One record, in MemoryAccess tuple order: pc, address, code, cpu, icount.
RECORD = struct.Struct("<QQBHQ")
RECORD_SIZE = RECORD.size

_MAX_U64 = 2**64 - 1
_MAX_U16 = 2**16 - 1

#: Records encoded or decoded per I/O batch (~220 kB of payload).
_BATCH_RECORDS = 8192

#: Byte offsets of the u64 fields within one packed record.
_PC_OFFSET = 0
_ADDRESS_OFFSET = 8
_CODE_OFFSET = 16
_CPU_OFFSET = 17
_ICOUNT_OFFSET = 19

#: The strided-slice gather writes raw little-endian bytes straight into
#: ``array`` buffers, so it is only valid where the machine layout matches
#: the file layout.  Everywhere else (big-endian, exotic ``array`` item
#: sizes) the decoder falls back to ``iter_unpack``, which is portable.
_LANES_NATIVE = (
    sys.byteorder == "little"
    and array("Q").itemsize == 8
    and array("H").itemsize == 2
)


class LaneChunk:
    """One decoded chunk as parallel SoA integer lanes.

    Five flat ``array`` columns hold the same fields a list of
    :class:`~repro.trace.record.MemoryAccess` tuples would, without boxing a
    single record: ``pc``/``address``/``instruction_count`` are ``array('Q')``,
    ``code`` is ``array('B')``, ``cpu`` is ``array('H')``.  The engine's lane
    path walks these with a single ``zip``; boxed records exist only where a
    slow path explicitly asks for them (:meth:`record` / :meth:`records`).
    """

    __slots__ = ("pc", "address", "code", "cpu", "instruction_count")

    def __init__(self, pc, address, code, cpu, instruction_count) -> None:
        self.pc = pc
        self.address = address
        self.code = code
        self.cpu = cpu
        self.instruction_count = instruction_count

    def __len__(self) -> int:
        return len(self.address)

    def slice(self, start: int, stop: Optional[int] = None) -> "LaneChunk":
        """Lane-wise ``[start:stop]`` view copy (warmup/limit boundaries only)."""
        return LaneChunk(
            self.pc[start:stop],
            self.address[start:stop],
            self.code[start:stop],
            self.cpu[start:stop],
            self.instruction_count[start:stop],
        )

    def record(self, index: int) -> MemoryAccess:
        """Box one record (slow paths: snapshots, diagnostics)."""
        return tuple.__new__(
            MemoryAccess,
            (
                self.pc[index],
                self.address[index],
                self.code[index],
                self.cpu[index],
                self.instruction_count[index],
            ),
        )

    def records(self) -> List[MemoryAccess]:
        """Box every record — the deliberate lane → namedtuple escape hatch."""
        new = tuple.__new__
        cls = MemoryAccess
        return [
            new(cls, fields)
            for fields in zip(
                self.pc, self.address, self.code, self.cpu, self.instruction_count
            )
        ]


def _gather_u64(data: bytes, offset: int, count: int) -> array:
    """Collect one u64 column from packed records via strided byte slices.

    Eight C-speed slice assignments (one per byte position) transpose the
    column into a contiguous little-endian buffer, which ``array('Q')``
    adopts wholesale — no per-record Python bytecode at all.
    """
    buf = bytearray(8 * count)
    for j in range(8):
        buf[j::8] = data[offset + j :: RECORD_SIZE]
    out = array("Q")
    out.frombytes(bytes(buf))
    return out


def _gather_u16(data: bytes, offset: int, count: int) -> array:
    buf = bytearray(2 * count)
    buf[0::2] = data[offset::RECORD_SIZE]
    buf[1::2] = data[offset + 1 :: RECORD_SIZE]
    out = array("H")
    out.frombytes(bytes(buf))
    return out


def _decode_lanes_portable(data: bytes) -> LaneChunk:
    """Reference lane decoder over ``iter_unpack`` (any byte order)."""
    if not data:
        empty = array("Q")
        return LaneChunk(empty, array("Q"), array("B"), array("H"), array("Q"))
    pc, address, code, cpu, icount = zip(*RECORD.iter_unpack(data))
    return LaneChunk(
        array("Q", pc), array("Q", address), array("B", code),
        array("H", cpu), array("Q", icount),
    )


def decode_record_lanes(data: bytes) -> LaneChunk:
    """Decode a whole-record payload slice straight into SoA lanes.

    ``data`` must be a multiple of :data:`RECORD_SIZE` bytes (the chunk
    iterator guarantees this; anything else raises ``ValueError`` exactly as
    a torn tail would).  Field-for-field identical to boxing via
    ``RECORD.iter_unpack`` — pinned by a hypothesis property test.
    """
    count, remainder = divmod(len(data), RECORD_SIZE)
    if remainder:
        raise ValueError(
            f"lane decode needs whole records "
            f"({remainder} trailing bytes are not a whole record)"
        )
    if not _LANES_NATIVE:
        return _decode_lanes_portable(data)
    return LaneChunk(
        _gather_u64(data, _PC_OFFSET, count),
        _gather_u64(data, _ADDRESS_OFFSET, count),
        array("B", data[_CODE_OFFSET::RECORD_SIZE]),
        _gather_u16(data, _CPU_OFFSET, count),
        _gather_u64(data, _ICOUNT_OFFSET, count),
    )


def is_binary_trace(path: Union[str, Path]) -> bool:
    """True when ``path`` exists and starts with the binary trace magic."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def has_binary_suffix(path: Union[str, Path]) -> bool:
    """True when ``path`` is named as a binary trace (``.strc`` / ``.strc.gz``)."""
    name = Path(path).name
    return name.endswith(".strc") or name.endswith(".strc.gz")


def _read_header(handle: IO[bytes], path: Path) -> tuple:
    """Read and validate the 16-byte header; return (flags, record_count)."""
    raw = handle.read(HEADER.size)
    if len(raw) < HEADER.size:
        raise ValueError(
            f"{path}: truncated binary trace header "
            f"(got {len(raw)} bytes, need {HEADER.size})"
        )
    magic, version, flags, record_count = HEADER.unpack(raw)
    if magic != MAGIC:
        raise ValueError(
            f"{path}: not a binary trace (bad magic {magic!r}; expected {MAGIC!r})"
        )
    if version != VERSION:
        raise ValueError(
            f"{path}: unsupported binary trace version {version} "
            f"(this reader supports version {VERSION})"
        )
    return flags, record_count


def write_trace_binary(
    path: Union[str, Path],
    records: Iterable[MemoryAccess],
    compress: Optional[bool] = None,
) -> int:
    """Write ``records`` to ``path`` in the binary format; return the count.

    ``records`` is consumed lazily in batches, so streams of any length can
    be written in O(batch) memory.  ``compress`` defaults to the file name
    (``.gz`` suffix); the header stays uncompressed either way so the record
    count can be patched in after the stream has been consumed.  Output is
    byte-for-byte deterministic (the gzip member carries no timestamp).
    """
    path = Path(path)
    if compress is None:
        compress = path.suffix == ".gz"
    flags = FLAG_GZIP if compress else 0
    count = 0
    pack = RECORD.pack
    with path.open("wb") as raw:
        raw.write(HEADER.pack(MAGIC, VERSION, flags, UNKNOWN_COUNT))
        payload: IO[bytes] = (
            gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
            if compress
            else raw
        )
        try:
            batch: List[bytes] = []
            append = batch.append
            for record in records:
                pc, address, code, cpu, icount = record
                if not (0 <= pc <= _MAX_U64 and 0 <= address <= _MAX_U64
                        and 0 <= icount <= _MAX_U64):
                    raise ValueError(
                        f"record {count}: field outside the unsigned 64-bit range "
                        f"(pc={pc:#x}, address={address:#x}, "
                        f"instruction_count={icount})"
                    )
                if not 0 <= cpu <= _MAX_U16:
                    raise ValueError(
                        f"record {count}: cpu {cpu} outside the unsigned 16-bit range"
                    )
                append(pack(pc, address, code, cpu, icount))
                count += 1
                if len(batch) >= _BATCH_RECORDS:
                    payload.write(b"".join(batch))
                    batch.clear()
            if batch:
                payload.write(b"".join(batch))
        finally:
            if compress:
                payload.close()  # finish the gzip member before patching
        raw.seek(_COUNT_OFFSET)
        raw.write(struct.pack("<Q", count))
    return count


class BinaryTraceStream(TraceStream):
    """A replayable stream backed by a binary (``.strc``) trace file.

    Each iteration re-opens the file and decodes records in batches, so
    iterating costs O(batch) memory regardless of file size.  The header's
    record count doubles as an exact :meth:`length_hint`, making
    fraction-based warmup sizing free.

    :meth:`iter_chunks` yields the decoder's batch lists directly, letting
    chunk-oriented consumers (the simulation engine) skip the per-record
    generator hop entirely.
    """

    def __init__(
        self, path: Union[str, Path], name: str = "", length: Optional[int] = None
    ) -> None:
        self.path = Path(path)
        super().__init__(name=name or _binary_stem(self.path))
        if length is not None and length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self._length = length

    # ------------------------------------------------------------------ #
    def _open_payload(self):
        """Open the file, validate the header; return (handle, raw, count).

        ``raw`` is the underlying file object — callers must close it as
        well as ``handle``, because closing a ``GzipFile`` does not close
        the fileobj it wraps.
        """
        raw = self.path.open("rb")
        try:
            flags, record_count = _read_header(raw, self.path)
        except (OSError, ValueError):
            # Header validation can only fail these two ways (short read /
            # bad magic-version); anything else would leak the handle on
            # purpose so the real bug surfaces undisturbed.
            raw.close()
            raise
        handle: IO[bytes] = (
            gzip.GzipFile(filename="", mode="rb", fileobj=raw) if flags & FLAG_GZIP else raw
        )
        count = None if record_count == UNKNOWN_COUNT else record_count
        return handle, raw, count

    def iter_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[List[MemoryAccess]]:
        """Decode the file as successive record lists of ``chunk_size``."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        handle, raw, expected = self._open_payload()
        read_bytes = chunk_size * RECORD_SIZE
        new = tuple.__new__
        cls = MemoryAccess
        iter_unpack = RECORD.iter_unpack
        decoded = 0
        pending = b""
        try:
            while True:
                data = handle.read(read_bytes)
                if not data:
                    break
                if pending:
                    data = pending + data
                    pending = b""
                remainder = len(data) % RECORD_SIZE
                if remainder:
                    pending = data[-remainder:]
                    data = data[:-remainder]
                if not data:
                    continue
                chunk = [new(cls, fields) for fields in iter_unpack(data)]
                decoded += len(chunk)
                yield chunk
        finally:
            handle.close()
            raw.close()
        if pending:
            raise ValueError(
                f"{self.path}: truncated binary trace "
                f"({len(pending)} trailing bytes are not a whole record)"
            )
        if expected is not None and decoded != expected:
            raise ValueError(
                f"{self.path}: header promises {expected} records "
                f"but the payload holds {decoded}"
            )
        if self._length is None:
            self._length = decoded

    def iter_lane_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[LaneChunk]:
        """Decode the file as successive :class:`LaneChunk` SoA batches.

        Identical framing to :meth:`iter_chunks` (same chunk boundaries, same
        torn-tail and header-count validation, same errors) but each chunk is
        five flat integer lanes instead of a list of boxed records — the
        engine's lane path consumes these directly.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        handle, raw, expected = self._open_payload()
        read_bytes = chunk_size * RECORD_SIZE
        decode = decode_record_lanes
        decoded = 0
        pending = b""
        try:
            while True:
                data = handle.read(read_bytes)
                if not data:
                    break
                if pending:
                    data = pending + data
                    pending = b""
                remainder = len(data) % RECORD_SIZE
                if remainder:
                    pending = data[-remainder:]
                    data = data[:-remainder]
                if not data:
                    continue
                chunk = decode(data)
                decoded += len(chunk)
                yield chunk
        finally:
            handle.close()
            raw.close()
        if pending:
            raise ValueError(
                f"{self.path}: truncated binary trace "
                f"({len(pending)} trailing bytes are not a whole record)"
            )
        if expected is not None and decoded != expected:
            raise ValueError(
                f"{self.path}: header promises {expected} records "
                f"but the payload holds {decoded}"
            )
        if self._length is None:
            self._length = decoded

    def __iter__(self) -> Iterator[MemoryAccess]:
        for chunk in self.iter_chunks():
            yield from chunk

    # ------------------------------------------------------------------ #
    def length_hint(self) -> Optional[int]:
        if self._length is None:
            try:
                with self.path.open("rb") as raw:
                    _, record_count = _read_header(raw, self.path)
            except (OSError, ValueError):
                return None
            if record_count != UNKNOWN_COUNT:
                self._length = record_count
        return self._length

    def count_records(self) -> int:
        """Record count — free from the header, one pass only if unrecorded."""
        if self._length is None and self.length_hint() is None:
            count = 0
            for chunk in self.iter_chunks():
                count += len(chunk)
            self._length = count
        return self._length


def _binary_stem(path: Path) -> str:
    """File stem with ``.gz`` and ``.strc`` peeled off (``t.strc.gz`` → ``t``)."""
    stem = path.stem
    while stem != (stripped := Path(stem).stem):
        stem = stripped
    return stem


def read_trace_binary(path: Union[str, Path], name: str = "") -> MaterializedTrace:
    """Eagerly read a binary trace into a :class:`MaterializedTrace`.

    The result list is preallocated from the header's record count (when
    recorded) and filled by boxing whole lane chunks at a time, then adopted
    by the trace without the defensive copy ``MaterializedTrace(records)``
    would make — one list, sized once, built once.
    """
    stream = BinaryTraceStream(path, name=name)
    expected = stream.length_hint()
    cursor = 0
    if expected is None:
        records: List[MemoryAccess] = []
        for chunk in stream.iter_lane_chunks():
            records.extend(chunk.records())
            cursor += len(chunk)
    else:
        records = [None] * expected  # type: ignore[list-item]
        for chunk in stream.iter_lane_chunks():
            boxed = chunk.records()
            records[cursor : cursor + len(boxed)] = boxed
            cursor += len(boxed)
    return MaterializedTrace.adopt(records, name=stream.name)
