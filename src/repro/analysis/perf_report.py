"""Perf observatory: benchmark-history trends plus a live metrics snapshot.

``repro.cli perf-report`` closes the observability loop: the benchmark
harness appends one JSON line per run to ``benchmarks/BENCH_history.jsonl``
(see ``benchmarks/bench_history.py``), the serve daemon exposes its
counters at ``GET /metrics`` (see :mod:`repro.obs.gateway`), and this
module folds both into one artifact a human can read in ten seconds:

* ``perf_report.md`` — latest value, trailing median, and delta for every
  tracked throughput metric, plus a digest of the scraped metrics
  snapshot (request counts per verb, cache hit ratios, pool health).
* ``<metric>.svg`` — one minimal polyline chart per metric, newest entry
  rightmost, rendered with no dependencies beyond string formatting.

The report is deterministic given its inputs: it never reads the wall
clock (the "as of" line is the newest history entry's own timestamp) and
never touches entropy, so re-rendering the same history is byte-stable.

The metrics snapshot is optional and best-effort — a path to a JSON file
saved from ``/metrics?format=json``, or an ``http://`` URL scraped
directly (loopback gateway; stdlib ``urllib`` only).  A missing or
unreachable snapshot degrades to a history-only report rather than
failing the nightly job.
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_HISTORY",
    "DEFAULT_OUT_DIR",
    "TRAILING_WINDOW",
    "load_history",
    "load_metrics_snapshot",
    "metric_series",
    "render_json",
    "render_markdown",
    "render_svg",
    "write_report",
]

#: Default inputs/outputs, relative to the repository root.
DEFAULT_HISTORY = Path("benchmarks") / "BENCH_history.jsonl"
DEFAULT_OUT_DIR = Path("benchmarks") / "perf_report"

#: How many trailing entries feed the median (matches bench_history.py).
TRAILING_WINDOW = 10

#: Metrics pulled out of history entries, with display labels.
TRACKED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("engine_baseline_rps", "engine baseline (records/s)"),
    ("engine_sms_rps", "engine + SMS (records/s)"),
    ("lanes_rps", "batch lanes (records/s)"),
    ("reference_rps", "reference path (records/s)"),
    ("lane_speedup", "lane speedup (x)"),
    ("decode_binary_rps", "binary decode (records/s)"),
)

SVG_WIDTH = 480
SVG_HEIGHT = 140
SVG_PAD = 12


def load_history(path: Union[str, Path]) -> List[dict]:
    """History entries in file order; unparseable lines are skipped."""
    entries: List[dict] = []
    history = Path(path)
    if not history.exists():
        return entries
    for line in history.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn append costs one data point, not the report
        if isinstance(record, dict):
            entries.append(record)
    return entries


def load_metrics_snapshot(source: str) -> Optional[Dict[str, Any]]:
    """A ``/metrics?format=json`` payload from a file path or http URL.

    Returns ``None`` when the source cannot be read or parsed — the
    report degrades to history-only rather than failing the nightly run.
    """
    try:
        if source.startswith("http://") or source.startswith("https://"):
            with urllib.request.urlopen(source, timeout=10) as response:
                raw = response.read().decode("utf-8")
        else:
            raw = Path(source).read_text()
        payload = json.loads(raw)
    except (OSError, ValueError, urllib.error.URLError) as exc:
        print(f"perf-report: metrics snapshot unavailable ({exc})", file=sys.stderr)
        return None
    return payload if isinstance(payload, dict) else None


def metric_series(entries: Sequence[dict], name: str) -> List[Tuple[str, float]]:
    """``(git_sha, value)`` pairs for one metric, oldest first."""
    series = []
    for entry in entries:
        value = entry.get("metrics", {}).get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series.append((str(entry.get("git_sha", "unknown"))[:12], float(value)))
    return series


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) >= 1000:
        return f"{int(value):,}"
    return f"{value:,.2f}"


def render_svg(title: str, series: Sequence[Tuple[str, float]]) -> str:
    """A minimal polyline trend chart (no dependencies, byte-stable)."""
    values = [value for _, value in series]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    inner_w = SVG_WIDTH - 2 * SVG_PAD
    inner_h = SVG_HEIGHT - 2 * SVG_PAD
    points = []
    for index, value in enumerate(values):
        x = SVG_PAD + (inner_w * index / max(len(values) - 1, 1))
        y = SVG_PAD + inner_h * (1.0 - (value - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = points[-1].split(",")
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_WIDTH}" '
        f'height="{SVG_HEIGHT}" viewBox="0 0 {SVG_WIDTH} {SVG_HEIGHT}">\n'
        f'  <rect width="{SVG_WIDTH}" height="{SVG_HEIGHT}" fill="#ffffff"/>\n'
        f'  <text x="{SVG_PAD}" y="{SVG_PAD - 2}" font-size="10" '
        f'font-family="monospace" fill="#333333">{title}: '
        f"{_format_number(lo)} .. {_format_number(hi)} "
        f"(n={len(values)})</text>\n"
        f'  <polyline fill="none" stroke="#2a6fbb" stroke-width="1.5" '
        f'points="{" ".join(points)}"/>\n'
        f'  <circle cx="{last_x}" cy="{last_y}" r="3" fill="#2a6fbb"/>\n'
        "</svg>\n"
    )


def _snapshot_lines(snapshot: Dict[str, Any]) -> List[str]:
    """A readable digest of the key serve/cache/engine families."""
    metrics = snapshot.get("metrics", {})
    if not isinstance(metrics, dict) or not metrics:
        note = "disabled" if snapshot.get("disabled") else "empty"
        return [f"_Metrics snapshot was {note}._", ""]
    lines = ["| metric | labels | value |", "| --- | --- | --- |"]
    shown = 0
    for name in sorted(metrics):
        family = metrics[name]
        if not isinstance(family, dict):
            continue
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            label_text = (
                ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"
            )
            if family.get("kind") == "histogram":
                count = sample.get("count", 0)
                total = sample.get("sum", 0.0)
                mean = (total / count) if count else 0.0
                value_text = f"n={count}, mean={mean * 1000.0:.2f} ms"
            else:
                value_text = _format_number(float(sample.get("value", 0)))
            lines.append(f"| `{name}` | {label_text} | {value_text} |")
            shown += 1
    lines.append("")
    lines.append(f"_{shown} sample(s) across {len(metrics)} metric families._")
    lines.append("")
    return lines


def render_json(
    entries: Sequence[dict], snapshot: Optional[Dict[str, Any]] = None
) -> str:
    """The same latest/median/delta summary as machine-readable JSON.

    This is the ``repro.cli perf-report --json`` face, for dashboards and
    CI checks that should not scrape the markdown table.
    """
    metrics: Dict[str, Any] = {}
    for name, label in TRACKED_METRICS:
        series = metric_series(entries, name)
        if not series:
            continue
        latest_value = series[-1][1]
        prior = [value for _, value in series[:-1]][-TRAILING_WINDOW:]
        median = _median(prior) if prior else None
        delta = (
            (latest_value - median) / median if prior and median else None
        )
        metrics[name] = {
            "label": label,
            "latest": latest_value,
            "trailing_median": median,
            "delta": delta,
            "points": len(series),
        }
    latest = entries[-1] if entries else {}
    payload = {
        "git_sha": latest.get("git_sha"),
        "timestamp": latest.get("timestamp"),
        "entries": len(entries),
        "metrics": metrics,
        "snapshot": snapshot,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_markdown(
    entries: Sequence[dict],
    snapshot: Optional[Dict[str, Any]] = None,
    svg_names: Optional[Dict[str, str]] = None,
) -> str:
    lines = ["# Performance report", ""]
    if not entries:
        lines += ["No benchmark history yet — run `benchmarks/bench_throughput.py`",
                  "then `benchmarks/bench_history.py append`.", ""]
        return "\n".join(lines)
    latest = entries[-1]
    lines += [
        f"As of `{latest.get('git_sha', 'unknown')[:12]}` "
        f"({latest.get('timestamp', 'no timestamp')}, "
        f"{len(entries)} history entr{'y' if len(entries) == 1 else 'ies'}).",
        "",
        "## Throughput trends",
        "",
        "| metric | latest | trailing median | delta |",
        "| --- | --- | --- | --- |",
    ]
    for name, label in TRACKED_METRICS:
        series = metric_series(entries, name)
        if not series:
            continue
        latest_value = series[-1][1]
        prior = [value for _, value in series[:-1]][-TRAILING_WINDOW:]
        if prior:
            median = _median(prior)
            delta = (latest_value - median) / median if median else 0.0
            median_text = _format_number(median)
            delta_text = f"{delta:+.1%}"
        else:
            median_text = delta_text = "-"
        lines.append(
            f"| {label} | {_format_number(latest_value)} "
            f"| {median_text} | {delta_text} |"
        )
    lines.append("")
    if svg_names:
        lines.append("## Charts")
        lines.append("")
        for name, label in TRACKED_METRICS:
            file_name = svg_names.get(name)
            if file_name:
                lines.append(f"![{label}]({file_name})")
        lines.append("")
    lines.append("## Live metrics snapshot")
    lines.append("")
    if snapshot is None:
        lines += ["_No metrics snapshot supplied (pass `--metrics` with a "
                  "saved `/metrics?format=json` payload or a gateway URL)._", ""]
    else:
        lines += _snapshot_lines(snapshot)
    return "\n".join(lines)


def write_report(
    history_path: Optional[Union[str, Path]] = None,
    metrics_source: Optional[str] = None,
    out_dir: Optional[Union[str, Path]] = None,
) -> List[Path]:
    """Render the report; returns the paths written (markdown first)."""
    entries = load_history(history_path if history_path is not None else DEFAULT_HISTORY)
    snapshot = load_metrics_snapshot(metrics_source) if metrics_source else None
    target = Path(out_dir) if out_dir is not None else DEFAULT_OUT_DIR
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    svg_names: Dict[str, str] = {}
    for name, label in TRACKED_METRICS:
        series = metric_series(entries, name)
        if len(series) < 2:
            continue  # a one-point polyline is noise, not a trend
        svg_path = target / f"{name}.svg"
        svg_path.write_text(render_svg(label, series))
        svg_names[name] = svg_path.name
        written.append(svg_path)
    report_path = target / "perf_report.md"
    report_path.write_text(render_markdown(entries, snapshot, svg_names))
    written.insert(0, report_path)
    return written
