"""ASCII charts.

The benchmark harness and examples run in terminals without a plotting
backend, so the figures are rendered as simple text bar charts and line
series.  These are deliberately minimal: enough to eyeball the shape of a
reproduced figure next to the paper's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def _scaled_width(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, min(width, int(round(width * value / maximum))))


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.2f}",
    maximum: Optional[float] = None,
) -> str:
    """Render a horizontal bar chart.

    ``values`` maps labels to non-negative values; bars are scaled to
    ``maximum`` (defaults to the largest value).
    """
    if not values:
        raise ValueError("bar_chart requires at least one value")
    if any(value < 0 for value in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    longest_label = max(len(str(label)) for label in values)
    scale_max = maximum if maximum is not None else max(values.values())
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = "#" * _scaled_width(value, scale_max, width)
        lines.append(
            f"{str(label).ljust(longest_label)} | {bar.ljust(width)} {value_format.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render groups of bars (e.g. one group per application, one bar per config)."""
    if not groups:
        raise ValueError("grouped_bar_chart requires at least one group")
    flat_values = [value for group in groups.values() for value in group.values()]
    if not flat_values:
        raise ValueError("grouped_bar_chart requires at least one bar")
    maximum = max(flat_values)
    longest_label = max(
        len(str(label)) for group in groups.values() for label in group
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for group_name, group in groups.items():
        lines.append(f"{group_name}:")
        for label, value in group.items():
            bar = "#" * _scaled_width(value, maximum, width)
            lines.append(
                f"  {str(label).ljust(longest_label)} | {bar.ljust(width)} "
                f"{value_format.format(value)}"
            )
    return "\n".join(lines)


def line_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 50,
    height: int = 12,
) -> str:
    """Render one or more (x, y) series as a coarse ASCII scatter/line plot.

    Each series gets a distinct marker; x values are mapped to columns in
    order of magnitude, y values to rows (0 at the bottom).
    """
    if not series:
        raise ValueError("line_series requires at least one series")
    markers = "ox+*@%&$"
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        raise ValueError("line_series requires at least one point")
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_min:.2f} .. {y_max:.2f}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{markers[index % len(markers)]}={name}" for index, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def stacked_bar(
    segments: Mapping[str, float],
    total_width: int = 60,
    legend: bool = True,
) -> str:
    """Render one stacked horizontal bar whose segments sum to the bar length."""
    if not segments:
        raise ValueError("stacked_bar requires at least one segment")
    total = sum(segments.values())
    if total <= 0:
        return "(empty)"
    markers = "#=+-.:*%"
    bar = ""
    legend_parts = []
    for index, (name, value) in enumerate(segments.items()):
        marker = markers[index % len(markers)]
        bar += marker * _scaled_width(value, total, total_width)
        legend_parts.append(f"{marker}={name} ({value / total:.0%})")
    result = "[" + bar.ljust(total_width) + "]"
    if legend:
        result += "\n  " + "  ".join(legend_parts)
    return result
