"""Coverage and overprediction reporting.

The paper's predictor comparisons (Figures 6, 8, 11) present, for each
configuration, the fraction of baseline read misses that are *covered*
(eliminated), *uncovered* (still missed), and the *overpredictions*
(prefetched blocks never used) as a fraction of the same baseline.  This
module derives those three numbers from a pair of simulation results: the
baseline (no prefetcher) and the prefetching configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.simulation.engine import SimulationResult


@dataclass(frozen=True)
class CoverageReport:
    """Coverage / uncovered / overprediction fractions for one configuration.

    All three values are fractions of the baseline read-miss count, so
    ``coverage + uncovered`` is ~1.0 (small deviations arise when prefetching
    perturbs replacement behaviour) and ``overpredictions`` may exceed 1.0
    for aggressive, inaccurate predictors (as in the paper's Figure 6, where
    PC indexing overshoots 100%).
    """

    name: str
    level: str
    baseline_misses: int
    covered: int
    uncovered: int
    overpredictions: int

    @property
    def coverage(self) -> float:
        return self.covered / self.baseline_misses if self.baseline_misses else 0.0

    @property
    def uncovered_fraction(self) -> float:
        return self.uncovered / self.baseline_misses if self.baseline_misses else 0.0

    @property
    def overprediction_fraction(self) -> float:
        return self.overpredictions / self.baseline_misses if self.baseline_misses else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "level": self.level,
            "coverage": self.coverage,
            "uncovered": self.uncovered_fraction,
            "overpredictions": self.overprediction_fraction,
        }


def coverage_from_result(result: SimulationResult, level: str = "L1", name: str = "") -> CoverageReport:
    """Build a coverage report directly from a prefetching run's own counters.

    The baseline miss count is reconstructed as covered + uncovered, which is
    the paper's own normalisation when a separate baseline run is not
    available.
    """
    level_key = level.upper()
    if level_key == "L1":
        covered = result.l1_read_covered
        uncovered = result.l1_read_misses
        overpredictions = result.l1_overpredictions
    elif level_key in ("L2", "OFFCHIP", "OFF-CHIP"):
        covered = result.l2_read_covered
        uncovered = result.offchip_read_misses
        overpredictions = result.l2_overpredictions
        level_key = "L2"
    else:
        raise ValueError(f"unknown level {level!r}; use 'L1' or 'L2'")
    return CoverageReport(
        name=name or result.name,
        level=level_key,
        baseline_misses=covered + uncovered,
        covered=covered,
        uncovered=uncovered,
        overpredictions=overpredictions,
    )


def compare_coverage(
    baseline: SimulationResult,
    prefetching: SimulationResult,
    level: str = "L1",
    name: str = "",
) -> CoverageReport:
    """Build a coverage report using an explicit no-prefetch baseline run.

    Coverage is the reduction in read misses relative to the baseline run;
    overpredictions come from the prefetching run's unused-prefetch counter.
    """
    level_key = level.upper()
    if level_key == "L1":
        base_misses = baseline.l1_read_misses
        with_misses = prefetching.l1_read_misses
        overpredictions = prefetching.l1_overpredictions
    elif level_key in ("L2", "OFFCHIP", "OFF-CHIP"):
        base_misses = baseline.offchip_read_misses
        with_misses = prefetching.offchip_read_misses
        overpredictions = prefetching.l2_overpredictions
        level_key = "L2"
    else:
        raise ValueError(f"unknown level {level!r}; use 'L1' or 'L2'")
    covered = max(0, base_misses - with_misses)
    return CoverageReport(
        name=name or prefetching.name,
        level=level_key,
        baseline_misses=max(base_misses, 1),
        covered=covered,
        uncovered=with_misses,
        overpredictions=overpredictions,
    )
