"""Trace waterfall: render one recorded span tree as text, SVG, and tables.

``repro.cli trace-report`` is the read side of :mod:`repro.obs.trace`:
given one ``trace-<id>.ndjson`` file (default: the newest one in the
cache's trace directory) it reconstructs the span tree and emits

* ``trace_report.md`` — an indented text waterfall, the critical path,
  a slowest-spans table, and the simulation-time telemetry series;
* ``waterfall.svg`` — one bar per span on a shared timeline, reusing the
  minimal no-dependency SVG style of :mod:`repro.analysis.perf_report`;
* ``telemetry.svg`` — coverage-over-trace-position polylines, when the
  trace carries ``kind == "telemetry"`` records.

Cross-process re-anchoring
--------------------------

Span ``start`` fields are raw :func:`time.perf_counter` readings, which
are only comparable *within* one process — the tracer records no wall
clock anywhere (rule ``DET001``).  The renderer therefore anchors each
process subtree relative to its parent span: when a child span was
recorded by a different pid than its parent, the child subtree keeps its
own internal timing but is shifted so it sits centred inside the parent
span (and never starts before it).  Bars from one process are exact;
alignment *between* processes is presentational, which the report states
up front.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import trace as obs_trace

__all__ = [
    "DEFAULT_OUT_DIR",
    "SpanNode",
    "load_trace",
    "build_tree",
    "critical_path",
    "slowest_spans",
    "render_text_waterfall",
    "render_waterfall_svg",
    "render_telemetry_svg",
    "render_markdown",
    "write_report",
]

#: Default output directory, relative to the repository root.
DEFAULT_OUT_DIR = Path("benchmarks") / "trace_report"

#: Text-waterfall bar width in characters.
TEXT_BAR_WIDTH = 40

SVG_WIDTH = 640
SVG_ROW_HEIGHT = 18
SVG_PAD = 12
SVG_LABEL_WIDTH = 190

#: Bar fill per nesting depth, cycled.
SVG_COLORS = ("#2a6fbb", "#4a8fd0", "#6aafdf", "#8ac4e8", "#a8d4ee")

TELEMETRY_SVG_HEIGHT = 160
TELEMETRY_SERIES = (
    ("l1_coverage", "#2a6fbb"),
    ("l2_coverage", "#bb6f2a"),
    ("l1_overprediction_rate", "#999999"),
)


class SpanNode:
    """One span record plus its children and re-anchored absolute times."""

    __slots__ = ("record", "children", "abs_start", "abs_end")

    def __init__(self, record: dict) -> None:
        self.record = record
        self.children: List["SpanNode"] = []
        self.abs_start = 0.0
        self.abs_end = 0.0

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def duration(self) -> float:
        value = self.record.get("dur", 0.0)
        return float(value) if isinstance(value, (int, float)) else 0.0

    @property
    def pid(self) -> int:
        value = self.record.get("pid", 0)
        return int(value) if isinstance(value, int) else 0

    @property
    def status(self) -> str:
        return str(self.record.get("status", "ok"))

    def walk(self, depth: int = 0):
        """Depth-first ``(node, depth)`` pairs, children in start order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


def load_trace(path: Union[str, Path]) -> Tuple[List[dict], List[dict]]:
    """``(span_records, telemetry_records)`` from one trace ndjson file."""
    records = obs_trace.load_trace_file(Path(path))
    spans = [record for record in records if record.get("kind") == "span"]
    telemetry = [record for record in records if record.get("kind") == "telemetry"]
    return spans, telemetry


def build_tree(spans: Sequence[dict]) -> List[SpanNode]:
    """Span records -> anchored roots (spans with no recorded parent).

    A span whose parent id never reached the file (lost flush, foreign
    process) is promoted to a root rather than dropped, so a damaged
    trace still renders.
    """
    nodes: Dict[str, SpanNode] = {}
    for record in spans:
        span_id = record.get("span")
        if isinstance(span_id, str) and span_id:
            # Last record wins on duplicate ids (re-appended flushes).
            nodes[span_id] = SpanNode(record)
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent_id = node.record.get("parent")
        parent = nodes.get(parent_id) if isinstance(parent_id, str) else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: float(child.record.get("start", 0.0)))
    roots.sort(key=lambda root: float(root.record.get("start", 0.0)))
    for root in roots:
        _anchor(root, offset=-float(root.record.get("start", 0.0)))
    return roots


def _anchor(node: SpanNode, offset: float) -> None:
    """Assign absolute times; re-anchor children recorded by another pid.

    ``offset`` maps this node's process-local clock onto the report
    timeline.  Same-pid children inherit it unchanged (their relative
    timing is exact).  A child from a different process gets a fresh
    offset that centres it inside this span, clamped so it never starts
    before its parent — cross-process alignment is presentational.
    """
    start = float(node.record.get("start", 0.0))
    node.abs_start = start + offset
    node.abs_end = node.abs_start + node.duration
    for child in node.children:
        if child.pid == node.pid:
            _anchor(child, offset)
            continue
        child_start = float(child.record.get("start", 0.0))
        child_center = child_start + child.duration / 2.0
        parent_center = node.abs_start + node.duration / 2.0
        child_offset = parent_center - child_center
        if child_start + child_offset < node.abs_start:
            child_offset = node.abs_start - child_start
        _anchor(child, child_offset)


def critical_path(root: SpanNode) -> List[SpanNode]:
    """Root -> leaf chain through the child finishing last at each level."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.abs_end)
        path.append(node)
    return path


def slowest_spans(roots: Sequence[SpanNode], limit: int = 10) -> List[SpanNode]:
    """The ``limit`` longest spans across all trees, longest first."""
    flat = [node for root in roots for node, _ in root.walk()]
    flat.sort(key=lambda node: (-node.duration, node.name))
    return flat[:limit]


def _extent(roots: Sequence[SpanNode]) -> Tuple[float, float]:
    lo = min(node.abs_start for root in roots for node, _ in root.walk())
    hi = max(node.abs_end for root in roots for node, _ in root.walk())
    return lo, (hi if hi > lo else lo + 1e-9)


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f} ms"


def render_text_waterfall(roots: Sequence[SpanNode]) -> str:
    """An indented tree with aligned duration bars, one line per span."""
    if not roots:
        return "(no spans)"
    lo, hi = _extent(roots)
    span_total = hi - lo
    labels = []
    for root in roots:
        for node, depth in root.walk():
            labels.append("  " * depth + node.name)
    width = max(len(label) for label in labels)
    lines = []
    index = 0
    for root in roots:
        for node, depth in root.walk():
            left = int(TEXT_BAR_WIDTH * (node.abs_start - lo) / span_total)
            filled = int(TEXT_BAR_WIDTH * node.duration / span_total)
            filled = max(filled, 1)
            if left + filled > TEXT_BAR_WIDTH:
                left = TEXT_BAR_WIDTH - filled
            bar = " " * left + "#" * filled + " " * (TEXT_BAR_WIDTH - left - filled)
            marker = " !" if node.status != "ok" else ""
            lines.append(
                f"{labels[index]:<{width}}  |{bar}|  "
                f"{_format_ms(node.duration)} pid={node.pid}{marker}"
            )
            index += 1
    return "\n".join(lines)


def render_waterfall_svg(roots: Sequence[SpanNode]) -> str:
    """One bar per span on a shared timeline (same style as perf_report)."""
    rows = [(node, depth) for root in roots for node, depth in root.walk()]
    height = SVG_PAD * 2 + SVG_ROW_HEIGHT * max(len(rows), 1) + 14
    if not rows:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_WIDTH}" '
            f'height="{height}" viewBox="0 0 {SVG_WIDTH} {height}">\n'
            f'  <text x="{SVG_PAD}" y="{SVG_PAD + 10}" font-size="10" '
            f'font-family="monospace" fill="#333333">empty trace</text>\n</svg>\n'
        )
    lo, hi = _extent(roots)
    span_total = hi - lo
    inner_w = SVG_WIDTH - SVG_LABEL_WIDTH - 2 * SVG_PAD
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_WIDTH}" '
        f'height="{height}" viewBox="0 0 {SVG_WIDTH} {height}">',
        f'  <rect width="{SVG_WIDTH}" height="{height}" fill="#ffffff"/>',
        f'  <text x="{SVG_PAD}" y="{SVG_PAD}" font-size="10" '
        f'font-family="monospace" fill="#333333">span waterfall: '
        f"{html.escape(_format_ms(span_total))} total, {len(rows)} span(s)</text>",
    ]
    for row, (node, depth) in enumerate(rows):
        y = SVG_PAD + 6 + row * SVG_ROW_HEIGHT
        x = SVG_LABEL_WIDTH + SVG_PAD + inner_w * (node.abs_start - lo) / span_total
        w = max(inner_w * node.duration / span_total, 1.0)
        color = "#bb2a2a" if node.status != "ok" else SVG_COLORS[depth % len(SVG_COLORS)]
        label = html.escape("  " * depth + node.name)
        parts.append(
            f'  <text x="{SVG_PAD}" y="{y + 12}" font-size="9" '
            f'font-family="monospace" fill="#333333">{label}</text>'
        )
        parts.append(
            f'  <rect x="{x:.1f}" y="{y + 3}" width="{w:.1f}" '
            f'height="{SVG_ROW_HEIGHT - 6}" fill="{color}">'
            f"<title>{label.strip()}: {html.escape(_format_ms(node.duration))} "
            f"(pid {node.pid})</title></rect>"
        )
    parts.append("</svg>\n")
    return "\n".join(parts)


def _telemetry_samples(telemetry: Sequence[dict]) -> List[dict]:
    samples: List[dict] = []
    for record in telemetry:
        batch = record.get("samples")
        if isinstance(batch, list):
            samples.extend(item for item in batch if isinstance(item, dict))
    samples.sort(key=lambda item: item.get("position", 0))
    return samples


def render_telemetry_svg(telemetry: Sequence[dict]) -> Optional[str]:
    """Coverage/overprediction polylines over trace position, or ``None``."""
    samples = _telemetry_samples(telemetry)
    if len(samples) < 2:
        return None
    positions = [float(item.get("position", 0)) for item in samples]
    lo_x, hi_x = min(positions), max(positions)
    span_x = (hi_x - lo_x) or 1.0
    inner_w = SVG_WIDTH - 2 * SVG_PAD
    inner_h = TELEMETRY_SVG_HEIGHT - 2 * SVG_PAD
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_WIDTH}" '
        f'height="{TELEMETRY_SVG_HEIGHT}" '
        f'viewBox="0 0 {SVG_WIDTH} {TELEMETRY_SVG_HEIGHT}">',
        f'  <rect width="{SVG_WIDTH}" height="{TELEMETRY_SVG_HEIGHT}" fill="#ffffff"/>',
        f'  <text x="{SVG_PAD}" y="{SVG_PAD - 2}" font-size="10" '
        f'font-family="monospace" fill="#333333">telemetry over trace position '
        f"(n={len(samples)}): "
        + ", ".join(name for name, _ in TELEMETRY_SERIES)
        + "</text>",
    ]
    for series_name, color in TELEMETRY_SERIES:
        points = []
        for position, sample in zip(positions, samples):
            value = sample.get(series_name)
            if not isinstance(value, (int, float)):
                continue
            x = SVG_PAD + inner_w * (position - lo_x) / span_x
            y = SVG_PAD + inner_h * (1.0 - min(max(float(value), 0.0), 1.0))
            points.append(f"{x:.1f},{y:.1f}")
        if len(points) >= 2:
            parts.append(
                f'  <polyline fill="none" stroke="{color}" stroke-width="1.5" '
                f'points="{" ".join(points)}"/>'
            )
    parts.append("</svg>\n")
    return "\n".join(parts)


def render_markdown(
    trace_file: Union[str, Path],
    roots: Sequence[SpanNode],
    telemetry: Sequence[dict],
    svg_names: Optional[Dict[str, str]] = None,
) -> str:
    lines = [
        "# Trace report",
        "",
        f"Source: `{Path(trace_file).name}`.",
        "",
    ]
    if not roots:
        lines += ["No spans in this trace file.", ""]
        return "\n".join(lines)
    trace_ids = sorted(
        {str(node.record.get("trace")) for root in roots for node, _ in root.walk()}
    )
    pids = sorted({node.pid for root in roots for node, _ in root.walk()})
    span_count = sum(1 for root in roots for _ in root.walk())
    lines += [
        f"{span_count} span(s) across {len(pids)} process(es) "
        f"(trace {', '.join(f'`{tid}`' for tid in trace_ids)}).",
        "Timing within one process is exact; cross-process bars are",
        "re-anchored inside their parent span (no shared clock is recorded).",
        "",
        "## Waterfall",
        "",
        "```",
        render_text_waterfall(roots),
        "```",
        "",
    ]
    if svg_names:
        for file_name in svg_names.values():
            lines.append(f"![{file_name}]({file_name})")
        lines.append("")
    lines += ["## Critical path", ""]
    for root in roots:
        path = critical_path(root)
        chain = " -> ".join(node.name for node in path)
        lines.append(f"- `{chain}` ({_format_ms(path[0].duration)} at the root)")
    lines += [
        "",
        "## Slowest spans",
        "",
        "| span | duration | pid | status |",
        "| --- | --- | --- | --- |",
    ]
    for node in slowest_spans(roots):
        lines.append(
            f"| `{node.name}` | {_format_ms(node.duration)} "
            f"| {node.pid} | {node.status} |"
        )
    lines.append("")
    samples = _telemetry_samples(telemetry)
    lines += ["## Simulation telemetry", ""]
    if not samples:
        lines += [
            "_No telemetry records (enable with `REPRO_TRACE_TELEMETRY=<N>`)._",
            "",
        ]
    else:
        lines += [
            "| position | accesses | l1 coverage | l2 coverage | overpred | PHT |",
            "| --- | --- | --- | --- | --- | --- |",
        ]
        for sample in samples:
            lines.append(
                f"| {sample.get('position', '-')} | {sample.get('accesses', '-')} "
                f"| {sample.get('l1_coverage', '-')} | {sample.get('l2_coverage', '-')} "
                f"| {sample.get('l1_overprediction_rate', '-')} "
                f"| {sample.get('pht_occupancy', '-')} |"
            )
        lines.append("")
    return "\n".join(lines)


def render_json_report(
    trace_file: Union[str, Path],
    roots: Sequence[SpanNode],
    telemetry: Sequence[dict],
) -> str:
    """Machine-readable summary (the `--json` face of trace-report)."""

    def node_dict(node: SpanNode) -> dict:
        return {
            "name": node.name,
            "span": node.record.get("span"),
            "pid": node.pid,
            "duration": node.duration,
            "status": node.status,
            "children": [node_dict(child) for child in node.children],
        }

    payload = {
        "source": str(trace_file),
        "spans": sum(1 for root in roots for _ in root.walk()),
        "roots": [node_dict(root) for root in roots],
        "critical_paths": [
            [node.name for node in critical_path(root)] for root in roots
        ],
        "telemetry_samples": _telemetry_samples(telemetry),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_report(
    trace_file: Optional[Union[str, Path]] = None,
    out_dir: Optional[Union[str, Path]] = None,
) -> List[Path]:
    """Render the report; returns the paths written (markdown first).

    With no ``trace_file``, the newest ``trace-*.ndjson`` in the cache's
    trace directory is used; :class:`FileNotFoundError` when there is none.
    """
    if trace_file is None:
        candidates = obs_trace.list_trace_files()
        if not candidates:
            raise FileNotFoundError(
                f"no trace files under {obs_trace.trace_dir()} "
                "(record one with REPRO_TRACE=on)"
            )
        trace_file = candidates[-1]
    spans, telemetry = load_trace(trace_file)
    roots = build_tree(spans)
    target = Path(out_dir) if out_dir is not None else DEFAULT_OUT_DIR
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    svg_names: Dict[str, str] = {}
    if roots:
        waterfall_path = target / "waterfall.svg"
        waterfall_path.write_text(render_waterfall_svg(roots))
        svg_names["waterfall"] = waterfall_path.name
        written.append(waterfall_path)
    telemetry_svg = render_telemetry_svg(telemetry)
    if telemetry_svg is not None:
        telemetry_path = target / "telemetry.svg"
        telemetry_path.write_text(telemetry_svg)
        svg_names["telemetry"] = telemetry_path.name
        written.append(telemetry_path)
    report_path = target / "trace_report.md"
    report_path.write_text(render_markdown(trace_file, roots, telemetry, svg_names))
    written.insert(0, report_path)
    return written
