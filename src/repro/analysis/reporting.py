"""Plain-text result tables.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output consistent and readable in pytest's captured
output and in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_percentage(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.583 -> ``"58.3%"``)."""
    return f"{100.0 * value:.{digits}f}%"


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = "") -> str:
    """Render a simple aligned text table."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ResultTable:
    """An accumulating table of experiment rows, printable and exportable."""

    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> List[Cell]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by_key(self, key: Cell, key_column: int = 0) -> Optional[List[Cell]]:
        for row in self.rows:
            if row[key_column] == key:
                return row
        return None

    def to_text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def to_dicts(self) -> List[Dict[str, Cell]]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __str__(self) -> str:
        return self.to_text()
