"""Memory access density (Figure 5) and generation tracking.

Figure 5 breaks down, for each application and cache level, the fraction of
read misses that occur in spatial region generations containing a given
number of missed blocks.  The same generation tracking also yields the
*opportunity* oracle of Figure 4 (one miss per generation), so the tracker
here is shared with :mod:`repro.analysis.opportunity`.

A generation is tracked per (cpu, region) at the L1 (private caches) and per
region at the shared L2; it ends when any block of the region leaves the
tracked cache (replacement or invalidation), matching the paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple

from repro.coherence.multiprocessor import MultiprocessorMemorySystem
from repro.core.region import RegionGeometry
from repro.simulation.config import SimulationConfig
from repro.trace.record import MemoryAccess
from repro.trace.stream import TraceStream, resolve_warmup_count

#: Figure 5's density bins: (label, inclusive lower bound, inclusive upper bound).
DENSITY_BINS: List[Tuple[str, int, int]] = [
    ("1 block", 1, 1),
    ("2-3 blocks", 2, 3),
    ("4-7 blocks", 4, 7),
    ("8-15 blocks", 8, 15),
    ("16-23 blocks", 16, 23),
    ("24-31 blocks", 24, 31),
    ("32 blocks", 32, 10**9),
]


def bin_label_for(count: int) -> str:
    """Return the Figure-5 bin label for a generation with ``count`` missed blocks."""
    for label, low, high in DENSITY_BINS:
        if low <= count <= high:
            return label
    raise ValueError(f"count must be positive, got {count}")


@dataclass
class DensityHistogram:
    """Distribution of misses over generation densities for one cache level."""

    level: str
    region_size: int
    misses_by_bin: Dict[str, int] = field(default_factory=dict)
    generations: int = 0
    total_misses: int = 0

    def record_generation(self, missed_blocks: int) -> None:
        if missed_blocks <= 0:
            return
        label = bin_label_for(missed_blocks)
        self.misses_by_bin[label] = self.misses_by_bin.get(label, 0) + missed_blocks
        self.generations += 1
        self.total_misses += missed_blocks

    def fraction(self, label: str) -> float:
        return self.misses_by_bin.get(label, 0) / self.total_misses if self.total_misses else 0.0

    def fractions(self) -> Dict[str, float]:
        return {label: self.fraction(label) for label, _, _ in DENSITY_BINS}

    def mean_density(self) -> float:
        return self.total_misses / self.generations if self.generations else 0.0

    @property
    def oracle_misses(self) -> int:
        """Misses the Figure-4 oracle would incur: one per generation."""
        return self.generations

    def multi_block_fraction(self) -> float:
        """Fraction of misses in generations with more than one missed block."""
        single = self.misses_by_bin.get("1 block", 0)
        return (self.total_misses - single) / self.total_misses if self.total_misses else 0.0


class GenerationMissTracker:
    """Tracks missed-block footprints of spatial region generations at one level."""

    def __init__(self, level: str, geometry: RegionGeometry, per_cpu: bool) -> None:
        self.level = level
        self.geometry = geometry
        self.per_cpu = per_cpu
        self.histogram = DensityHistogram(level=level, region_size=geometry.region_size)
        self._active: Dict[Tuple[int, int], int] = {}

    def _key(self, cpu: int, address: int) -> Tuple[int, int]:
        region = self.geometry.region_base(address)
        return (cpu if self.per_cpu else 0, region)

    def on_miss(self, cpu: int, address: int) -> None:
        key = self._key(cpu, address)
        offset_bit = 1 << self.geometry.offset(address)
        self._active[key] = self._active.get(key, 0) | offset_bit

    def on_removal(self, cpu: int, block_address: int) -> None:
        key = self._key(cpu, block_address)
        bits = self._active.pop(key, None)
        if bits is not None:
            self.histogram.record_generation(bin(bits).count("1"))

    def close_all(self) -> None:
        for bits in self._active.values():
            self.histogram.record_generation(bin(bits).count("1"))
        self._active.clear()


def measure_density(
    trace: TraceStream,
    config: Optional[SimulationConfig] = None,
    region_size: int = 2048,
    reads_only: bool = True,
    limit: Optional[int] = None,
    warmup_fraction: Optional[float] = None,
) -> Dict[str, DensityHistogram]:
    """Measure L1 and L2 miss-density histograms for ``trace`` (no prefetching).

    The first ``warmup_fraction`` of the trace (defaulting to the simulation
    config's warmup) warms the caches: its misses are not recorded, so the
    histograms and oracle miss counts are directly comparable to a
    measurement-phase miss count from the simulation engine.
    """
    config = config or SimulationConfig()
    if warmup_fraction is None:
        warmup_fraction = config.warmup_fraction
    geometry = RegionGeometry(region_size=region_size, block_size=config.block_size)
    memory = MultiprocessorMemorySystem(
        num_cpus=config.num_cpus,
        block_size=config.block_size,
        l1_capacity=config.l1_capacity,
        l1_associativity=config.l1_associativity,
        l2_capacity=config.l2_capacity,
        l2_associativity=config.l2_associativity,
        replacement=config.replacement,
        classify_false_sharing=False,
        seed=config.seed,
    )
    l1_tracker = GenerationMissTracker("L1", geometry, per_cpu=True)
    l2_tracker = GenerationMissTracker("L2", geometry, per_cpu=False)

    # Forward evictions/invalidations from the caches to the trackers.
    for cpu in range(config.num_cpus):
        memory.l1(cpu).add_eviction_listener(
            lambda evicted, cpu=cpu: l1_tracker.on_removal(cpu, evicted.block_addr)
        )
    memory.l2.add_eviction_listener(lambda evicted: l2_tracker.on_removal(0, evicted.block_addr))

    # Stream the trace single-pass; the warmup boundary comes from a length
    # hint (len / TraceStream.length_hint / total_accesses), never from
    # materializing the stream.
    warmup_count = resolve_warmup_count(trace, fraction=warmup_fraction, limit=limit)
    records = iter(trace)
    if limit is not None:
        records = islice(records, limit)
    for index, record in enumerate(records):
        outcome = memory.access(record)
        if index < warmup_count:
            continue
        if reads_only and not record.is_read:
            continue
        if outcome.l1_miss:
            l1_tracker.on_miss(record.cpu, record.address)
            if outcome.off_chip:
                l2_tracker.on_miss(record.cpu, record.address)

    l1_tracker.close_all()
    l2_tracker.close_all()
    return {"L1": l1_tracker.histogram, "L2": l2_tracker.histogram}
