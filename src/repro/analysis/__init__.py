"""Analysis utilities: coverage metrics, density histograms, opportunity studies,
and plain-text reporting for the benchmark harness."""

from repro.analysis.coverage import CoverageReport, compare_coverage
from repro.analysis.density import DensityHistogram, DENSITY_BINS, measure_density
from repro.analysis.opportunity import OpportunityResult, measure_opportunity
from repro.analysis.reporting import format_table, format_percentage, ResultTable

__all__ = [
    "CoverageReport",
    "compare_coverage",
    "DensityHistogram",
    "DENSITY_BINS",
    "measure_density",
    "OpportunityResult",
    "measure_opportunity",
    "format_table",
    "format_percentage",
    "ResultTable",
]
