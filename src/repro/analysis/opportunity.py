"""Opportunity study (Figure 4).

Figure 4 compares, across block/region sizes from 64 B to the 8 kB OS page:

* the read miss rate of a cache whose *block size* equals the region size
  (holding capacity fixed), with the false-sharing component separated for
  block sizes beyond the 64 B coherence unit; and
* the *opportunity* — the miss rate of an oracle spatial predictor that
  incurs exactly one miss per spatial region generation at that region size
  (with the block size held at 64 B).

Both are reported as misses per instruction, normalised to the 64 B-block,
no-predictor baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.density import measure_density
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.trace.stream import TraceStream


@dataclass
class OpportunityResult:
    """Measurements for one block/region size."""

    size: int
    l1_misses: int = 0
    l2_misses: int = 0
    l1_false_sharing: int = 0
    l2_false_sharing: int = 0
    l1_oracle_misses: int = 0
    l2_oracle_misses: int = 0
    instructions: int = 1

    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.instructions

    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.instructions

    def l1_oracle_rate(self) -> float:
        return self.l1_oracle_misses / self.instructions

    def l2_oracle_rate(self) -> float:
        return self.l2_oracle_misses / self.instructions


def measure_block_size_miss_rate(
    trace: TraceStream,
    config: SimulationConfig,
    block_size: int,
    limit: Optional[int] = None,
) -> SimulationResult:
    """Simulate the baseline hierarchy with ``block_size`` blocks (no prefetching)."""
    sized = config.with_block_size(block_size)
    engine = SimulationEngine(config=sized, name=f"baseline-{block_size}B")
    return engine.run(trace, limit=limit)


def measure_opportunity(
    trace: TraceStream,
    config: Optional[SimulationConfig] = None,
    sizes: Optional[List[int]] = None,
    limit: Optional[int] = None,
) -> Dict[int, OpportunityResult]:
    """Run the Figure-4 study for ``trace`` over ``sizes`` (block = region sizes)."""
    config = config or SimulationConfig()
    sizes = sizes or [64, 128, 512, 2048, 8192]
    results: Dict[int, OpportunityResult] = {}

    for size in sizes:
        baseline = measure_block_size_miss_rate(trace, config, block_size=size, limit=limit)
        density = measure_density(
            trace, config=config, region_size=size, reads_only=True, limit=limit
        )
        results[size] = OpportunityResult(
            size=size,
            l1_misses=baseline.l1_read_misses,
            l2_misses=baseline.offchip_read_misses,
            l1_false_sharing=baseline.false_sharing_misses if size > 64 else 0,
            l2_false_sharing=baseline.false_sharing_misses if size > 64 else 0,
            l1_oracle_misses=density["L1"].oracle_misses,
            l2_oracle_misses=density["L2"].oracle_misses,
            instructions=max(baseline.instructions, 1),
        )
    return results


def normalized_miss_rates(
    results: Dict[int, OpportunityResult],
    baseline_size: int = 64,
) -> Dict[int, Dict[str, float]]:
    """Normalise every size's miss rates to the 64 B baseline (Figure 4's y-axis)."""
    if baseline_size not in results:
        raise ValueError(f"baseline size {baseline_size} missing from results")
    base = results[baseline_size]
    base_l1 = max(base.l1_miss_rate(), 1e-12)
    base_l2 = max(base.l2_miss_rate(), 1e-12)
    normalized = {}
    for size, result in results.items():
        normalized[size] = {
            "l1_miss_rate": result.l1_miss_rate() / base_l1,
            "l2_miss_rate": result.l2_miss_rate() / base_l2,
            "l1_opportunity": result.l1_oracle_rate() / base_l1,
            "l2_opportunity": result.l2_oracle_rate() / base_l2,
            "l1_false_sharing": (result.l1_false_sharing / result.instructions) / base_l1,
            "l2_false_sharing": (result.l2_false_sharing / result.instructions) / base_l2,
        }
    return normalized
