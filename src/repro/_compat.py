"""Version-dependent performance knobs.

``dataclass(slots=True)`` (Python 3.10+) removes the per-instance ``__dict__``
from the small objects allocated on the simulation hot path (cache lines,
access results, outcome records), cutting both memory and attribute-access
cost.  On 3.9 the keyword does not exist, so hot dataclasses take their slots
kwargs from :data:`DATACLASS_SLOTS` and degrade gracefully to plain
dataclasses there.

Usage::

    from repro._compat import DATACLASS_SLOTS

    @dataclass(**DATACLASS_SLOTS)
    class HotObject: ...
"""

from __future__ import annotations

import sys

DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
