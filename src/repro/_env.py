"""The package's sole sanctioned accessor for the process environment.

Ambient ``os.environ`` access is a determinism and fork-safety hazard: a
read makes behaviour depend on invisible state, and an unscoped write from
a library call leaks into every later computation (and into forked
children) long after the caller returned.  This module is the single
choke point — the ``ENV001`` lint rule (:mod:`repro.devtools`) flags
direct ``os.environ`` use everywhere else in the package — with three
deliberate access shapes:

* :func:`read` / :func:`flag` — point reads, for configuration defaults
  resolved at use time (cache directories, feature flags);
* :func:`scoped_env` — set-and-restore for entry points that need to pass
  configuration to spawned/forked workers through inherited environments
  (the CLI's sweep commands), guaranteed not to clobber the caller's
  environment on exit;
* :func:`export` — an explicit process-lifetime write, for worker
  processes configuring *themselves* once after fork (the serve pool),
  where restore would be meaningless.

There is intentionally no general ``write``: a caller either wants the
scoped form or the named export form, and the distinction is what makes
environment mutations auditable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

__all__ = ["read", "flag", "export", "scoped_env"]


def read(name: str, default: Optional[str] = None) -> Optional[str]:
    """The environment variable ``name``, or ``default`` when unset."""
    return os.environ.get(name, default)


def flag(name: str) -> bool:
    """True when ``name`` is set to the literal string ``"1"``."""
    return os.environ.get(name, "") == "1"


def export(name: str, value: str) -> None:
    """Set ``name`` for the rest of this process's lifetime.

    For processes configuring themselves (a forked worker applying its
    :class:`~repro.serve.pool.WorkerSettings`); library code running on
    behalf of a caller should use :func:`scoped_env` instead.
    """
    os.environ[name] = value


@contextmanager
def scoped_env(updates: Mapping[str, Optional[str]]) -> Iterator[None]:
    """Apply environment ``updates`` for the duration of the ``with`` block.

    A value of ``None`` unsets the variable.  On exit — normal or via an
    exception — every touched variable is restored to its previous state,
    including "previously unset", so nested scopes and caller expectations
    compose.  Children spawned or forked *inside* the block inherit the
    updated environment, which is how the CLI hands cache configuration to
    sweep workers regardless of multiprocessing start method.
    """
    previous: Dict[str, Optional[str]] = {
        name: os.environ.get(name) for name in updates
    }
    try:
        for name, value in updates.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, old in previous.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old
