"""Oracle spatial predictor ("opportunity").

Figure 4's *opportunity* bars come from an oracle predictor that incurs only
one miss per spatial region generation: at the trigger access it magically
fetches exactly the blocks that will be accessed during the generation, no
more and no fewer.

Two forms are provided:

* :func:`precompute_generation_footprints` performs the offline pass that
  discovers, for every generation in a trace, which blocks it will touch
  (this is also what :mod:`repro.analysis.opportunity` uses to count oracle
  misses); and
* :class:`OracleSpatialPredictor`, a :class:`~repro.prefetch.base.Prefetcher`
  that replays those footprints at run time so the oracle can be driven
  through the same simulation engine as SMS and GHB.

The footprints are keyed by the per-CPU access ordinal of the trigger access,
so the runtime replay does not depend on the (prefetch-perturbed) cache state.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional, Tuple

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.core.agt import ActiveGenerationTable
from repro.core.pattern import SpatialPattern
from repro.core.region import RegionGeometry
from repro.memory.cache import SetAssociativeCache
from repro.prefetch.base import Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess

# (cpu, per-cpu ordinal of the trigger access) -> (region base, footprint)
FootprintMap = Dict[Tuple[int, int], Tuple[int, SpatialPattern]]


def precompute_generation_footprints(
    trace: Iterable[MemoryAccess],
    geometry: Optional[RegionGeometry] = None,
    num_cpus: int = 16,
    l1_capacity: int = 64 * 1024,
    l1_associativity: int = 2,
) -> FootprintMap:
    """Offline pass discovering every generation's footprint in ``trace``.

    The pass simulates each CPU's private L1 (without any prefetching) and an
    unbounded AGT; when a generation ends, its accumulated pattern is stored
    under the per-CPU ordinal of its trigger access.
    """
    geometry = geometry or RegionGeometry()
    caches = [
        SetAssociativeCache(
            capacity_bytes=l1_capacity,
            block_size=geometry.block_size,
            associativity=l1_associativity,
            name=f"oracle-l1[{cpu}]",
        )
        for cpu in range(num_cpus)
    ]
    agts = [
        ActiveGenerationTable(geometry, filter_entries=None, accumulation_entries=None)
        for _ in range(num_cpus)
    ]
    ordinals = [0] * num_cpus
    # (cpu, region) -> ordinal of the active generation's trigger access
    active_triggers: Dict[Tuple[int, int], int] = {}
    footprints: FootprintMap = {}

    def _complete(cpu: int, record) -> None:
        trigger_ordinal = active_triggers.pop((cpu, record.region), None)
        if trigger_ordinal is None:
            return
        footprints[(cpu, trigger_ordinal)] = (
            record.region,
            record.pattern(geometry.blocks_per_region),
        )

    for access in trace:
        cpu = access.cpu
        if cpu >= num_cpus:
            raise ValueError(f"trace contains cpu {cpu} but only {num_cpus} CPUs were configured")
        ordinal = ordinals[cpu]
        result = caches[cpu].access(access.address, is_write=access.is_write)
        if result.evicted is not None:
            event = agts[cpu].observe_removal(result.evicted.block_addr)
            for completed in event.completed:
                _complete(cpu, completed)
        event = agts[cpu].observe_access(access.pc, access.address)
        for completed in event.completed:
            _complete(cpu, completed)
        if event.is_trigger:
            active_triggers[(cpu, event.trigger.region)] = ordinal
        ordinals[cpu] = ordinal + 1

    for cpu, agt in enumerate(agts):
        for record in agt.drain():
            _complete(cpu, record)
    return footprints


class OracleSpatialPredictor(Prefetcher):
    """Replays precomputed generation footprints as perfect predictions."""

    name = "oracle"
    streams_into_l1 = True

    def __init__(
        self,
        footprints: FootprintMap,
        cpu: int,
        geometry: Optional[RegionGeometry] = None,
    ) -> None:
        super().__init__()
        self.geometry = geometry or RegionGeometry()
        self.cpu = cpu
        self._footprints = footprints
        self._ordinal = 0

    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        key = (self.cpu, self._ordinal)
        self._ordinal += 1
        entry = self._footprints.get(key)
        if entry is None:
            return response
        region, pattern = entry
        trigger_offset = self.geometry.offset(record.address)
        self.stats.pht_lookups += 1
        self.stats.pht_hits += 1
        for offset in pattern.offsets():
            if offset == trigger_offset and self.geometry.region_base(record.address) == region:
                continue
            address = self.geometry.block_at_offset(region, offset)
            response.prefetches.append(PrefetchRequest(address=address, target_l1=True))
            self.stats.predictions += 1
            self.stats.issued += 1
        return response
