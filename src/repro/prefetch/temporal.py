"""Temporal (Markov / pair-correlation) prefetcher.

The paper's related-work section contrasts SMS with predictors that exploit
*temporal* correlation between miss addresses — recurring pairs or sequences
of consecutive misses (Solihin et al. [25], temporal streaming [30]).  This
baseline implements the classic Markov-style pair correlation: a table keyed
by miss address records the next few distinct miss addresses that followed it
last time; on a miss, the recorded successors are prefetched.

Two properties the paper highlights are directly observable with this model:

* its storage requirements are proportional to the *data set* size (one entry
  per miss address), unlike SMS's code-proportional PHT; and
* interleaved spatially-correlated streams look uncorrelated to it, because
  the successor of a given miss changes from visit to visit.

It is used by the extension benchmark ``benchmarks/test_abl_related_work.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.block import block_address
from repro.prefetch.base import Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess


@dataclass
class _CorrelationEntry:
    """Successor miss addresses recorded for one miss address."""

    successors: List[int] = field(default_factory=list)

    def record(self, successor: int, max_successors: int) -> None:
        if successor in self.successors:
            # Move to the front (most recently confirmed successor first).
            self.successors.remove(successor)
        self.successors.insert(0, successor)
        del self.successors[max_successors:]


class TemporalCorrelationPrefetcher(Prefetcher):
    """Markov-style miss-address pair correlation."""

    name = "temporal"
    streams_into_l1 = False

    def __init__(
        self,
        table_entries: int = 16384,
        successors_per_entry: int = 2,
        degree: int = 2,
        block_size: int = 64,
        train_on_l1_misses_only: bool = True,
    ) -> None:
        super().__init__()
        if table_entries <= 0:
            raise ValueError(f"table_entries must be positive, got {table_entries}")
        if successors_per_entry <= 0:
            raise ValueError(f"successors_per_entry must be positive, got {successors_per_entry}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.table_entries = table_entries
        self.successors_per_entry = successors_per_entry
        self.degree = degree
        self.block_size = block_size
        self.train_on_l1_misses_only = train_on_l1_misses_only
        self._table: "OrderedDict[int, _CorrelationEntry]" = OrderedDict()
        self._last_miss: Optional[int] = None

    # ------------------------------------------------------------------ #
    def _entry(self, block: int, create: bool) -> Optional[_CorrelationEntry]:
        entry = self._table.get(block)
        if entry is not None:
            self._table.move_to_end(block)
            return entry
        if not create:
            return None
        if len(self._table) >= self.table_entries:
            self._table.popitem(last=False)
        entry = _CorrelationEntry()
        self._table[block] = entry
        return entry

    @property
    def distinct_addresses_tracked(self) -> int:
        """Number of distinct miss addresses currently holding an entry
        (illustrates the data-set-proportional storage of temporal predictors)."""
        return len(self._table)

    # ------------------------------------------------------------------ #
    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        if self.train_on_l1_misses_only and not outcome.l1_miss:
            return response
        block = block_address(record.address, self.block_size)

        # Train: the previous miss's entry learns this miss as a successor.
        if self._last_miss is not None and self._last_miss != block:
            self._entry(self._last_miss, create=True).record(block, self.successors_per_entry)
        self._last_miss = block

        # Predict: prefetch this miss's recorded successors (breadth-first up
        # to the configured degree).
        entry = self._entry(block, create=False)
        if entry is None:
            return response
        issued = 0
        frontier = list(entry.successors)
        seen = {block}
        while frontier and issued < self.degree:
            successor = frontier.pop(0)
            if successor in seen:
                continue
            seen.add(successor)
            response.prefetches.append(PrefetchRequest(address=successor, target_l1=False))
            self.stats.predictions += 1
            self.stats.issued += 1
            issued += 1
            next_entry = self._table.get(successor)
            if next_entry is not None:
                frontier.extend(next_entry.successors)
        return response
