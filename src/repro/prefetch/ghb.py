"""Global History Buffer prefetcher (PC/DC variant).

Nesbit & Smith's GHB [20] is the strongest previously-proposed prefetcher for
desktop/engineering applications and the comparison point of Figure 11.  The
PC/DC (program counter / delta correlation) variant works as follows:

* A FIFO *global history buffer* holds the most recent miss addresses; each
  entry carries a link to the previous entry created by the same PC, so the
  buffer implicitly stores a per-PC miss-address stream.
* An *index table*, keyed by PC, points at each PC's most recent entry.
* On a trainable access, the per-PC address stream is materialised by walking
  the links, converted into a *delta stream*, and the most recent pair of
  deltas is looked up in the older part of that stream (delta correlation).
  The deltas that followed the previous occurrence of the pair are replayed
  from the current address to form prefetch requests.

Like the paper, we apply GHB at the L2: it trains on accesses that miss in
the L1 (i.e. reach the L2) and its prefetches fill the L2 only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.block import block_address
from repro.prefetch.base import Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess


@dataclass
class GHBConfig:
    """Configuration for the GHB PC/DC prefetcher.

    ``buffer_entries`` of 256 is the size shown sufficient for SPEC
    applications; 16384 roughly matches the storage of the SMS PHT
    (Section 4.6).
    """

    buffer_entries: int = 256
    index_entries: Optional[int] = None  # None: same as buffer_entries
    degree: int = 4
    max_history: int = 64
    block_size: int = 64
    train_on_l1_misses_only: bool = True

    def __post_init__(self) -> None:
        if self.buffer_entries <= 0:
            raise ValueError(f"buffer_entries must be positive, got {self.buffer_entries}")
        if self.degree <= 0:
            raise ValueError(f"degree must be positive, got {self.degree}")
        if self.index_entries is None:
            self.index_entries = self.buffer_entries


@dataclass
class _GHBEntry:
    sequence: int
    block_addr: int
    prev_sequence: Optional[int]


class GlobalHistoryBuffer(Prefetcher):
    """GHB PC/DC prefetcher targeting the L2 cache."""

    name = "ghb-pc/dc"
    streams_into_l1 = False

    def __init__(self, config: Optional[GHBConfig] = None) -> None:
        super().__init__()
        self.config = config or GHBConfig()
        self._buffer: List[Optional[_GHBEntry]] = [None] * self.config.buffer_entries
        self._next_sequence = 0
        self._index: "OrderedDict[int, int]" = OrderedDict()  # pc -> most recent sequence

    # ------------------------------------------------------------------ #
    @property
    def oldest_live_sequence(self) -> int:
        """Sequence number of the oldest entry still resident in the FIFO."""
        return max(0, self._next_sequence - self.config.buffer_entries)

    def _entry_for_sequence(self, sequence: Optional[int]) -> Optional[_GHBEntry]:
        if sequence is None or sequence < self.oldest_live_sequence:
            return None
        entry = self._buffer[sequence % self.config.buffer_entries]
        if entry is None or entry.sequence != sequence:
            return None
        return entry

    def _push(self, pc: int, block_addr: int) -> _GHBEntry:
        prev_sequence = self._index.get(pc)
        entry = _GHBEntry(
            sequence=self._next_sequence,
            block_addr=block_addr,
            prev_sequence=prev_sequence,
        )
        self._buffer[self._next_sequence % self.config.buffer_entries] = entry
        self._index[pc] = self._next_sequence
        self._index.move_to_end(pc)
        if len(self._index) > self.config.index_entries:
            self._index.popitem(last=False)
        self._next_sequence += 1
        return entry

    def _address_history(self, entry: _GHBEntry) -> List[int]:
        """Most-recent-first list of block addresses for this entry's PC."""
        history = []
        current: Optional[_GHBEntry] = entry
        while current is not None and len(history) < self.config.max_history:
            history.append(current.block_addr)
            current = self._entry_for_sequence(current.prev_sequence)
        return history

    @staticmethod
    def _delta_correlation(deltas: List[int], degree: int) -> List[int]:
        """Given an oldest-first delta stream, predict the next ``degree`` deltas.

        Looks for the most recent earlier occurrence of the final delta pair
        and replays the deltas that followed it.
        """
        if len(deltas) < 3:
            return []
        key = (deltas[-2], deltas[-1])
        # Scan from the oldest history for an earlier occurrence of the pair,
        # so the replayed delta run is as long as possible.
        for position in range(0, len(deltas) - 2):
            if (deltas[position], deltas[position + 1]) == key:
                following = deltas[position + 2 : position + 2 + degree]
                return following
        return []

    # ------------------------------------------------------------------ #
    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        if self.config.train_on_l1_misses_only and not outcome.l1_miss:
            return response

        block = block_address(record.address, self.config.block_size)
        entry = self._push(record.pc, block)

        history = self._address_history(entry)
        if len(history) < 3:
            return response
        # history is most-recent-first; build the oldest-first delta stream.
        addresses = list(reversed(history))
        deltas = [
            (addresses[i + 1] - addresses[i]) // self.config.block_size
            for i in range(len(addresses) - 1)
        ]
        predicted = self._delta_correlation(deltas, self.config.degree)
        if not predicted:
            return response

        self.stats.predictions += len(predicted)
        address = block
        for delta in predicted:
            address += delta * self.config.block_size
            if address < 0:
                break
            response.prefetches.append(PrefetchRequest(address=address, target_l1=False))
            self.stats.issued += 1
        return response

    def __repr__(self) -> str:
        return f"GlobalHistoryBuffer(entries={self.config.buffer_entries}, degree={self.config.degree})"
