"""Prefetcher interface.

Every predictor (SMS, GHB, stride, oracle) is driven the same way by the
simulation engine: it observes each demand access together with its cache
outcome, observes evictions/invalidations from the cache it streams into, and
returns the prefetch requests (and, for the decoupled-sectored training
model, forced evictions) the engine should apply.

The engine instantiates one prefetcher per processor, mirroring the paper's
per-core hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.stats import PrefetcherStatistics
from repro.trace.record import MemoryAccess


@dataclass(frozen=True)
class PrefetchRequest:
    """A request to bring one block into the cache hierarchy ahead of demand."""

    address: int
    target_l1: bool = True

    @property
    def target_l2_only(self) -> bool:
        return not self.target_l1


@dataclass
class PrefetcherResponse:
    """What a prefetcher wants the engine to do after one event.

    A response received from another component must be treated as immutable:
    the no-op paths below all return the shared :data:`EMPTY_RESPONSE`
    singleton so the common "nothing to do" case allocates nothing.
    Prefetchers that do have work construct (and may mutate) their own
    instances.
    """

    prefetches: List[PrefetchRequest] = field(default_factory=list)
    forced_evictions: List[int] = field(default_factory=list)

    def merge(self, other: "PrefetcherResponse") -> "PrefetcherResponse":
        return PrefetcherResponse(
            prefetches=self.prefetches + other.prefetches,
            forced_evictions=self.forced_evictions + other.forced_evictions,
        )

    @property
    def is_empty(self) -> bool:
        return not self.prefetches and not self.forced_evictions


#: Shared empty response for the allocation-free "nothing to do" fast path.
EMPTY_RESPONSE = PrefetcherResponse()


class Prefetcher:
    """Base class for all predictors."""

    name = "base"
    #: Whether this prefetcher's fills target the L1 (True) or only the L2.
    streams_into_l1 = True

    def __init__(self) -> None:
        self.stats = PrefetcherStatistics()

    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        """Observe a demand access (with its memory-system outcome)."""
        raise NotImplementedError

    def on_eviction(self, block_address: int, invalidated: bool) -> PrefetcherResponse:
        """Observe a block leaving the cache level this prefetcher trains on."""
        return EMPTY_RESPONSE

    def lane_hook(self):
        """Per-access callable for the engine's lane fast path, or ``None``.

        A prefetcher that can observe demand accesses without a boxed record
        returns ``fn(pc, address) -> Optional[List[int]]`` — the byte
        addresses it wants prefetched, or ``None`` when there is nothing to
        issue.  Its effects must be bit-identical to :meth:`on_access` for
        accesses that never force evictions.  Returning ``None`` here (the
        default) makes the engine fall back to the boxed reference path.
        """
        return None

    def lane_eviction_hook(self):
        """Per-eviction callable for the lane fast path, or ``None``.

        A prefetcher that can observe a (non-invalidation) eviction without
        issuing prefetches or forced evictions returns ``fn(block_address) ->
        None``; its effects must be bit-identical to
        ``on_eviction(block_address, invalidated=False)``.  Returning ``None``
        (the default) makes the engine call :meth:`on_eviction` and apply the
        response generically.
        """
        return None

    def finalize(self) -> PrefetcherResponse:
        """Called once at end of trace; flush any internal training state."""
        return EMPTY_RESPONSE

    def reset_stats(self) -> None:
        self.stats = PrefetcherStatistics()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (the baseline system)."""

    name = "none"

    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        return EMPTY_RESPONSE
