"""Prefetchers.

This package defines the prefetcher interface shared by SMS and every
baseline, plus the baselines themselves:

* :class:`~repro.prefetch.ghb.GlobalHistoryBuffer` — the GHB PC/DC prefetcher
  the paper compares against (Figure 11);
* :class:`~repro.prefetch.stride.StridePrefetcher` — a classic per-PC stride
  prefetcher (reference point / extension ablation);
* :class:`~repro.prefetch.oracle.OracleSpatialPredictor` — the "opportunity"
  oracle of Figure 4 that incurs exactly one miss per spatial region
  generation;
* :class:`~repro.prefetch.nextline.NextLinePrefetcher` — trivial sequential
  prefetcher used as a sanity baseline;
* :class:`~repro.prefetch.temporal.TemporalCorrelationPrefetcher` — a
  Markov-style miss-pair correlation predictor representing the temporal
  correlation approaches of the related-work section.
"""

from repro.prefetch.base import NullPrefetcher, Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.prefetch.ghb import GHBConfig, GlobalHistoryBuffer
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.oracle import OracleSpatialPredictor
from repro.prefetch.temporal import TemporalCorrelationPrefetcher

__all__ = [
    "Prefetcher",
    "PrefetcherResponse",
    "PrefetchRequest",
    "NullPrefetcher",
    "GlobalHistoryBuffer",
    "GHBConfig",
    "StridePrefetcher",
    "NextLinePrefetcher",
    "OracleSpatialPredictor",
    "TemporalCorrelationPrefetcher",
]
