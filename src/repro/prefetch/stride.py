"""Per-PC stride prefetcher.

A classic reference-prediction-table stride prefetcher [24]: each load PC
tracks its last address, last stride, and a two-bit confidence counter; once
the stride is confirmed the prefetcher issues ``degree`` prefetches ahead of
the current address.  Used as an extension baseline (the paper's introduction
notes simple stride prefetching captures dense array traversals but not the
irregular spatial correlation of commercial workloads).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.block import block_address
from repro.prefetch.base import Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess


@dataclass
class _StrideEntry:
    last_address: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """Reference prediction table stride prefetcher."""

    name = "stride"
    streams_into_l1 = True

    def __init__(
        self,
        table_entries: int = 256,
        degree: int = 4,
        block_size: int = 64,
        confidence_threshold: int = 2,
        train_on_l1_misses_only: bool = False,
    ) -> None:
        super().__init__()
        if table_entries <= 0:
            raise ValueError(f"table_entries must be positive, got {table_entries}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.table_entries = table_entries
        self.degree = degree
        self.block_size = block_size
        self.confidence_threshold = confidence_threshold
        self.train_on_l1_misses_only = train_on_l1_misses_only
        self._table: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    def _entry(self, pc: int) -> Optional[_StrideEntry]:
        entry = self._table.get(pc)
        if entry is not None:
            self._table.move_to_end(pc)
        return entry

    def _allocate(self, pc: int, address: int) -> _StrideEntry:
        if len(self._table) >= self.table_entries:
            self._table.popitem(last=False)
        entry = _StrideEntry(last_address=address)
        self._table[pc] = entry
        return entry

    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        if self.train_on_l1_misses_only and not outcome.l1_miss:
            return response
        entry = self._entry(record.pc)
        if entry is None:
            self._allocate(record.pc, record.address)
            return response

        new_stride = record.address - entry.last_address
        if new_stride == 0:
            return response
        if new_stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            if entry.confidence == 0:
                entry.stride = new_stride
        entry.last_address = record.address

        if entry.confidence >= self.confidence_threshold and entry.stride != 0:
            self.stats.predictions += self.degree
            address = record.address
            for _ in range(self.degree):
                address += entry.stride
                if address < 0:
                    break
                block = block_address(address, self.block_size)
                response.prefetches.append(PrefetchRequest(address=block, target_l1=True))
                self.stats.issued += 1
        return response
