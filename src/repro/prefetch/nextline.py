"""Next-line (sequential) prefetcher.

The simplest possible spatial prefetcher: on a demand miss, fetch the next
``degree`` sequential cache blocks.  Used as a sanity baseline in the
extension benches — it captures dense sequential scans but wastes bandwidth
on sparse, irregular footprints.
"""

from __future__ import annotations

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.block import block_address
from repro.prefetch.base import Prefetcher, PrefetcherResponse, PrefetchRequest
from repro.trace.record import MemoryAccess


class NextLinePrefetcher(Prefetcher):
    """Fetch the next ``degree`` sequential blocks on every demand miss."""

    name = "next-line"
    streams_into_l1 = True

    def __init__(self, degree: int = 1, block_size: int = 64, on_miss_only: bool = True) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.degree = degree
        self.block_size = block_size
        self.on_miss_only = on_miss_only

    def on_access(self, record: MemoryAccess, outcome: AccessOutcomeRecord) -> PrefetcherResponse:
        response = PrefetcherResponse()
        if self.on_miss_only and not outcome.l1_miss:
            return response
        block = block_address(record.address, self.block_size)
        self.stats.predictions += self.degree
        for step in range(1, self.degree + 1):
            response.prefetches.append(
                PrefetchRequest(address=block + step * self.block_size, target_l1=True)
            )
            self.stats.issued += 1
        return response
