"""Command-line interface.

Three subcommands cover the common workflows without writing any Python:

``simulate``
    Run one workload under a chosen prefetcher and print miss/coverage
    statistics and the estimated speedup over the no-prefetch baseline::

        python -m repro.cli simulate --workload oltp-db2 --prefetcher sms

``trace``
    Generate a synthetic workload trace and write it to a text trace file
    (readable by :func:`repro.trace.reader.read_trace`)::

        python -m repro.cli trace --workload sparse --output sparse.trace

``experiment``
    Regenerate one of the paper's figures/tables and print its rows.  Sweeps
    fan out over ``--workers`` processes, and per-task results are memoized
    in an on-disk cache (disable with ``--no-cache``) so repeated sweeps
    over the same configuration are nearly free::

        python -m repro.cli experiment --figure fig11 --scale 0.3

``convert``
    Convert a trace between the text and binary (``.strc``) formats, in
    either direction — the target format follows the output file name::

        python -m repro.cli convert --input sparse.trace --output sparse.strc.gz

``serve`` / ``submit``
    Run the persistent simulation service (warm worker pool, request
    coalescing — see :mod:`repro.serve`) and talk to it; ``--http PORT``
    attaches the observability gateway (``GET /metrics``, ``/healthz``,
    ``/status`` — see :mod:`repro.obs.gateway`)::

        python -m repro.cli serve --socket /tmp/repro.sock --workers 4 --http 9100
        python -m repro.cli submit --socket /tmp/repro.sock \
            --verb simulate --arg workload=oltp-db2 --arg cpus=2

``cache``
    Inspect or prune the on-disk sweep-result and trace caches::

        python -m repro.cli cache stats
        python -m repro.cli cache prune

``lint``
    Run the determinism/hot-path/fork-safety static analyzer
    (:mod:`repro.devtools`) over the package (or given paths)::

        python -m repro.cli lint
        python -m repro.cli lint src/repro --format json

``perf-report``
    Render the perf observatory: benchmark-history trend tables and SVG
    charts, optionally folding in a live ``/metrics`` snapshot
    (:mod:`repro.analysis.perf_report`)::

        python -m repro.cli perf-report \
            --metrics http://localhost:9100/metrics?format=json

``trace-report``
    Render one recorded span tree (``REPRO_TRACE=on``) as a text + SVG
    waterfall with critical path, slow-span table, and simulation-time
    telemetry (:mod:`repro.analysis.trace_report`)::

        python -m repro.cli trace-report            # newest trace file
        python -m repro.cli trace-report --json     # machine-readable tree
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.coverage import coverage_from_result
from repro.analysis.reporting import ResultTable, format_percentage
from repro.core import SMSConfig, SpatialMemoryStreaming
from repro.prefetch import (
    GHBConfig,
    GlobalHistoryBuffer,
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    TemporalCorrelationPrefetcher,
)
from repro.simulation import SimulationConfig, SimulationEngine, TimingModel
from repro.trace.reader import write_trace
from repro.workloads.suite import APPLICATION_NAMES, make_workload

#: Prefetcher factories selectable from the command line.  ``sms`` accepts
#: the PHT backend/shard overrides so there is one construction site.
PREFETCHER_CHOICES: Dict[str, Callable[..., Callable[[int], object]]] = {
    "none": lambda: (lambda cpu: NullPrefetcher()),
    "sms": lambda pht_backend="dict", pht_shards=1: (
        lambda cpu: SpatialMemoryStreaming(
            SMSConfig.paper_practical().replace(
                pht_backend=pht_backend, pht_shards=pht_shards
            )
        )
    ),
    "ghb": lambda: (lambda cpu: GlobalHistoryBuffer(GHBConfig(buffer_entries=256))),
    "ghb-16k": lambda: (lambda cpu: GlobalHistoryBuffer(GHBConfig(buffer_entries=16384))),
    "stride": lambda: (lambda cpu: StridePrefetcher(degree=4)),
    "next-line": lambda: (lambda cpu: NextLinePrefetcher(degree=1)),
    "temporal": lambda: (lambda cpu: TemporalCorrelationPrefetcher()),
}

#: Experiment runners selectable from the command line.
EXPERIMENT_CHOICES = [
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "tab01",
]


def _nonnegative_int(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {workers}")
    return workers


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {parsed}")
    return parsed


def _add_pht_backend_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.core.pht import PHT_BACKENDS

    parser.add_argument(
        "--pht-backend",
        choices=PHT_BACKENDS,
        default="dict",
        help="PHT storage backend (dict: boxed reference; array/mmap: packed slabs)",
    )
    parser.add_argument(
        "--pht-shards",
        type=_positive_int,
        default=1,
        help="partition the PHT sets across N backend shards",
    )


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial Memory Streaming (ISCA 2006) reproduction tools",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="run one workload under a prefetcher")
    source = simulate.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=APPLICATION_NAMES)
    source.add_argument("--trace", metavar="PATH",
                        help="simulate a trace file (text or .strc) instead of a "
                             "generated workload; binary traces take the lane fast path")
    simulate.add_argument("--prefetcher", choices=sorted(PREFETCHER_CHOICES), default="sms")
    simulate.add_argument("--cpus", type=int, default=4)
    simulate.add_argument("--accesses-per-cpu", type=int, default=10_000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--no-lanes", action="store_true",
                        help="force the per-record reference path even where the "
                             "lane fast path would apply (also: REPRO_ENGINE_LANES=0)")
    _add_pht_backend_arguments(simulate)

    trace = subparsers.add_parser("trace", help="generate a workload trace file")
    trace.add_argument("--workload", choices=APPLICATION_NAMES, required=True)
    trace.add_argument("--output", required=True)
    trace.add_argument("--cpus", type=int, default=4)
    trace.add_argument("--accesses-per-cpu", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=1)

    experiment = subparsers.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument("--figure", choices=EXPERIMENT_CHOICES, required=True)
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--cpus", type=int, default=4)
    experiment.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=None,
        help="fan the sweep out over N worker processes (default: serial)",
    )
    experiment.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep task instead of reusing cached results",
    )
    experiment.add_argument(
        "--cache-dir",
        default=None,
        help="sweep result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-sms)",
    )
    experiment.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="regenerate synthetic traces instead of replaying cached .strc files",
    )
    experiment.add_argument(
        "--resume",
        action="store_true",
        help="journal per-point completions and resume an interrupted sweep, "
        "re-executing only the missing points",
    )
    experiment.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=None,
        help="re-execute a failing sweep point up to N times with exponential "
        "backoff (default: $REPRO_SWEEP_RETRIES or 0)",
    )
    _add_pht_backend_arguments(experiment)

    convert = subparsers.add_parser(
        "convert", help="convert a trace between the text and binary formats"
    )
    convert.add_argument("--input", required=True, help="source trace (text or binary)")
    convert.add_argument(
        "--output",
        required=True,
        help="destination trace; .strc/.strc.gz selects the binary format",
    )

    serve = subparsers.add_parser(
        "serve", help="run the persistent simulation service (see repro.serve)"
    )
    _add_endpoint_arguments(serve)
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="persistent worker processes kept warm between requests",
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=8,
        help="distinct in-flight jobs before requests get 'busy' replies",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="sweep/trace cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-sms)",
    )
    serve.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="regenerate synthetic traces in workers instead of replaying cached .strc files",
    )
    serve.add_argument(
        "--scratch-dir",
        default=None,
        help="root for per-worker PHT mmap backing files (default: system temp)",
    )
    serve.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        help="retry a job whose worker crashed or timed out up to N times "
        "before reporting the failure",
    )
    serve.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task deadline in seconds; a job past it gets its worker "
        "killed and is retried/reported as 504 (default: no deadline)",
    )
    serve.add_argument(
        "--quarantine-after",
        type=_positive_int,
        default=3,
        help="quarantine a job as a poison task (422, no more retries) after "
        "it kills or wedges workers this many times",
    )
    serve.add_argument(
        "--http",
        type=_nonnegative_int,
        default=None,
        metavar="PORT",
        help="also serve the HTTP observability gateway on this port "
        "(GET /metrics, /healthz, /status; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="bind address for the HTTP gateway (default: loopback only)",
    )

    submit = subparsers.add_parser(
        "submit", help="send one request to a running service and print the reply"
    )
    _add_endpoint_arguments(submit)
    submit.add_argument(
        "--verb",
        choices=["simulate", "sweep", "experiment", "status", "cache_stats"],
        help="request verb (or pass a full request with --request)",
    )
    submit.add_argument(
        "--arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="request parameter; VALUE is parsed as JSON when possible "
        "(repeatable, e.g. --arg workload=oltp-db2 --arg cpus=2)",
    )
    submit.add_argument(
        "--request", default=None, help="raw JSON request object (overrides --verb/--arg)"
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="per-request socket timeout (seconds)"
    )
    submit.add_argument(
        "--retry-for",
        type=float,
        default=0.0,
        help="keep retrying the initial connection for this many seconds",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or prune the on-disk sweep/trace caches"
    )
    cache.add_argument("action", choices=["stats", "prune"])
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-sms)",
    )
    cache.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of a table"
    )

    perf_report = subparsers.add_parser(
        "perf-report",
        help="render the benchmark-history trend report "
        "(see repro.analysis.perf_report)",
    )
    perf_report.add_argument(
        "--history",
        default=None,
        help="benchmark history JSONL (default: benchmarks/BENCH_history.jsonl)",
    )
    perf_report.add_argument(
        "--metrics",
        default=None,
        help="live metrics snapshot to fold in: a JSON file saved from "
        "/metrics?format=json, or an http:// URL scraped directly",
    )
    perf_report.add_argument(
        "--out",
        default=None,
        help="output directory for perf_report.md and the SVG charts "
        "(default: benchmarks/perf_report)",
    )
    perf_report.add_argument(
        "--json",
        action="store_true",
        help="print the latest/median/delta summary as JSON to stdout "
        "instead of writing report files",
    )

    trace_report = subparsers.add_parser(
        "trace-report",
        help="render one recorded span tree as a waterfall "
        "(see repro.analysis.trace_report)",
    )
    trace_report.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace ndjson file (default: the newest trace-*.ndjson in the "
        "cache trace directory)",
    )
    trace_report.add_argument(
        "--out",
        default=None,
        help="output directory for trace_report.md and the SVGs "
        "(default: benchmarks/trace_report)",
    )
    trace_report.add_argument(
        "--json",
        action="store_true",
        help="print the span tree and telemetry as JSON to stdout "
        "instead of writing report files",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the determinism/hot-path static analyzer (see repro.devtools)",
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories (default: the repro package)"
    )
    lint.add_argument("--format", choices=["human", "json"], default="human")
    lint.add_argument("--baseline", default=None, help="baseline file of grandfathered findings")
    lint.add_argument(
        "--write-baseline", action="store_true", help="record current findings as the baseline"
    )
    lint.add_argument("--select", default=None, help="comma-separated rule IDs/families to run")
    lint.add_argument("--ignore", default=None, help="comma-separated rule IDs/families to skip")
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalog")

    return parser


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", default=None, help="Unix socket path (overrides --host/--port)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_nonnegative_int, default=8642)


# --------------------------------------------------------------------------- #
def _command_simulate(args: argparse.Namespace) -> int:
    lanes = False if args.no_lanes else None
    if args.trace:
        from repro.trace.reader import stream_trace

        # Trace files and generated workloads are both replayable streams;
        # the engine runs them identically (binary traces additionally decode
        # straight into integer lanes unless --no-lanes).
        workload = stream_trace(args.trace)
        metadata = None
        source = workload.name
    else:
        workload = make_workload(
            args.workload,
            num_cpus=args.cpus,
            accesses_per_cpu=args.accesses_per_cpu,
            seed=args.seed,
        )
        metadata = workload.metadata
        source = args.workload
    config = SimulationConfig.small(num_cpus=args.cpus)

    # The workload is a replayable stream: each run regenerates (or re-reads)
    # it lazily, so arbitrarily long traces are simulated without ever
    # materializing them.
    baseline = SimulationEngine(config, name="baseline").run(workload, lanes=lanes)
    baseline.workload = metadata
    if args.prefetcher == "sms":
        factory = PREFETCHER_CHOICES["sms"](args.pht_backend, args.pht_shards)
    else:
        factory = PREFETCHER_CHOICES[args.prefetcher]()
    engine = SimulationEngine(config, factory, name=args.prefetcher)
    result = engine.run(workload, lanes=lanes)
    result.workload = metadata

    table = ResultTable(
        title=(
            f"{source} under {args.prefetcher} "
            f"({result.accesses} accesses, {args.cpus} CPUs)"
        ),
        headers=["metric", "value"],
    )
    table.add_row("baseline L1 read misses", baseline.l1_read_misses)
    table.add_row("L1 read misses", result.l1_read_misses)
    table.add_row("baseline off-chip read misses", baseline.offchip_read_misses)
    table.add_row("off-chip read misses", result.offchip_read_misses)
    l1 = coverage_from_result(result, level="L1")
    l2 = coverage_from_result(result, level="L2")
    table.add_row("L1 coverage", format_percentage(l1.coverage))
    table.add_row("off-chip coverage", format_percentage(l2.coverage))
    table.add_row("overpredictions", format_percentage(l1.overprediction_fraction))
    speedup = TimingModel().speedup(baseline, result, metadata)
    table.add_row("estimated speedup", f"{speedup:.2f}x")
    print(table.to_text())
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    workload = make_workload(
        args.workload, num_cpus=args.cpus, accesses_per_cpu=args.accesses_per_cpu, seed=args.seed
    )
    count = write_trace(args.output, workload)
    print(f"wrote {count} accesses to {args.output}")
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    import os
    import time
    from pathlib import Path

    from repro.trace.reader import stream_trace

    if Path(args.input).resolve() == Path(args.output).resolve():
        # write_trace truncates the output before the lazy reader ever runs,
        # so converting in place would destroy the source.
        print("error: --input and --output are the same file", file=sys.stderr)
        return 1
    out_path = Path(args.output)
    # Convert into a sibling temp file and move it into place only on
    # success, so a missing input or a malformed record mid-file never
    # destroys an existing output trace.  The temp name keeps the output's
    # suffixes (prefixed stem) so format/gzip detection is unchanged.
    tmp_path = out_path.with_name(f".tmp-{out_path.name}")
    start = time.perf_counter()  # repro: ignore[OBS002] -- the numeric delta feeds the user-facing records/s display, not a metric
    try:
        count = write_trace(tmp_path, stream_trace(args.input))
        os.replace(tmp_path, out_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    elapsed = time.perf_counter() - start
    in_size = Path(args.input).stat().st_size
    out_size = out_path.stat().st_size
    rate = count / elapsed if elapsed > 0 else float("inf")
    print(
        f"converted {count} records in {elapsed:.2f}s ({rate:,.0f} records/s): "
        f"{args.input} ({in_size:,} B) -> {args.output} ({out_size:,} B)"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fig04_block_size,
        fig05_density,
        fig06_indexing,
        fig07_pht_storage,
        fig08_training,
        fig09_training_storage,
        fig10_region_size,
        fig11_ghb,
        fig12_speedup,
        fig13_breakdown,
        tab01_config,
    )

    modules = {
        "fig04": fig04_block_size,
        "fig05": fig05_density,
        "fig06": fig06_indexing,
        "fig07": fig07_pht_storage,
        "fig08": fig08_training,
        "fig09": fig09_training_storage,
        "fig10": fig10_region_size,
        "fig11": fig11_ghb,
        "fig12": fig12_speedup,
        "fig13": fig13_breakdown,
    }
    # --pht-backend/--pht-shards select the PHT storage the two storage
    # sweeps run on; the other figures use the config default.
    pht_kwargs = {}
    if args.figure in ("fig07", "fig09"):
        pht_kwargs = {"backend": args.pht_backend, "pht_shards": args.pht_shards}
    elif args.pht_backend != "dict" or args.pht_shards != 1:
        print(
            "note: --pht-backend/--pht-shards only affect fig07 and fig09; ignoring",
            file=sys.stderr,
        )
    runners = {
        figure: (
            lambda module=module: module.run(
                scale=args.scale, num_cpus=args.cpus, workers=args.workers, **pht_kwargs
            )
        )
        for figure, module in modules.items()
    }
    if args.figure == "tab01":
        system, applications = tab01_config.run()
        print(system.to_text())
        print()
        print(applications.to_text())
        return 0

    from repro._env import scoped_env
    from repro.experiments import common as experiments_common
    from repro.simulation.result_cache import CACHE_DIR_ENV, SweepResultCache, set_default_cache
    from repro.simulation.sweep import (
        SWEEP_RESUME_ENV,
        SWEEP_RETRIES_ENV,
        SweepPolicy,
        default_policy,
        last_sweep_report,
        set_default_policy,
    )

    if args.resume and args.no_cache:
        print("error: --resume needs the result cache (drop --no-cache)", file=sys.stderr)
        return 1
    cache = None if args.no_cache else SweepResultCache(directory=args.cache_dir)
    previous = set_default_cache(cache)
    # Fault-tolerance policy for every sweep the figure runner performs:
    # flags override, the environment (REPRO_SWEEP_RESUME/RETRIES) fills in.
    base_policy = default_policy()
    policy = SweepPolicy(
        max_retries=base_policy.max_retries if args.max_retries is None else args.max_retries,
        backoff_base=base_policy.backoff_base,
        point_timeout=base_policy.point_timeout,
        partial=base_policy.partial,
        journal=base_policy.journal or args.resume,
    )
    previous_policy = set_default_policy(policy)
    # Trace caching is on by default for CLI sweeps (--no-trace-cache to
    # disable).  Both the enable flag and --cache-dir are also exported via
    # the (scoped, restored-on-exit) environment: the in-process override
    # does not survive into spawn/forkserver sweep workers, but inherited
    # environments do, so workers replay cached .strc traces regardless of
    # start method.
    previous_trace = experiments_common.set_trace_cache(not args.no_trace_cache)
    env_updates = {
        experiments_common.TRACE_CACHE_ENV: "0" if args.no_trace_cache else "1",
    }
    if args.cache_dir:
        env_updates[CACHE_DIR_ENV] = str(args.cache_dir)
    if policy.journal:
        env_updates[SWEEP_RESUME_ENV] = "1"
    if policy.max_retries:
        env_updates[SWEEP_RETRIES_ENV] = str(policy.max_retries)
    try:
        with scoped_env(env_updates):
            table = runners[args.figure]()
    finally:
        set_default_cache(previous)
        set_default_policy(previous_policy)
        experiments_common.set_trace_cache(previous_trace)
    print(table.to_text())
    if cache is not None:
        stats = cache.stats
        print(
            f"sweep cache: {stats.hits} hit(s), {stats.misses} miss(es), "
            f"{stats.stores} stored ({cache.directory})"
        )
    report = last_sweep_report()
    if args.resume and report is not None:
        print(
            f"resume: {report['resumed']} of {report['cached']} reused point(s) "
            f"journaled by an earlier run; {report['executed']} executed, "
            f"{report['failed']} failed, {report['retries']} retr(y/ies)"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import SimulationServer, WorkerPool
    from repro.simulation.result_cache import SweepResultCache

    pool = WorkerPool(
        workers=args.workers,
        cache_dir=args.cache_dir,
        trace_cache=not args.no_trace_cache,
        scratch_dir=args.scratch_dir,
    )
    server = SimulationServer(
        pool,
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        max_queue=args.max_queue,
        cache=SweepResultCache(directory=args.cache_dir),
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        quarantine_after=args.quarantine_after,
        http_host=args.http_host,
        http_port=args.http,
    )
    http_note = (
        f", http gateway on {args.http_host}:{args.http}" if args.http is not None else ""
    )
    print(
        f"repro serve: listening on {server.address} "
        f"({args.workers} worker(s), max_queue={args.max_queue}, "
        f"cache {server.cache.directory}{http_note})",
        flush=True,
    )
    server.run()
    print("repro serve: shut down cleanly")
    return 0


def _parse_submit_args(pairs: List[str]) -> dict:
    import json

    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--arg expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value  # bare strings need no quoting
    return params


def _command_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient, ServeError

    if args.request is not None:
        try:
            payload = json.loads(args.request)
        except json.JSONDecodeError as exc:
            print(f"error: --request is not valid JSON: {exc}", file=sys.stderr)
            return 1
        if not isinstance(payload, dict):
            print("error: --request must be a JSON object", file=sys.stderr)
            return 1
    elif args.verb is not None:
        try:
            payload = {"verb": args.verb, **_parse_submit_args(args.arg)}
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        print("error: pass --verb or --request", file=sys.stderr)
        return 1

    import time

    from repro.serve.protocol import BUSY

    client = ServeClient(
        socket_path=args.socket, host=args.host, port=args.port, timeout=args.timeout
    )
    try:
        deadline = time.monotonic() + args.retry_for
        client.connect(retry_for=args.retry_for)
        try:
            # A busy (429) reply is explicit backpressure: retry with capped
            # exponential backoff while the --retry-for budget lasts, the
            # same budget that covered the initial connection race.
            delay = 0.05
            while True:
                reply = client.request_raw(payload)
                if reply.get("ok") or reply.get("code") != BUSY:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(delay, 2.0, remaining))
                delay = min(delay * 2, 2.0)
        finally:
            client.close()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def _command_cache(args: argparse.Namespace) -> int:
    import json

    from repro.simulation.result_cache import cache_overview, prune_cache

    if args.action == "stats":
        overview = cache_overview(args.cache_dir)
        if args.json:
            print(json.dumps(overview, indent=2, sort_keys=True))
            return 0
        table = ResultTable(
            title=f"cache statistics ({overview['directory']})",
            headers=["cache", "entries", "bytes", "stale_entries", "stale_bytes", "temp_files"],
        )
        for name in ("sweep", "traces"):
            section = overview[name]
            table.add_row(
                name,
                section["entries"],
                section["bytes"],
                section["stale_entries"],
                section["stale_bytes"],
                section["temp_files"],
            )
        print(table.to_text())
        return 0
    removed = prune_cache(args.cache_dir)
    if args.json:
        print(json.dumps(removed, indent=2, sort_keys=True))
        return 0
    print(
        f"pruned {removed['sweep_entries']} stale sweep entr(ies), "
        f"{removed['trace_entries']} stale trace(s), "
        f"{removed['temp_files']} temp file(s)"
    )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.devtools import lint as lint_module

    forwarded: List[str] = list(args.paths)
    forwarded += ["--format", args.format]
    if args.baseline is not None:
        forwarded += ["--baseline", args.baseline]
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.select is not None:
        forwarded += ["--select", args.select]
    if args.ignore is not None:
        forwarded += ["--ignore", args.ignore]
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_module.main(forwarded)


def _command_perf_report(args: argparse.Namespace) -> int:
    from repro.analysis import perf_report

    try:
        if args.json:
            entries = perf_report.load_history(
                args.history if args.history is not None else perf_report.DEFAULT_HISTORY
            )
            snapshot = (
                perf_report.load_metrics_snapshot(args.metrics) if args.metrics else None
            )
            print(perf_report.render_json(entries, snapshot))
            return 0
        paths = perf_report.write_report(
            history_path=args.history, metrics_source=args.metrics, out_dir=args.out
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for path in paths:
        print(f"wrote {path}")
    return 0


def _command_trace_report(args: argparse.Namespace) -> int:
    from repro.analysis import trace_report

    try:
        if args.json:
            from repro.obs import trace as obs_trace

            source = args.trace
            if source is None:
                candidates = obs_trace.list_trace_files()
                if not candidates:
                    raise FileNotFoundError(
                        f"no trace files under {obs_trace.trace_dir()} "
                        "(record one with REPRO_TRACE=on)"
                    )
                source = candidates[-1]
            spans, telemetry = trace_report.load_trace(source)
            roots = trace_report.build_tree(spans)
            print(trace_report.render_json_report(source, roots, telemetry))
            return 0
        paths = trace_report.write_report(trace_file=args.trace, out_dir=args.out)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for path in paths:
        print(f"wrote {path}")
    return 0


_COMMANDS = {
    "simulate": _command_simulate,
    "trace": _command_trace,
    "experiment": _command_experiment,
    "convert": _command_convert,
    "serve": _command_serve,
    "submit": _command_submit,
    "cache": _command_cache,
    "lint": _command_lint,
    "perf-report": _command_perf_report,
    "trace-report": _command_trace_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
