"""Wire protocol of the simulation service.

The service speaks newline-delimited JSON over a TCP or Unix stream socket:
each request is one JSON object on one line, each response is one JSON
object on one line.  Requests carry a ``verb`` plus verb-specific
parameters and an optional ``id`` the response echoes back, so a client
may pipeline several requests over one connection and match replies by id
(replies are written in completion order, not submission order).

Verbs
-----

``simulate``
    One workload under one prefetcher; returns miss/coverage/speedup
    statistics (params: ``workload``, ``prefetcher``, ``cpus``,
    ``accesses_per_cpu``, ``seed``, ``pht_backend``, ``pht_shards``).

``sweep``
    One item of a figure sweep — exactly the per-item task
    ``repro.cli experiment`` fans out (params: ``figure``, ``item``,
    ``scale``, ``num_cpus``).

``experiment``
    A full fig04–fig13 runner; returns the figure's result table (params:
    ``figure``, ``scale``, ``num_cpus``).

``status``
    Server and worker-pool health: in-flight jobs, queue bound, request
    counters.

``cache_stats``
    Entry counts and byte sizes of the on-disk sweep-result and trace
    caches.

Responses
---------

Success::

    {"ok": true, "result": ..., "cached": false, "coalesced": false, "id": ...}

``cached`` marks a reply served from the on-disk result cache without
entering the worker pool; ``coalesced`` marks a reply that piggybacked on
an identical in-flight request.  Failure::

    {"ok": false, "error": "...", "code": 400, "id": ...}

``code`` follows HTTP conventions: 400 malformed/invalid request, 422 the
job is quarantined as a poison task (it killed or timed out workers on
``quarantine_after`` distinct attempts; do not retry), 429 the server's
in-flight job bound is reached (back off and retry), 500 the job raised
while executing, 503 a worker process died mid-job (it is respawned; the
request may be retried), 504 the job missed its per-task deadline (the
worker is killed and respawned; the request may be retried).

The server retries 503/504 failures internally (bounded, with exponential
backoff) before reporting them, so the codes a client sees are already
post-retry.

Trace propagation
-----------------

A request may carry an optional ``trace`` field — a ``{"trace_id": ...,
"span_id": ...}`` object naming the client-side span the server's work
should hang under (see :mod:`repro.obs.trace`).  The field is stripped
before normalization (it never reaches the job digest, so tracing cannot
change cache keys or coalescing), forwarded to the pool worker with the
job, and echoed verbatim in the reply so clients can correlate pipelined
responses with their spans.  Requests without the field are simply not
traced; an unparseable ``trace`` value is ignored rather than rejected.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

#: Longest accepted request line (bytes).  One line is one JSON request;
#: anything longer is rejected rather than buffered without bound.
MAX_LINE = 1 << 20

#: Error codes (HTTP-flavoured).
BAD_REQUEST = 400
POISONED = 422
BUSY = 429
JOB_FAILED = 500
WORKER_LOST = 503
TASK_TIMEOUT = 504

#: Verbs the server accepts.
VERBS = ("simulate", "sweep", "experiment", "status", "cache_stats")

#: Optional request/reply field carrying the propagated trace context.
TRACE_FIELD = "trace"


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode(payload: Mapping[str, Any]) -> bytes:
    """Serialise one response/request object to a single wire line.

    Keys are sorted so identical payloads are byte-identical on the wire —
    the golden tests compare raw reply lines across server runs.
    """
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Mapping[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` on bad input."""
    if len(line) > MAX_LINE:
        raise ProtocolError(BAD_REQUEST, f"request line exceeds {MAX_LINE} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(BAD_REQUEST, f"malformed JSON request: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    return payload


def ok_response(
    result: Any,
    request_id: Optional[Any] = None,
    cached: bool = False,
    coalesced: bool = False,
) -> dict:
    reply = {"ok": True, "result": result, "cached": cached, "coalesced": coalesced}
    if request_id is not None:
        reply["id"] = request_id
    return reply


def error_response(code: int, message: str, request_id: Optional[Any] = None) -> dict:
    reply = {"ok": False, "error": message, "code": code}
    if request_id is not None:
        reply["id"] = request_id
    return reply
