"""Persistent multiprocess worker pool with warm per-worker state.

Workers are forked once when the pool starts and stay resident between
requests, so everything a cold ``repro.cli`` invocation pays for on every
run is paid once per worker:

* the imported package and its warmed ``lru_cache`` state — most
  importantly :func:`repro.experiments.common._cached_trace`, which keeps
  recently-used experiment traces decoded in memory;
* the on-disk :class:`~repro.simulation.result_cache.SweepResultCache`
  (installed as the worker's ambient default, so figure runners memoize
  their per-item results) and the ``.strc`` trace cache;
* a per-worker scratch directory for ``MmapBackend`` PHT backing files
  (installed via :func:`repro.core.pht.set_default_mmap_dir`), so
  mmap-backed predictor state for every request lands on one warm,
  worker-private file set instead of scattered anonymous temp files.
  Requests never *reuse* each other's PHT entries — results must stay
  bit-identical to a cold run — only the placement is persistent.

Each worker is paired with the parent over its own duplex
:func:`multiprocessing.Pipe`.  A shared queue is deliberately avoided: a
worker killed while holding a shared queue's feeder lock wedges every
sibling, whereas a broken pipe is detected by exactly one
:meth:`WorkerPool.execute` call, which respawns that worker and reports
the loss to its caller alone.

:meth:`WorkerPool.execute` is thread-safe and blocking — the asyncio
front-end calls it from executor threads — and jobs queue implicitly:
a call blocks until a worker is idle.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro import _env, faults, obs
from repro.obs import trace
from repro.serve.protocol import (
    JOB_FAILED,
    TASK_TIMEOUT,
    TRACE_FIELD,
    WORKER_LOST,
    ProtocolError,
)


@dataclass(frozen=True)
class WorkerSettings:
    """Picklable worker configuration (survives spawn as well as fork)."""

    cache_dir: Optional[str] = None
    trace_cache: bool = True
    scratch_dir: Optional[str] = None
    #: Raw ``REPRO_TRACE`` value captured at pool construction; exported
    #: into each worker's environment so sampling survives a spawn start
    #: (and anything the worker forks in turn inherits it).
    trace_mode: Optional[str] = None


def _worker_main(conn, index: int, settings: WorkerSettings) -> None:
    """Worker loop: receive a normalized spec, execute, send (ok, payload).

    Runs until the shutdown sentinel (``None``) or EOF on the pipe.  SIGINT
    is ignored — a Ctrl-C in the foreground server delivers SIGINT to the
    whole process group, and shutdown must stay coordinated by the parent
    so results in flight are not lost.  SIGTERM is reset to its default:
    the fork may have inherited the server's asyncio signal handler (or a
    sweep's raising handler), and :meth:`WorkerPool.shutdown` must be able
    to terminate a wedged worker with a plain SIGTERM.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    from repro._env import export as export_env
    from repro.core.pht import set_default_mmap_dir
    from repro.experiments.common import set_trace_cache
    from repro.serve import jobs
    from repro.simulation.result_cache import (
        CACHE_DIR_ENV,
        SweepResultCache,
        set_default_cache,
    )

    if settings.cache_dir:
        # The worker configures itself for its whole lifetime (inherited by
        # anything it forks in turn), so this is an export, not a scope.
        export_env(CACHE_DIR_ENV, settings.cache_dir)
    if settings.trace_mode is not None:
        export_env(trace.TRACE_ENV_VAR, settings.trace_mode)
    # Ambient per-item memoization for experiment-verb figure runs.
    set_default_cache(SweepResultCache())
    set_trace_cache(settings.trace_cache)
    if settings.scratch_dir:
        worker_dir = Path(settings.scratch_dir) / f"worker{index}"
        worker_dir.mkdir(parents=True, exist_ok=True)
        set_default_mmap_dir(worker_dir)

    while True:
        try:
            # Blocking by design: an idle worker has nothing to do but wait
            # for its next job, and the parent health-checks/terminates it.
            message = conn.recv()  # repro: ignore[ROB001] -- idle worker loop; the parent owns this worker's lifetime
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        # Per-request trace context rides the job message (workers fork
        # once, so the environment cannot carry per-request ids); popped
        # before execution so the spec stays exactly what was normalized.
        trace_ctx = trace.SpanContext.from_dict(message.pop(TRACE_FIELD, None))
        try:
            faults.fire("pool.worker")
            with trace.activate(trace_ctx):
                with trace.span(
                    "worker.execute",
                    {"verb": message.get("verb"), "worker": index},
                    root=False,
                ):
                    result = jobs.execute_spec(message)
            reply = (True, result)
        except Exception as exc:  # repro: ignore[EXC001] -- any job failure is reported to the caller; the warm worker must survive it
            reply = (False, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (OSError, ValueError, TypeError) as exc:
            # Unpicklable result or a vanished parent; report what we can.
            try:
                conn.send((False, f"could not return result: {exc}"))
            except OSError:
                break
    _cleanup_own_temp_files(settings)
    conn.close()


def _cleanup_own_temp_files(settings: WorkerSettings) -> None:
    """Drop this pid's temp trace-cache files on clean worker exit."""
    try:
        from repro.experiments.common import trace_cache_dir

        pattern = f".tmp-{os.getpid()}-*"
        for path in trace_cache_dir().glob(pattern):
            try:
                path.unlink()
            except OSError:
                pass
    except Exception:  # repro: ignore[EXC001] -- best-effort cleanup must never mask the exit path
        pass


class _WorkerHandle:
    """Parent-side record of one worker process and its pipe end."""

    def __init__(self, process, conn, index: int) -> None:
        self.process = process
        self.conn = conn
        self.index = index
        self.jobs_done = 0


class WorkerPool:
    """A fixed-size pool of persistent, warm simulation workers."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        trace_cache: bool = True,
        scratch_dir: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.num_workers = workers
        self.settings = WorkerSettings(
            cache_dir=str(cache_dir) if cache_dir else None,
            trace_cache=trace_cache,
            scratch_dir=str(scratch_dir) if scratch_dir else None,
            trace_mode=_env.read(trace.TRACE_ENV_VAR),
        )
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._handles: Dict[int, _WorkerHandle] = {}
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self.executed = 0
        self.failures = 0
        self.crashes = 0
        self.timeouts = 0
        self.idle_respawns = 0

    # ------------------------------------------------------------------ #
    def start(self) -> "WorkerPool":
        """Fork the workers.  Call before the server opens its socket, so
        children do not inherit listening descriptors."""
        if self._started:
            return self
        self._started = True
        for index in range(self.num_workers):
            self._spawn(index)
        return self

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, index, self.settings),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        handle = _WorkerHandle(process, parent_conn, index)
        self._handles[index] = handle
        self._idle.put(handle)

    # ------------------------------------------------------------------ #
    def execute(
        self,
        spec: Mapping[str, Any],
        timeout: Optional[float] = None,
        task_timeout: Optional[float] = None,
    ) -> Any:
        """Run one normalized spec on an idle worker; blocks until done.

        Raises :class:`ProtocolError` with code 500 when the job raised,
        503 when the worker process died mid-job, and 504 when
        ``task_timeout`` (seconds) elapsed without a result — the hung
        worker is killed.  In the 503/504 cases the worker is respawned
        before the error is raised, so the pool never shrinks.
        """
        if not self._started or self._closed:
            raise RuntimeError("pool is not running")
        handle = self._checkout(timeout)
        try:
            handle.conn.send(dict(spec))
            if task_timeout is not None and not handle.conn.poll(task_timeout):
                # A wedged task never returns on its own; kill the worker
                # (SIGTERM would suffice for a sleeping task, but a spinning
                # one only dies to SIGKILL) and give the caller the
                # retryable deadline code.
                with self._lock:
                    self.timeouts += 1
                self._replace(handle, kill=True)
                raise ProtocolError(
                    TASK_TIMEOUT,
                    f"worker {handle.index} missed the {task_timeout}s task "
                    "deadline (killed and respawned)",
                )
            ok, payload = handle.conn.recv()  # repro: ignore[ROB001] -- guarded by conn.poll(task_timeout) above; without a deadline, blocking is the contract
        except (EOFError, OSError, BrokenPipeError) as exc:
            with self._lock:
                self.crashes += 1
            self._replace(handle)
            raise ProtocolError(
                WORKER_LOST,
                f"worker {handle.index} died while executing (respawned): {exc}",
            ) from exc
        handle.jobs_done += 1
        self._idle.put(handle)
        with self._lock:
            if ok:
                self.executed += 1
            else:
                self.failures += 1
        if not ok:
            raise ProtocolError(JOB_FAILED, str(payload))
        return payload

    def _checkout(self, timeout: Optional[float]) -> _WorkerHandle:
        """Take an idle worker, health-checking it before dispatch.

        A worker can die while idle (OOM kill, operator ``kill -9``); its
        handle still sits in the idle queue.  Without this check the next
        request would burn itself discovering the corpse (send succeeds
        into the pipe buffer, recv raises EOF → a needless 503).  Dead
        idle workers are respawned and the fresh worker is used instead.
        """
        while True:
            handle = self._idle.get(timeout=timeout)
            if handle.process.is_alive() and not handle.conn.closed:
                # An idle worker's pipe should be silent; readable means
                # EOF from a worker that died after is_alive() or stray
                # data — either way, not a worker to trust with a job.
                if not handle.conn.poll(0):
                    return handle
            with self._lock:
                self.idle_respawns += 1
            self._replace(handle)
            # _replace put the respawned worker on the idle queue; loop to
            # take it (or any other idle worker) with the same timeout.

    def _replace(self, handle: _WorkerHandle, kill: bool = False) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            if kill:
                handle.process.kill()
            else:
                handle.process.terminate()
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():  # pragma: no cover - terminate ignored
            handle.process.kill()
            handle.process.join(timeout=1.0)
        if not self._closed:
            self._spawn(handle.index)
            obs.counter(
                "repro_serve_pool_respawns_total",
                "Workers respawned after a crash, kill, or idle death.",
            ).inc()

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counters = {
                "executed": self.executed,
                "failures": self.failures,
                "crashes": self.crashes,
                "timeouts": self.timeouts,
                "idle_respawns": self.idle_respawns,
            }
        return {
            "workers": self.num_workers,
            "idle_workers": self._idle.qsize(),
            "jobs_per_worker": {
                str(index): handle.jobs_done for index, handle in sorted(self._handles.items())
            },
            **counters,
        }

    # ------------------------------------------------------------------ #
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker and sweep temp cache files they may have left.

        Idle workers exit on the sentinel; busy or wedged ones are
        terminated (then killed) after ``timeout``.  Safe to call more than
        once.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        worker_pids = {
            handle.process.pid
            for handle in self._handles.values()
            if handle.process.pid is not None
        }
        for handle in self._handles.values():
            try:
                handle.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
        for handle in self._handles.values():
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        # Killed workers cannot run their own cleanup; sweep both cache
        # directories for temp files those specific pids left behind
        # (atomic-write staging only — completed entries are never touched,
        # and other processes sharing the directory are not raced).
        from repro.simulation.result_cache import remove_temp_files

        remove_temp_files(
            Path(self.settings.cache_dir) if self.settings.cache_dir else None,
            pids=worker_pids | {os.getpid()},
        )

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
