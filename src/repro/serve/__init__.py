"""A persistent simulation service: warm workers behind an asyncio front-end.

``repro.serve`` turns the one-shot simulate/sweep/experiment workflows into
a long-lived, stdlib-only service:

* :mod:`repro.serve.server` — asyncio ndjson front-end (TCP or Unix
  socket) with request coalescing, a result-cache fast path, and bounded
  in-flight depth with ``busy`` backpressure;
* :mod:`repro.serve.pool` — persistent forked worker pool with warm
  trace/result caches and per-worker PHT mmap scratch directories;
* :mod:`repro.serve.jobs` — verb registry; job identity is the same
  content-addressed key the on-disk sweep cache uses, so the service and
  ``repro.cli experiment`` share cache entries;
* :mod:`repro.serve.client` — blocking client library;
* :mod:`repro.serve.protocol` — the wire format.

Start a server from the command line with ``repro.cli serve`` and talk to
it with ``repro.cli submit`` or :class:`ServeClient`.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.pool import WorkerPool, WorkerSettings
from repro.serve.protocol import (
    BAD_REQUEST,
    BUSY,
    JOB_FAILED,
    MAX_LINE,
    POISONED,
    TASK_TIMEOUT,
    VERBS,
    WORKER_LOST,
    ProtocolError,
)
from repro.serve.server import SimulationServer

__all__ = [
    "ServeClient",
    "ServeError",
    "WorkerPool",
    "WorkerSettings",
    "SimulationServer",
    "ProtocolError",
    "VERBS",
    "MAX_LINE",
    "BAD_REQUEST",
    "BUSY",
    "JOB_FAILED",
    "POISONED",
    "TASK_TIMEOUT",
    "WORKER_LOST",
]
