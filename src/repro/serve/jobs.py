"""Request validation and the verb -> callable job registry.

Every servable job resolves to an importable module-level function plus
positional/keyword arguments, for two reasons:

* workers receive plain parameter dicts over their pipes and rebuild the
  callable locally — no code or closures cross the process boundary; and
* the job's cache digest is computed by
  :meth:`~repro.simulation.result_cache.SweepResultCache.fingerprint` from
  exactly that (function identity, args, kwargs) triple.

For the ``sweep`` verb, the (args, kwargs) shape deliberately mirrors the
tasks :func:`repro.experiments.common.run_sweep` builds — the item is the
single positional argument and the figure-default kwargs are filled in —
so a service request and a ``repro.cli experiment`` sweep over the same
configuration share cache entries: a figure run on the command line warms
the service, and vice versa.  ``tests/test_serve_jobs.py`` pins that
digest parity.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.analysis.coverage import coverage_from_result
from repro.analysis.reporting import ResultTable
from repro.core.pht import PHT_BACKENDS
from repro.experiments import (
    fig04_block_size,
    fig05_density,
    fig06_indexing,
    fig07_pht_storage,
    fig08_training,
    fig09_training_storage,
    fig10_region_size,
    fig11_ghb,
    fig12_speedup,
    fig13_breakdown,
)
from repro.experiments import common
from repro.serve.protocol import BAD_REQUEST, TRACE_FIELD, VERBS, ProtocolError
from repro.simulation import SimulationConfig, SimulationEngine, TimingModel
from repro.simulation.result_cache import SweepResultCache
from repro.workloads.suite import APPLICATION_NAMES, make_workload

#: Upper bounds keeping one request from monopolising a worker forever.
MAX_CPUS = 64
MAX_ACCESSES_PER_CPU = 10_000_000
MAX_SCALE = 100.0
MAX_PHT_SHARDS = 64


# --------------------------------------------------------------------------- #
# The simulate job
# --------------------------------------------------------------------------- #
def run_simulate(
    workload: str,
    prefetcher: str = "sms",
    cpus: int = 4,
    accesses_per_cpu: int = 10_000,
    seed: int = 1,
    pht_backend: str = "dict",
    pht_shards: int = 1,
) -> Dict[str, Any]:
    """One workload under one prefetcher; the service's ``simulate`` verb.

    Mirrors ``repro.cli simulate`` (same factories, same baseline pairing)
    but returns the statistics as a plain dict instead of printing a table,
    so the result is JSON-able and cacheable.
    """
    from repro.cli import PREFETCHER_CHOICES

    stream = make_workload(
        workload, num_cpus=cpus, accesses_per_cpu=accesses_per_cpu, seed=seed
    )
    config = SimulationConfig.small(num_cpus=cpus)
    baseline = SimulationEngine(config, name="baseline").run(stream)
    if prefetcher == "sms":
        factory = PREFETCHER_CHOICES["sms"](pht_backend, pht_shards)
    else:
        factory = PREFETCHER_CHOICES[prefetcher]()
    result = SimulationEngine(config, factory, name=prefetcher).run(stream)
    result.workload = stream.metadata
    l1 = coverage_from_result(result, level="L1")
    l2 = coverage_from_result(result, level="L2")
    return {
        "workload": workload,
        "prefetcher": prefetcher,
        "cpus": cpus,
        "accesses": stream.total_accesses,
        "baseline_l1_read_misses": baseline.l1_read_misses,
        "l1_read_misses": result.l1_read_misses,
        "baseline_offchip_read_misses": baseline.offchip_read_misses,
        "offchip_read_misses": result.offchip_read_misses,
        "l1_coverage": l1.coverage,
        "offchip_coverage": l2.coverage,
        "overpredictions": l1.overprediction_fraction,
        "speedup": TimingModel().speedup(baseline, result, stream.metadata),
    }


# --------------------------------------------------------------------------- #
# The sweep/experiment figure registries
# --------------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class SweepFigure:
    """One figure's per-item sweep entry: function, item domain, defaults."""

    fn: Callable[..., Any]
    items: Callable[[], Tuple[str, ...]]
    #: Figure-default kwargs, exactly as the figure's ``run()`` passes them
    #: to ``run_sweep`` (same objects, same list-vs-tuple types) so the
    #: cache digests coincide.
    defaults: Callable[[], Dict[str, Any]]


def _categories() -> Tuple[str, ...]:
    return tuple(common.CATEGORY_REPRESENTATIVE)


def _applications() -> Tuple[str, ...]:
    return tuple(common.application_names())


SWEEP_FIGURES: Dict[str, SweepFigure] = {
    "fig04": SweepFigure(
        fig04_block_size.run_category,
        _categories,
        lambda: {"sizes": fig04_block_size.SIZES},
    ),
    "fig05": SweepFigure(
        fig05_density.run_application,
        _applications,
        lambda: {"region_size": 2048},
    ),
    "fig06": SweepFigure(
        fig06_indexing.run_category,
        _categories,
        lambda: {"schemes": fig06_indexing.INDEX_SCHEMES},
    ),
    "fig07": SweepFigure(
        fig07_pht_storage.run_category,
        _categories,
        lambda: {
            "sizes": fig07_pht_storage.PHT_SIZES,
            "schemes": fig07_pht_storage.SCHEMES,
            "backend": "dict",
            "pht_shards": 1,
        },
    ),
    "fig08": SweepFigure(
        fig08_training.run_category,
        _categories,
        lambda: {"trainers": fig08_training.TRAINERS},
    ),
    "fig09": SweepFigure(
        fig09_training_storage.run_category,
        _categories,
        lambda: {
            "sizes": fig09_training_storage.PHT_SIZES,
            "trainers": fig09_training_storage.TRAINERS,
            "backend": "dict",
            "pht_shards": 1,
        },
    ),
    "fig10": SweepFigure(
        fig10_region_size.run_category,
        _categories,
        lambda: {"region_sizes": fig10_region_size.REGION_SIZES},
    ),
    "fig11": SweepFigure(
        fig11_ghb.run_application,
        _applications,
        lambda: {"configurations": fig11_ghb.CONFIGURATIONS},
    ),
    "fig12": SweepFigure(
        fig12_speedup.run_application,
        _applications,
        lambda: {"samples": 3},
    ),
    "fig13": SweepFigure(
        fig13_breakdown.run_application,
        _applications,
        lambda: {},
    ),
}

EXPERIMENT_FIGURES: Dict[str, Callable[..., ResultTable]] = {
    "fig04": fig04_block_size.run,
    "fig05": fig05_density.run,
    "fig06": fig06_indexing.run,
    "fig07": fig07_pht_storage.run,
    "fig08": fig08_training.run,
    "fig09": fig09_training_storage.run,
    "fig10": fig10_region_size.run,
    "fig11": fig11_ghb.run,
    "fig12": fig12_speedup.run,
    "fig13": fig13_breakdown.run,
}


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
def _require(params: Mapping[str, Any], key: str) -> Any:
    if key not in params:
        raise ProtocolError(BAD_REQUEST, f"missing required parameter {key!r}")
    return params[key]


def _as_int(name: str, value: Any, low: int, high: int) -> int:
    # bool is an int subclass; reject it explicitly so "cpus": true fails.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(BAD_REQUEST, f"{name} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise ProtocolError(BAD_REQUEST, f"{name} must be in [{low}, {high}], got {value}")
    return value


def _as_scale(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(BAD_REQUEST, f"scale must be a number, got {value!r}")
    scale = float(value)
    if not 0.0 < scale <= MAX_SCALE:
        raise ProtocolError(BAD_REQUEST, f"scale must be in (0, {MAX_SCALE}], got {scale}")
    return scale


def _as_choice(name: str, value: Any, choices) -> str:
    if value not in choices:
        raise ProtocolError(
            BAD_REQUEST, f"unknown {name} {value!r}; choose from {sorted(choices)}"
        )
    return value


def _reject_unknown(params: Mapping[str, Any], allowed) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ProtocolError(BAD_REQUEST, f"unknown parameter(s): {', '.join(unknown)}")


def normalize(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate one decoded request; return a fully-defaulted spec dict.

    The spec is plain JSON-able data (it crosses the worker pipe as-is):
    ``{"verb": ..., <verb parameters with defaults applied>}``.  Raises
    :class:`ProtocolError` (code 400) for anything out of domain.
    """
    verb = request.get("verb")
    if verb not in VERBS:
        raise ProtocolError(BAD_REQUEST, f"unknown verb {verb!r}; choose from {list(VERBS)}")
    # verb/id are envelope fields; the trace context is observability
    # metadata — stripped here so it can never reach the job digest.
    params = {
        key: value
        for key, value in request.items()
        if key not in ("verb", "id", TRACE_FIELD)
    }

    if verb == "simulate":
        from repro.cli import PREFETCHER_CHOICES

        _reject_unknown(
            params,
            (
                "workload", "prefetcher", "cpus", "accesses_per_cpu", "seed",
                "pht_backend", "pht_shards",
            ),
        )
        return {
            "verb": verb,
            "workload": _as_choice("workload", _require(params, "workload"), APPLICATION_NAMES),
            "prefetcher": _as_choice(
                "prefetcher", params.get("prefetcher", "sms"), PREFETCHER_CHOICES
            ),
            "cpus": _as_int("cpus", params.get("cpus", 4), 1, MAX_CPUS),
            "accesses_per_cpu": _as_int(
                "accesses_per_cpu", params.get("accesses_per_cpu", 10_000),
                1, MAX_ACCESSES_PER_CPU,
            ),
            "seed": _as_int("seed", params.get("seed", 1), 0, 2**31 - 1),
            "pht_backend": _as_choice(
                "pht_backend", params.get("pht_backend", "dict"), PHT_BACKENDS
            ),
            "pht_shards": _as_int("pht_shards", params.get("pht_shards", 1), 1, MAX_PHT_SHARDS),
        }

    if verb == "sweep":
        _reject_unknown(params, ("figure", "item", "scale", "num_cpus"))
        figure = _as_choice("figure", _require(params, "figure"), SWEEP_FIGURES)
        entry = SWEEP_FIGURES[figure]
        return {
            "verb": verb,
            "figure": figure,
            "item": _as_choice("item", _require(params, "item"), entry.items()),
            "scale": _as_scale(params.get("scale", 1.0)),
            "num_cpus": _as_int(
                "num_cpus", params.get("num_cpus", common.DEFAULT_NUM_CPUS), 1, MAX_CPUS
            ),
        }

    if verb == "experiment":
        _reject_unknown(params, ("figure", "scale", "num_cpus"))
        return {
            "verb": verb,
            "figure": _as_choice("figure", _require(params, "figure"), EXPERIMENT_FIGURES),
            "scale": _as_scale(params.get("scale", 1.0)),
            "num_cpus": _as_int(
                "num_cpus", params.get("num_cpus", common.DEFAULT_NUM_CPUS), 1, MAX_CPUS
            ),
        }

    # status / cache_stats take no parameters.
    _reject_unknown(params, ())
    return {"verb": verb}


# --------------------------------------------------------------------------- #
# Executable jobs
# --------------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class Job:
    """A resolved job: ``fn(*args, **kwargs)`` plus its originating spec."""

    verb: str
    fn: Callable[..., Any]
    args: Tuple
    kwargs: Dict[str, Any]

    def execute(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


def job_for(spec: Mapping[str, Any]) -> Job:
    """Resolve a normalized pool-verb spec into an executable :class:`Job`.

    ``status``/``cache_stats`` are answered by the server itself and have
    no job; requesting one here is a programming error.
    """
    verb = spec["verb"]
    if verb == "simulate":
        kwargs = {key: spec[key] for key in (
            "prefetcher", "cpus", "accesses_per_cpu", "seed", "pht_backend", "pht_shards"
        )}
        return Job(verb, run_simulate, (spec["workload"],), kwargs)
    if verb == "sweep":
        entry = SWEEP_FIGURES[spec["figure"]]
        kwargs = dict(entry.defaults())
        kwargs["scale"] = spec["scale"]
        kwargs["num_cpus"] = spec["num_cpus"]
        return Job(verb, entry.fn, (spec["item"],), kwargs)
    if verb == "experiment":
        kwargs = {"scale": spec["scale"], "num_cpus": spec["num_cpus"]}
        return Job(verb, EXPERIMENT_FIGURES[spec["figure"]], (), kwargs)
    raise ValueError(f"verb {verb!r} does not dispatch to the worker pool")


#: Verbs that dispatch to the worker pool (everything else is served by the
#: front-end directly).
POOL_VERBS = ("simulate", "sweep", "experiment")


def digest_for(spec: Mapping[str, Any], cache: SweepResultCache) -> Optional[str]:
    """Content-addressed identity of a pool-verb request.

    This is the same (function identity, canonical args, code fingerprint)
    key :class:`SweepResultCache` uses for sweep tasks, so service results
    and command-line sweep results share one cache namespace.
    """
    job = job_for(spec)
    return cache.fingerprint(job.fn, job.args, job.kwargs)


def execute_spec(spec: Mapping[str, Any]) -> Any:
    """Run a normalized pool-verb spec and return its raw (picklable) result."""
    return job_for(spec).execute()


# --------------------------------------------------------------------------- #
# Wire conversion
# --------------------------------------------------------------------------- #
def jsonify(value: Any) -> Any:
    """Convert a raw job result into JSON-able data, deterministically.

    Handles the experiment result types: dataclasses (as dicts), dicts with
    non-string keys (int sizes, (scheme, size) tuples — stringified), enums
    (their values), and nested containers.  :class:`ResultTable` adds its
    rendered ``text`` so experiment replies can be compared byte-for-byte
    against the direct CLI output.
    """
    if isinstance(value, ResultTable):
        return {
            "title": value.title,
            "headers": list(value.headers),
            "rows": jsonify(value.rows),
            "text": value.to_text(),
        }
    if isinstance(value, Enum):
        return jsonify(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonify(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key_str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"result of type {type(value).__name__} is not JSON-able")


def _key_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, Enum):
        return _key_str(key.value)
    if isinstance(key, tuple):
        return "/".join(_key_str(part) for part in key)
    return str(key)
