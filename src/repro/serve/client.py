"""Blocking client for the simulation service.

Stdlib-socket counterpart of :class:`~repro.serve.server.SimulationServer`:
connects over TCP or a Unix socket, writes one JSON request per line, and
reads one JSON reply per line.  One client drives one connection and issues
one request at a time; for concurrent load, use one client per thread (the
server coalesces identical requests across connections).

Example::

    from repro.serve import ServeClient

    with ServeClient(socket_path="/tmp/repro.sock") as client:
        reply = client.request("simulate", workload="oltp-db2", cpus=2)
        print(reply["result"]["l1_coverage"])
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional

from repro import faults
from repro.obs import trace
from repro.serve.protocol import TRACE_FIELD, encode


class ServeError(RuntimeError):
    """A failed request: transport trouble or an ``ok: false`` reply."""

    def __init__(self, message: str, code: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """Blocking ndjson client; context-manageable; not thread-safe."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: Optional[float] = 600.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket_path or a host/port")
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # ------------------------------------------------------------------ #
    def connect(
        self,
        retry_for: float = 0.0,
        interval: float = 0.05,
        max_interval: float = 2.0,
    ) -> "ServeClient":
        """Open the connection, optionally retrying for ``retry_for`` seconds
        (covers the race of a client starting alongside the server).

        Retries back off exponentially from ``interval`` up to
        ``max_interval`` per attempt — a server that needs seconds to warm
        its pool is not hammered at 20 attempts/second, but the first few
        retries still catch it the moment the socket appears.  The final
        sleep is clipped so the deadline itself is never overshot.
        """
        deadline = time.monotonic() + retry_for
        delay = interval
        while True:
            try:
                if self.socket_path:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(self.socket_path)
                else:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout
                    )
            except OSError as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeError(f"cannot connect to {self._address()}: {exc}") from exc
                time.sleep(min(delay, max_interval, remaining))
                delay = min(delay * 2, max_interval)
                continue
            self._sock = sock
            self._file = sock.makefile("rwb")
            return self

    def _address(self) -> str:
        return f"unix:{self.socket_path}" if self.socket_path else f"tcp:{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    def request_raw(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one already-shaped request object; return the decoded reply.

        When ``REPRO_TRACE`` sampling admits this request (or an ambient
        span is active on the calling thread), a ``client.request`` span
        wraps the round trip and its context rides the request's
        ``trace`` field, making the server's work a child of this span.
        """
        if self._file is None:
            self.connect()
        assert self._file is not None
        with trace.span("client.request", {"verb": payload.get("verb")}) as sp:
            if sp.recording and TRACE_FIELD not in payload:
                payload = dict(payload)
                payload[TRACE_FIELD] = sp.context.as_dict()
            try:
                faults.fire("client.send")
                self._file.write(encode(payload))
                self._file.flush()
                # No size cap on replies: the server bounds *request* lines,
                # but replies (a full experiment table, say) may be
                # arbitrarily long and truncating one would desync the
                # connection.
                line = self._file.readline()
            except OSError as exc:
                raise ServeError(
                    f"transport error talking to {self._address()}: {exc}"
                ) from exc
            if not line:
                raise ServeError(f"server at {self._address()} closed the connection")
            try:
                reply = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(f"malformed reply from {self._address()}: {exc}") from exc
            if not isinstance(reply, dict):
                raise ServeError(f"malformed reply from {self._address()}: not an object")
            if sp.recording:
                sp.set("ok", bool(reply.get("ok")))
                sp.set("cached", bool(reply.get("cached")))
                sp.set("coalesced", bool(reply.get("coalesced")))
                if not reply.get("ok"):
                    sp.mark_error(str(reply.get("error", "request failed")))
            return reply

    def request(self, verb: str, **params: Any) -> Dict[str, Any]:
        """Send one request; return the full reply object (``ok`` may be False)."""
        payload = {"verb": verb}
        payload.update(params)
        return self.request_raw(payload)

    def call(self, verb: str, **params: Any) -> Any:
        """Send one request; return ``reply["result"]`` or raise :class:`ServeError`."""
        reply = self.request(verb, **params)
        if not reply.get("ok"):
            raise ServeError(
                str(reply.get("error", "request failed")), code=reply.get("code")
            )
        return reply["result"]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
