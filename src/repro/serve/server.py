"""Asyncio front-end of the simulation service.

One :class:`SimulationServer` owns a listening TCP or Unix stream socket,
a parent-side :class:`~repro.simulation.result_cache.SweepResultCache`
view, and a :class:`~repro.serve.pool.WorkerPool`.  Per request the flow
is:

1. **Validate** the decoded JSON against the verb registries
   (:func:`repro.serve.jobs.normalize`); malformed requests get a 400
   reply without touching the pool.
2. **Cache fast path** — the request's content digest (the same
   canonical-args + code-fingerprint key the sweep cache uses) is looked
   up in the on-disk result cache.  A warm repeat is answered directly by
   the front-end, marked ``"cached": true``, without entering the pool.
3. **Coalesce** — if an identical request is already executing, the new
   one awaits the same in-flight task and is marked ``"coalesced": true``;
   N concurrent identical requests cost exactly one execution.
4. **Backpressure** — if the number of distinct in-flight jobs has reached
   ``max_queue``, the request is refused with a 429 ``busy`` reply rather
   than queued without bound.
5. **Dispatch** — otherwise the job runs on the worker pool (via an
   executor thread, since pool calls block); the raw result is stored in
   the result cache by the front-end and jsonified for the wire.

Dispatched jobs are fault-tolerant: a worker crash (503) or missed
per-task deadline (504, when ``task_timeout`` is set) is retried up to
``max_retries`` times with exponential backoff before the error reaches
the client.  A job that kills or wedges workers on ``quarantine_after``
distinct dispatches is *quarantined* as a poison task: further identical
requests get an immediate 422 instead of taking down more workers — the
graceful-degradation contract that lets a driving sweep return partial
results plus a failure manifest instead of aborting.

All coalescing/backpressure bookkeeping lives on the event loop thread;
only the blocking pool call leaves it.  In-flight tasks are shielded from
client disconnects: once started, a job always runs to completion and its
result is cached, so an impatient client cannot waste the work of the
patient ones coalesced behind it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import time
from typing import Any, Dict, Mapping, Optional

from repro import obs
from repro.obs import trace
from repro.obs.gateway import MetricsGateway
from repro.serve import jobs
from repro.serve.protocol import (
    BUSY,
    MAX_LINE,
    POISONED,
    TASK_TIMEOUT,
    TRACE_FIELD,
    WORKER_LOST,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.serve.pool import WorkerPool
from repro.simulation.result_cache import SweepResultCache


class SimulationServer:
    """Long-lived ndjson simulation service over TCP or a Unix socket."""

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 8642,
        socket_path: Optional[str] = None,
        max_queue: int = 8,
        cache: Optional[SweepResultCache] = None,
        max_retries: int = 2,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.1,
        quarantine_after: int = 3,
        http_host: str = "127.0.0.1",
        http_port: Optional[int] = None,
    ) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be positive, got {quarantine_after}")
        self.pool = pool
        self.host = host
        self.port = port
        self.socket_path = str(socket_path) if socket_path else None
        self.max_queue = max_queue
        self.cache = cache if cache is not None else SweepResultCache()
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.quarantine_after = quarantine_after
        self.counters: Dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "executed": 0,
            "busy_rejections": 0,
            "errors": 0,
            "retries": 0,
            "quarantined": 0,
        }
        # Poison-task tracking: per-digest count of worker-lost/timeout
        # failures (500s are deterministic job errors and do not count),
        # and the set of digests quarantined once that count reaches
        # quarantine_after.  Both live on the event-loop thread.
        self._failure_counts: Dict[str, int] = {}
        self._quarantined: set = set()
        # asyncio primitives are created inside the running loop (start()),
        # not here: on Python 3.9 building them without a loop is an error.
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: Dict[str, "asyncio.Task[Any]"] = {}
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._started_at = 0.0
        # Observability: the per-verb families are bound now (against the
        # registry active at construction) so every request costs two O(1)
        # child lookups; level gauges are refreshed by a scrape-time
        # collector instead of on every request.
        self.gateway: Optional[MetricsGateway] = (
            MetricsGateway(host=http_host, port=http_port, status_provider=self.status)
            if http_port is not None
            else None
        )
        self._m_requests = obs.counter(
            "repro_serve_requests_total",
            "ndjson requests received, by verb (invalid = unparseable).",
            labels=("verb",),
        )
        self._m_latency = obs.histogram(
            "repro_serve_request_seconds",
            "Request service latency from receipt to reply-ready, by verb.",
            labels=("verb",),
        )
        self._m_outcomes = obs.counter(
            "repro_serve_outcomes_total",
            "Request outcomes, mirroring the status-verb counters.",
            labels=("outcome",),
        )
        self._collector_registered = False

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def start(self) -> None:
        """Fork the pool (if needed) and open the listening socket."""
        self.pool.start()
        # One executor thread per possible in-flight job: every dispatched
        # job parks one thread on the blocking pool call.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_queue, thread_name_prefix="repro-serve-dispatch"
        )
        self._started_at = time.monotonic()
        if self.socket_path:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)  # stale socket from a dead server
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path, limit=MAX_LINE
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port, limit=MAX_LINE
            )
            # Reflect an ephemeral port (port=0) back for clients/tests.
            sockets = self._server.sockets or []
            if sockets:
                self.port = sockets[0].getsockname()[1]
        if self.gateway is not None:
            await self.gateway.start()
        if not self._collector_registered:
            obs.add_collector(self._refresh_gauges)
            self._collector_registered = True

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the socket, drain in-flight jobs, stop the pool."""
        if self.gateway is not None:
            await self.gateway.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        inflight = list(self._inflight.values())
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.pool.shutdown()
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:  # line longer than MAX_LINE
                    await self._reply(
                        writer, write_lock,
                        error_response(400, f"request line exceeds {MAX_LINE} bytes"),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Each request is processed as its own task so several
                # requests on one connection — and across connections —
                # can coalesce and complete out of order.
                task = asyncio.ensure_future(
                    self._process_request(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            # Loop shutdown while parked on readline; in-flight jobs are
            # drained by stop(), so the connection just goes away quietly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _reply(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, payload: Mapping
    ) -> None:
        async with write_lock:
            try:
                writer.write(encode(payload))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the job (if any) still completes

    async def _process_request(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        self.counters["requests"] += 1
        started = time.perf_counter()  # repro: ignore[OBS002] -- the verb label is unknown until the line parses; the delta feeds the obs histogram below
        verb = "invalid"
        request_id = None
        trace_payload = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            trace_payload = request.get(TRACE_FIELD)
            trace_ctx = trace.SpanContext.from_dict(trace_payload)
            spec = jobs.normalize(request)
            verb = spec["verb"]
            # The request span lives on the event loop across awaits, so it
            # must not join the thread-ambient stack (attach=False); child
            # work gets the context explicitly.  root=False: the server
            # only records when a client propagated a trace.
            with trace.span("serve.request", {"verb": verb}, parent=trace_ctx,
                            attach=False, root=False) as sp:
                if verb == "status":
                    reply = ok_response(self.status(), request_id)
                elif verb == "cache_stats":
                    # The directory scan stats the whole cache; keep it off
                    # the loop thread (default executor: the dispatch
                    # executor's threads may all be parked on pool calls).
                    overview = await asyncio.get_running_loop().run_in_executor(
                        None, self.cache_stats
                    )
                    reply = ok_response(overview, request_id)
                else:
                    raw, cached, coalesced = await self._dispatch(spec, sp.context)
                    sp.set("cached", cached)
                    sp.set("coalesced", coalesced)
                    reply = ok_response(
                        jobs.jsonify(raw), request_id, cached=cached, coalesced=coalesced
                    )
        except ProtocolError as exc:
            if exc.code == BUSY:
                self.counters["busy_rejections"] += 1
            else:
                self.counters["errors"] += 1
            reply = error_response(exc.code, exc.message, request_id)
        except Exception as exc:  # repro: ignore[EXC001] -- service boundary: an error reply beats a hung client
            self.counters["errors"] += 1
            reply = error_response(500, f"{type(exc).__name__}: {exc}", request_id)
        if trace_payload is not None:
            reply[TRACE_FIELD] = trace_payload  # echoed for client correlation
        self._m_requests.labels(verb).inc()
        self._m_latency.labels(verb).observe(time.perf_counter() - started)
        await self._reply(writer, write_lock, reply)

    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, spec: Mapping[str, Any], ctx: Optional[trace.SpanContext] = None
    ):
        """Serve one pool-verb spec; returns ``(raw_result, cached, coalesced)``."""
        digest = jobs.digest_for(spec, self.cache)
        if digest is not None and digest in self._quarantined:
            raise ProtocolError(
                POISONED,
                f"job quarantined after {self.quarantine_after} worker-fatal "
                "attempts; not retrying",
            )
        if digest is not None:
            # Pickle loads run on the default executor, not the loop thread:
            # a multi-megabyte cached result must not stall every other
            # connection while it loads.  (Not the dispatch executor — its
            # threads may all be parked on blocking pool calls.)
            hit, value = await asyncio.get_running_loop().run_in_executor(
                None, self._with_trace, ctx, self.cache.get, digest
            )
            if hit:
                self.counters["cache_hits"] += 1
                return value, True, False
            running = self._inflight.get(digest)
            if running is not None:
                self.counters["coalesced"] += 1
                # shield: a coalesced client disconnecting must not cancel
                # the shared execution.
                return await asyncio.shield(running), False, True
        if len(self._inflight) >= self.max_queue:
            raise ProtocolError(
                BUSY,
                f"busy: {len(self._inflight)} job(s) in flight (max_queue={self.max_queue})",
            )
        task = asyncio.ensure_future(self._execute(spec, digest, ctx))
        if digest is not None:
            self._inflight[digest] = task
        return await asyncio.shield(task), False, False

    def _with_trace(self, ctx: Optional[trace.SpanContext], fn, *args) -> Any:
        """Run ``fn`` on an executor thread under the request's trace context,
        so spans created inside (cache get/put) nest under the request."""
        with trace.activate(ctx):
            return fn(*args)

    def _pool_call(
        self, ctx: Optional[trace.SpanContext], spec: Dict[str, Any], attempt: int
    ) -> Any:
        """One blocking pool dispatch, wrapped in a ``serve.execute`` span
        whose context rides to the worker on the job message."""
        with trace.span("serve.execute", {"verb": spec.get("verb"), "attempt": attempt},
                        parent=ctx, attach=False, root=False) as sp:
            if sp.recording:
                spec[TRACE_FIELD] = sp.context.as_dict()
            return self.pool.execute(spec, task_timeout=self.task_timeout)

    async def _execute(
        self,
        spec: Mapping[str, Any],
        digest: Optional[str],
        ctx: Optional[trace.SpanContext] = None,
    ) -> Any:
        loop = asyncio.get_running_loop()
        try:
            raw = await self._execute_with_retries(loop, spec, digest, ctx)
            self.counters["executed"] += 1
            if digest is not None:
                # The front-end stores the raw result (same convention as
                # SweepRunner: the parent writes, workers never do), so the
                # entry is shared with command-line sweeps.  The pickle dump
                # runs off-loop; the job stays in _inflight until the entry
                # is durable, so an identical request arriving meanwhile
                # coalesces instead of re-executing.
                await loop.run_in_executor(
                    None, self._with_trace, ctx, self.cache.put, digest, raw
                )
            return raw
        finally:
            if digest is not None:
                self._inflight.pop(digest, None)

    async def _execute_with_retries(
        self,
        loop: asyncio.AbstractEventLoop,
        spec: Mapping[str, Any],
        digest: Optional[str],
        ctx: Optional[trace.SpanContext] = None,
    ) -> Any:
        """Run the blocking pool call, absorbing transient worker faults.

        Worker-lost (503) and deadline (504) failures are retried up to
        ``max_retries`` times with exponential backoff; each such failure
        also counts toward the digest's poison score, and a digest that
        reaches ``quarantine_after`` worker-fatal attempts is quarantined —
        the current request, and every later identical one, gets 422.
        Deterministic job errors (500) pass straight through: a task that
        raises cleanly will raise again, so retrying it is pure waste.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                return await loop.run_in_executor(
                    self._executor,
                    lambda attempt=attempts: self._pool_call(ctx, dict(spec), attempt),
                )
            except ProtocolError as exc:
                if exc.code not in (WORKER_LOST, TASK_TIMEOUT):
                    raise
                if digest is not None:
                    count = self._failure_counts.get(digest, 0) + 1
                    self._failure_counts[digest] = count
                    if count >= self.quarantine_after:
                        self._quarantined.add(digest)
                        self.counters["quarantined"] += 1
                        raise ProtocolError(
                            POISONED,
                            f"job quarantined after {count} worker-fatal attempts "
                            f"(last: {exc.message})",
                        ) from exc
                if attempts > self.max_retries:
                    raise
                self.counters["retries"] += 1
                await asyncio.sleep(self.retry_backoff * (2 ** (attempts - 1)))

    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, Any]:
        pool_stats = self.pool.stats()
        workers = pool_stats.get("workers")
        idle = pool_stats.get("idle_workers")
        cache_stats = self.cache.stats.as_dict()
        lookups = cache_stats["hits"] + cache_stats["misses"]
        cache_stats["hit_ratio"] = (
            round(cache_stats["hits"] / lookups, 6) if lookups else None
        )
        return {
            "address": self.address,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "max_queue": self.max_queue,
            "inflight": len(self._inflight),
            "max_retries": self.max_retries,
            "task_timeout": self.task_timeout,
            "quarantine_after": self.quarantine_after,
            "quarantined_jobs": len(self._quarantined),
            "counters": dict(self.counters),
            "cache": cache_stats,
            "pool": pool_stats,
            "pool_depth": {
                "workers": workers,
                "idle": idle,
                "busy": (workers - idle)
                if isinstance(workers, int) and isinstance(idle, int)
                else None,
                "inflight": len(self._inflight),
                "max_queue": self.max_queue,
            },
            "http": self.gateway.address if self.gateway is not None else None,
        }

    def _refresh_gauges(self) -> None:
        """Scrape-time collector: copy level/state numbers into the registry.

        Counters maintained elsewhere (the pool's tallies, the status-verb
        counters dict) are mirrored with ``sync_to`` so they stay monotonic
        and are never double-counted.
        """
        obs.gauge("repro_serve_inflight", "Distinct jobs in flight.").set(
            len(self._inflight)
        )
        obs.gauge("repro_serve_max_queue", "In-flight bound before 429s.").set(
            self.max_queue
        )
        obs.gauge(
            "repro_serve_quarantined_jobs", "Digests quarantined as poison tasks."
        ).set(len(self._quarantined))
        for outcome, value in self.counters.items():
            self._m_outcomes.labels(outcome).sync_to(value)
        pool_stats = self.pool.stats()
        workers = pool_stats.get("workers")
        if isinstance(workers, int):
            obs.gauge("repro_serve_pool_workers", "Configured pool size.").set(workers)
        idle = pool_stats.get("idle_workers")
        if isinstance(idle, int):
            obs.gauge(
                "repro_serve_pool_idle_workers", "Workers parked on the idle queue."
            ).set(idle)
        pool_counters = obs.counter(
            "repro_serve_pool_events_total",
            "Pool lifecycle tallies mirrored from WorkerPool.stats().",
            labels=("event",),
        )
        for event in ("executed", "failures", "crashes", "timeouts", "idle_respawns"):
            value = pool_stats.get(event)
            if isinstance(value, int):
                pool_counters.labels(event).sync_to(value)

    def cache_stats(self) -> Dict[str, Any]:
        from repro.simulation.result_cache import cache_overview

        overview = cache_overview(self.cache.directory)
        overview["server_cache"] = self.cache.stats.as_dict()
        return overview

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Blocking entry point: serve until SIGINT/SIGTERM, then shut down
        gracefully (drain in-flight jobs, stop workers, remove the socket)."""
        asyncio.run(self._run_until_signal())

    async def _run_until_signal(self) -> None:
        import signal as _signal

        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                _signal.signal(signum, lambda *_: stop_event.set())
        await self.start()
        try:
            await stop_event.wait()
        finally:
            await self.stop()
