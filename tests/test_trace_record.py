"""Tests for repro.trace.record."""

import pytest

from repro.trace.record import (
    AccessType,
    ExecutionMode,
    MemoryAccess,
    read_access,
    write_access,
)


class TestAccessType:
    def test_read_properties(self):
        assert AccessType.READ.is_read
        assert not AccessType.READ.is_write

    def test_write_properties(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.WRITE.is_read


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(pc=0x400, address=0x1000)
        assert access.is_read
        assert not access.is_write
        assert access.cpu == 0
        assert access.mode is ExecutionMode.USER
        assert access.instruction_count == 0

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(pc=-1, address=0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(pc=0, address=-4)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(pc=0, address=0, cpu=-1)

    def test_block_address(self):
        access = MemoryAccess(pc=0, address=0x1234)
        assert access.block_address(64) == 0x1200

    def test_region_base(self):
        access = MemoryAccess(pc=0, address=0x1234)
        assert access.region_base(2048) == 0x1000

    def test_region_offset(self):
        access = MemoryAccess(pc=0, address=0x1000 + 5 * 64 + 3)
        assert access.region_offset(2048, 64) == 5

    def test_region_offset_is_block_index_not_bytes(self):
        access = MemoryAccess(pc=0, address=0x1000 + 31 * 64)
        assert access.region_offset(2048, 64) == 31

    def test_with_cpu_preserves_fields(self):
        access = MemoryAccess(
            pc=0x400,
            address=0x1000,
            access_type=AccessType.WRITE,
            cpu=1,
            mode=ExecutionMode.SYSTEM,
            instruction_count=55,
        )
        moved = access.with_cpu(7)
        assert moved.cpu == 7
        assert moved.pc == access.pc
        assert moved.address == access.address
        assert moved.access_type is AccessType.WRITE
        assert moved.mode is ExecutionMode.SYSTEM
        assert moved.instruction_count == 55

    def test_equality_ignores_instruction_count(self):
        a = MemoryAccess(pc=1, address=2, instruction_count=10)
        b = MemoryAccess(pc=1, address=2, instruction_count=99)
        assert a == b

    def test_not_equal_to_raw_field_tuple(self):
        access = MemoryAccess(pc=1, address=2, cpu=3, instruction_count=4)
        raw = tuple(access)
        assert access != raw
        assert raw != access
        assert access != None  # noqa: E711 - exercising __eq__ fallback

    def test_frozen(self):
        access = MemoryAccess(pc=0, address=0)
        with pytest.raises(AttributeError):
            access.pc = 5

    def test_pickle_roundtrip_preserves_all_fields(self):
        import pickle

        access = MemoryAccess(
            pc=0x400, address=0x1000, access_type=AccessType.WRITE,
            cpu=3, mode=ExecutionMode.SYSTEM, instruction_count=99,
        )
        restored = pickle.loads(pickle.dumps(access))
        assert restored.access_type is AccessType.WRITE
        assert restored.mode is ExecutionMode.SYSTEM
        assert restored.instruction_count == 99
        assert restored == access

    def test_deepcopy_preserves_all_fields(self):
        import copy

        access = MemoryAccess(
            pc=1, address=2, access_type=AccessType.WRITE,
            mode=ExecutionMode.SYSTEM, instruction_count=7,
        )
        duplicate = copy.deepcopy(access)
        assert duplicate.is_write
        assert duplicate.mode is ExecutionMode.SYSTEM
        assert duplicate.instruction_count == 7


class TestConvenienceConstructors:
    def test_read_access(self):
        access = read_access(0x400, 0x2000, cpu=3)
        assert access.is_read
        assert access.cpu == 3

    def test_write_access(self):
        access = write_access(0x400, 0x2000)
        assert access.is_write
