"""Tests for repro.core.pattern (spatial patterns)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pattern import SpatialPattern


class TestConstruction:
    def test_empty(self):
        pattern = SpatialPattern.empty(32)
        assert pattern.is_empty
        assert pattern.population == 0

    def test_full(self):
        pattern = SpatialPattern.full(8)
        assert pattern.population == 8
        assert pattern.density == 1.0

    def test_from_offsets(self):
        pattern = SpatialPattern.from_offsets(32, [0, 3, 31])
        assert pattern.test(0)
        assert pattern.test(3)
        assert pattern.test(31)
        assert not pattern.test(1)

    def test_from_offsets_out_of_range(self):
        with pytest.raises(ValueError):
            SpatialPattern.from_offsets(8, [8])

    def test_from_string(self):
        pattern = SpatialPattern.from_string("1011")
        assert pattern.num_blocks == 4
        assert pattern.offsets() == [0, 2, 3]

    def test_from_string_invalid(self):
        with pytest.raises(ValueError):
            SpatialPattern.from_string("10x1")

    def test_bits_beyond_width_rejected(self):
        with pytest.raises(ValueError):
            SpatialPattern(num_blocks=4, bits=0x10)

    def test_non_positive_width_rejected(self):
        with pytest.raises(ValueError):
            SpatialPattern(num_blocks=0)


class TestQueries:
    def test_singleton(self):
        assert SpatialPattern.from_offsets(32, [5]).is_singleton
        assert not SpatialPattern.from_offsets(32, [5, 6]).is_singleton

    def test_offsets_sorted(self):
        pattern = SpatialPattern.from_offsets(16, [9, 2, 5])
        assert pattern.offsets() == [2, 5, 9]

    def test_iteration_and_len(self):
        pattern = SpatialPattern.from_offsets(16, [1, 2])
        assert list(pattern) == [1, 2]
        assert len(pattern) == 16

    def test_test_out_of_range(self):
        with pytest.raises(ValueError):
            SpatialPattern.empty(4).test(4)

    def test_to_string_roundtrip(self):
        pattern = SpatialPattern.from_offsets(6, [0, 4])
        assert SpatialPattern.from_string(pattern.to_string()) == pattern


class TestDerivations:
    def test_with_offset(self):
        pattern = SpatialPattern.empty(8).with_offset(3)
        assert pattern.test(3)

    def test_without_offset(self):
        pattern = SpatialPattern.full(8).without_offset(3)
        assert not pattern.test(3)
        assert pattern.population == 7

    def test_immutability(self):
        pattern = SpatialPattern.empty(8)
        pattern.with_offset(2)
        assert pattern.is_empty

    def test_union_intersection_difference(self):
        a = SpatialPattern.from_offsets(8, [0, 1, 2])
        b = SpatialPattern.from_offsets(8, [2, 3])
        assert (a | b).offsets() == [0, 1, 2, 3]
        assert (a & b).offsets() == [2]
        assert (a - b).offsets() == [0, 1]

    def test_incompatible_widths(self):
        with pytest.raises(ValueError):
            SpatialPattern.empty(8).union(SpatialPattern.empty(16))


class TestScoring:
    def test_covered_by(self):
        actual = SpatialPattern.from_offsets(8, [0, 1, 2, 3])
        prediction = SpatialPattern.from_offsets(8, [1, 2, 6])
        assert actual.covered_by(prediction) == 2

    def test_overpredicted_by(self):
        actual = SpatialPattern.from_offsets(8, [0, 1])
        prediction = SpatialPattern.from_offsets(8, [1, 6, 7])
        assert actual.overpredicted_by(prediction) == 2


class TestProperties:
    @given(offsets=st.lists(st.integers(min_value=0, max_value=31), max_size=40))
    def test_population_equals_unique_offsets(self, offsets):
        pattern = SpatialPattern.from_offsets(32, offsets)
        assert pattern.population == len(set(offsets))

    @given(
        a=st.integers(min_value=0, max_value=(1 << 32) - 1),
        b=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_union_superset(self, a, b):
        pa = SpatialPattern(num_blocks=32, bits=a)
        pb = SpatialPattern(num_blocks=32, bits=b)
        union = pa | pb
        assert union.population >= max(pa.population, pb.population)
        for offset in pa.offsets():
            assert union.test(offset)

    @given(bits=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_roundtrip(self, bits):
        pattern = SpatialPattern(num_blocks=32, bits=bits)
        assert SpatialPattern.from_string(pattern.to_string()) == pattern

    @given(
        bits=st.integers(min_value=0, max_value=(1 << 32) - 1),
        offset=st.integers(min_value=0, max_value=31),
    )
    def test_with_without_inverse(self, bits, offset):
        pattern = SpatialPattern(num_blocks=32, bits=bits)
        assert pattern.with_offset(offset).test(offset)
        assert not pattern.without_offset(offset).test(offset)
