"""Property-based tests for the simulation engine's accounting invariants.

Whatever trace and prefetcher are used, the engine's counters must satisfy
conservation laws: accesses split exactly into reads and writes, misses never
exceed accesses, covered misses never exceed prefetch fills, and coverage /
overprediction fractions are well-formed.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import SMSConfig, SpatialMemoryStreaming
from repro.prefetch import NextLinePrefetcher
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import run_simulation
from repro.trace.record import AccessType, MemoryAccess


def _config():
    return SimulationConfig(
        num_cpus=2,
        l1_capacity=2 * 1024,
        l1_associativity=2,
        l2_capacity=16 * 1024,
        l2_associativity=4,
        warmup_fraction=0.0,
    )


def _trace_from_seed(seed: int, length: int):
    """A random but structured trace: regional walks with occasional writes."""
    rng = random.Random(seed)
    records = []
    icount = 0
    for _ in range(length):
        cpu = rng.randrange(2)
        region = rng.randrange(12) * 2048
        offset = rng.randrange(32)
        icount += rng.randint(1, 5)
        records.append(
            MemoryAccess(
                pc=0x400 + 4 * rng.randrange(6),
                address=0x100000 + region + offset * 64,
                cpu=cpu,
                access_type=AccessType.WRITE if rng.random() < 0.2 else AccessType.READ,
                instruction_count=icount,
            )
        )
    return records


_PREFETCHERS = {
    "none": None,
    "nextline": lambda cpu: NextLinePrefetcher(degree=2),
    "sms": lambda cpu: SpatialMemoryStreaming(SMSConfig(pht_entries=1024, pht_associativity=4)),
}


class TestEngineConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        length=st.integers(min_value=10, max_value=400),
        prefetcher=st.sampled_from(sorted(_PREFETCHERS)),
    )
    def test_counter_invariants(self, seed, length, prefetcher):
        trace = _trace_from_seed(seed, length)
        result = run_simulation(trace, _config(), _PREFETCHERS[prefetcher], name=prefetcher)

        assert result.accesses == length
        assert result.reads + result.writes == result.accesses
        assert result.l1_read_misses + result.l1_read_covered <= result.reads
        assert result.l1_write_misses <= result.writes
        assert result.offchip_read_misses <= result.l1_read_misses
        assert result.l2_read_hits + result.offchip_read_misses == result.l2_demand_reads
        assert result.l2_read_covered <= result.prefetches_issued + 1
        assert 0.0 <= result.l1_coverage() <= 1.0
        assert 0.0 <= result.l2_coverage() <= 1.0
        assert result.l1_overpredictions >= 0
        assert result.l2_overpredictions >= 0
        assert result.instructions >= 1

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_no_prefetcher_means_no_coverage(self, seed):
        trace = _trace_from_seed(seed, 200)
        result = run_simulation(trace, _config(), None, name="base")
        assert result.l1_read_covered == 0
        assert result.l2_read_covered == 0
        assert result.prefetches_issued == 0
        assert result.l1_overpredictions == 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_prefetching_never_increases_demand_miss_plus_covered(self, seed):
        """Covered + uncovered misses with SMS stays close to the baseline miss
        count (prefetching can perturb replacement slightly, but not create
        misses out of thin air)."""
        trace = _trace_from_seed(seed, 300)
        base = run_simulation(trace, _config(), None, name="base")
        sms = run_simulation(trace, _config(), _PREFETCHERS["sms"], name="sms")
        assert sms.l1_read_misses + sms.l1_read_covered <= int(base.l1_read_misses * 1.3) + 5
