"""End-to-end tests for the asyncio simulation service (repro.serve.server).

The server is booted in-process on a Unix socket and driven with asyncio
stream clients, so coalescing behaviour is observed deterministically: all
requests of a wave are written before any reply is awaited, and the pool's
execution counter tells exactly how many simulations actually ran.
"""

from __future__ import annotations

import asyncio
import json
import shutil
import tempfile
import threading

import pytest

from repro.experiments import fig10_region_size as fig10
from repro.serve import ServeClient, SimulationServer, WorkerPool, jobs
from repro.serve.protocol import BAD_REQUEST, BUSY
from repro.simulation.result_cache import SweepResultCache

SWEEP_OLTP = {"verb": "sweep", "figure": "fig10", "item": "OLTP", "scale": 0.05, "num_cpus": 2}
SWEEP_DSS = {"verb": "sweep", "figure": "fig10", "item": "DSS", "scale": 0.05, "num_cpus": 2}


@pytest.fixture
def socket_dir():
    # A private short-lived dir in the system tempdir: pytest's tmp_path can
    # exceed the ~108-byte AF_UNIX path limit.
    path = tempfile.mkdtemp(prefix="repro-serve-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


async def _ask(socket_path: str, payload: dict) -> dict:
    reader, writer = await asyncio.open_unix_connection(socket_path)
    try:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


class TestServiceEndToEnd:
    def test_coalescing_caching_and_byte_identical_results(self, tmp_path, socket_dir):
        socket_path = f"{socket_dir}/serve.sock"
        cache_dir = tmp_path / "cache"

        async def scenario():
            pool = WorkerPool(workers=2, cache_dir=str(cache_dir))
            server = SimulationServer(
                pool,
                socket_path=socket_path,
                max_queue=8,
                cache=SweepResultCache(directory=cache_dir),
            )
            await server.start()
            try:
                # Wave 1: five identical + one distinct request, all written
                # before any reply arrives.
                replies = await asyncio.gather(
                    *[_ask(socket_path, dict(SWEEP_OLTP, id=i)) for i in range(5)],
                    _ask(socket_path, dict(SWEEP_DSS, id="dss")),
                )
                oltp_replies, dss_reply = replies[:5], replies[5]
                status = (await _ask(socket_path, {"verb": "status"}))["result"]
                # Wave 2: a warm repeat must come from the cache without
                # re-entering the pool.
                warm = await _ask(socket_path, SWEEP_OLTP)
                warm_status = (await _ask(socket_path, {"verb": "status"}))["result"]
                return oltp_replies, dss_reply, status, warm, warm_status
            finally:
                await server.stop()

        oltp_replies, dss_reply, status, warm, warm_status = asyncio.run(scenario())

        assert all(reply["ok"] for reply in oltp_replies) and dss_reply["ok"]
        # Coalescing: 6 concurrent requests over 2 distinct keys = exactly
        # 2 underlying executions.
        assert status["pool"]["executed"] == 2
        assert status["counters"]["executed"] == 2
        # Of the 5 identical requests, one executed; the other 4 either
        # coalesced onto it or (having arrived after completion) hit the cache.
        followers = [r for r in oltp_replies if r["coalesced"] or r["cached"]]
        assert len(followers) == 4
        payloads = {json.dumps(r["result"], sort_keys=True) for r in oltp_replies}
        assert len(payloads) == 1

        # Warm repeat: served from cache, pool untouched.
        assert warm["ok"] and warm["cached"] and not warm["coalesced"]
        assert warm_status["pool"]["executed"] == 2
        assert warm_status["counters"]["cache_hits"] >= 1

        # Byte-identical to the direct (non-served) engine path.
        direct = fig10.run_category(
            "OLTP", region_sizes=fig10.REGION_SIZES, scale=0.05, num_cpus=2
        )
        assert json.dumps(oltp_replies[0]["result"], sort_keys=True) == json.dumps(
            jobs.jsonify(direct), sort_keys=True
        )

    def test_simulate_verb_and_blocking_client(self, tmp_path, socket_dir):
        socket_path = f"{socket_dir}/serve.sock"

        async def scenario():
            pool = WorkerPool(workers=1, cache_dir=str(tmp_path / "cache"))
            server = SimulationServer(pool, socket_path=socket_path, max_queue=4)
            await server.start()
            try:
                # Drive the blocking client from a worker thread so it can
                # talk to the in-process server.
                def client_side():
                    with ServeClient(socket_path=socket_path) as client:
                        result = client.call(
                            "simulate", workload="web-apache", cpus=2, accesses_per_cpu=1200
                        )
                        stats = client.call("cache_stats")
                    return result, stats

                return await asyncio.get_running_loop().run_in_executor(None, client_side)
            finally:
                await server.stop()

        result, stats = asyncio.run(scenario())
        direct = jobs.run_simulate("web-apache", cpus=2, accesses_per_cpu=1200)
        assert result == jobs.jsonify(direct)
        assert stats["sweep"]["entries"] == 1  # the simulate result was stored
        assert "server_cache" in stats

    def test_malformed_and_invalid_requests(self, tmp_path, socket_dir):
        socket_path = f"{socket_dir}/serve.sock"

        async def scenario():
            pool = WorkerPool(workers=1, cache_dir=str(tmp_path / "cache"))
            server = SimulationServer(pool, socket_path=socket_path, max_queue=4)
            await server.start()
            try:
                reader, writer = await asyncio.open_unix_connection(socket_path)
                writer.write(b"this is not json\n")
                await writer.drain()
                bad_json = json.loads(await reader.readline())
                # The connection survives a bad request.
                writer.write((json.dumps({"verb": "sweep", "figure": "fig10",
                                          "item": "no-such-category"}) + "\n").encode())
                await writer.drain()
                bad_item = json.loads(await reader.readline())
                writer.write((json.dumps({"verb": "status", "id": "after"}) + "\n").encode())
                await writer.drain()
                after = json.loads(await reader.readline())
                writer.close()
                return bad_json, bad_item, after
            finally:
                await server.stop()

        bad_json, bad_item, after = asyncio.run(scenario())
        assert not bad_json["ok"] and bad_json["code"] == BAD_REQUEST
        assert not bad_item["ok"] and "no-such-category" in bad_item["error"]
        assert after["ok"] and after["id"] == "after"


class _BlockingPool:
    """Pool stand-in whose single job blocks until the test releases it."""

    def __init__(self):
        self.release = threading.Event()
        self.executed = 0

    def start(self):
        return self

    def execute(self, spec, task_timeout=None):
        assert self.release.wait(timeout=30)
        self.executed += 1
        return {"item": spec.get("item") or spec.get("workload")}

    def stats(self):
        return {"workers": 1, "executed": self.executed}

    def shutdown(self):
        self.release.set()


class TestBackpressure:
    def test_busy_reply_when_inflight_bound_reached(self, tmp_path, socket_dir):
        socket_path = f"{socket_dir}/serve.sock"

        async def scenario():
            pool = _BlockingPool()
            server = SimulationServer(
                pool,
                socket_path=socket_path,
                max_queue=1,
                cache=SweepResultCache(directory=tmp_path / "cache"),
            )
            await server.start()
            try:
                reader_a, writer_a = await asyncio.open_unix_connection(socket_path)
                writer_a.write((json.dumps(SWEEP_OLTP) + "\n").encode())
                await writer_a.drain()
                # Let the first request reach the (blocked) pool before the
                # second arrives.
                for _ in range(100):
                    if len(server._inflight) == 1:
                        break
                    await asyncio.sleep(0.01)
                assert len(server._inflight) == 1
                busy_reply = await _ask(socket_path, SWEEP_DSS)
                # An identical request coalesces instead of being refused.
                reader_c, writer_c = await asyncio.open_unix_connection(socket_path)
                writer_c.write((json.dumps(SWEEP_OLTP) + "\n").encode())
                await writer_c.drain()
                await asyncio.sleep(0.05)
                pool.release.set()
                first_reply = json.loads(await reader_a.readline())
                coalesced_reply = json.loads(await reader_c.readline())
                writer_a.close()
                writer_c.close()
                return busy_reply, first_reply, coalesced_reply, pool.executed
            finally:
                await server.stop()

        busy_reply, first_reply, coalesced_reply, executed = asyncio.run(scenario())
        assert not busy_reply["ok"] and busy_reply["code"] == BUSY
        assert first_reply["ok"] and not first_reply["coalesced"]
        assert coalesced_reply["ok"] and coalesced_reply["coalesced"]
        assert executed == 1
