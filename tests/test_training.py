"""Tests for repro.core.training (AGT / logical-sectored / decoupled-sectored trainers)."""

import pytest

from repro.core.region import RegionGeometry
from repro.core.training import (
    AGTTrainer,
    DecoupledSectoredTrainer,
    LogicalSectoredTrainer,
    make_trainer,
)

REGION = 0x40000


class TestAGTTrainer:
    def test_trigger_and_completion(self, geometry):
        trainer = AGTTrainer(geometry)
        response = trainer.observe_access(0x400, REGION + 3 * 64)
        assert response.is_trigger
        assert response.trigger.offset == 3
        trainer.observe_access(0x404, REGION + 5 * 64)
        response = trainer.observe_removal(REGION + 3 * 64)
        assert len(response.completed) == 1
        assert response.completed[0].pattern.offsets() == [3, 5]

    def test_no_forced_evictions(self, geometry):
        trainer = AGTTrainer(geometry)
        for i in range(200):
            response = trainer.observe_access(0x400, REGION + i * geometry.region_size)
            assert not response.forced_evictions

    def test_drain(self, geometry):
        trainer = AGTTrainer(geometry)
        trainer.observe_access(0x400, REGION)
        trainer.observe_access(0x404, REGION + 64)
        drained = trainer.drain()
        assert len(drained) == 1


class TestLogicalSectoredTrainer:
    def make(self, geometry, capacity=8 * 2048, assoc=2):
        return LogicalSectoredTrainer(geometry, cache_capacity=capacity, cache_associativity=assoc)

    def test_trigger_on_new_sector(self, geometry):
        trainer = self.make(geometry)
        response = trainer.observe_access(0x400, REGION + 2 * 64)
        assert response.is_trigger
        assert response.trigger.offset == 2

    def test_no_trigger_on_existing_sector(self, geometry):
        trainer = self.make(geometry)
        trainer.observe_access(0x400, REGION)
        response = trainer.observe_access(0x404, REGION + 64)
        assert not response.is_trigger

    def test_conflict_completes_victim_generation(self, geometry):
        # 4 sectors, 2-way -> 2 sets; regions spaced by 2 regions collide.
        trainer = self.make(geometry, capacity=4 * 2048, assoc=2)
        stride = 2 * geometry.region_size
        trainer.observe_access(0x400, REGION)
        trainer.observe_access(0x404, REGION + 64)
        trainer.observe_access(0x400, REGION + stride)
        response = trainer.observe_access(0x400, REGION + 2 * stride)
        completed_regions = [c.region for c in response.completed]
        assert REGION in completed_regions
        # Logical sectored training never constrains the real cache.
        assert not response.forced_evictions

    def test_removal_ends_generation(self, geometry):
        trainer = self.make(geometry)
        trainer.observe_access(0x400, REGION)
        trainer.observe_access(0x404, REGION + 64)
        response = trainer.observe_removal(REGION + 64)
        assert len(response.completed) == 1
        assert response.completed[0].pattern.offsets() == [0, 1]

    def test_removal_of_untracked_block_is_noop(self, geometry):
        trainer = self.make(geometry)
        response = trainer.observe_removal(0x999000)
        assert not response.completed

    def test_drain(self, geometry):
        trainer = self.make(geometry)
        trainer.observe_access(0x400, REGION)
        assert len(trainer.drain()) == 1


class TestDecoupledSectoredTrainer:
    def test_conflict_forces_cache_evictions(self, geometry):
        trainer = DecoupledSectoredTrainer(
            geometry, cache_capacity=4 * 2048, cache_associativity=2
        )
        stride = 2 * geometry.region_size
        trainer.observe_access(0x400, REGION + 0 * 64)
        trainer.observe_access(0x404, REGION + 3 * 64)
        trainer.observe_access(0x400, REGION + stride)
        response = trainer.observe_access(0x400, REGION + 2 * stride)
        assert set(response.forced_evictions) == {REGION, REGION + 3 * 64}


class TestFactory:
    def test_agt(self, geometry):
        assert isinstance(make_trainer("agt", geometry), AGTTrainer)

    def test_logical(self, geometry):
        assert isinstance(make_trainer("logical-sectored", geometry), LogicalSectoredTrainer)
        assert isinstance(make_trainer("LS", geometry), LogicalSectoredTrainer)

    def test_decoupled(self, geometry):
        assert isinstance(make_trainer("ds", geometry), DecoupledSectoredTrainer)

    def test_unknown(self, geometry):
        with pytest.raises(ValueError):
            make_trainer("sector", geometry)
