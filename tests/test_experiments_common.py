"""Tests for repro.experiments.common and the table-1 runner."""

import pytest

from repro.core import SpatialMemoryStreaming
from repro.experiments import common
from repro.experiments import tab01_config
from repro.prefetch import GlobalHistoryBuffer, NullPrefetcher, StridePrefetcher
from repro.workloads.suite import APPLICATION_NAMES


class TestTraceBuilding:
    def test_scaled_trace_length(self):
        trace, metadata = common.build_trace("ocean", num_cpus=2, scale=0.1)
        assert metadata.name == "ocean"
        assert len(trace) == 2 * int(common.ACCESSES_PER_CPU["ocean"] * 0.1)

    def test_minimum_length_enforced(self):
        trace, _ = common.build_trace("ocean", num_cpus=1, scale=0.0001)
        assert len(trace) == 1000

    def test_caching_returns_equal_traces(self):
        a, _ = common.build_trace("em3d", num_cpus=2, scale=0.05)
        b, _ = common.build_trace("em3d", num_cpus=2, scale=0.05)
        assert a == b

    def test_every_application_has_a_scale(self):
        assert set(common.ACCESSES_PER_CPU) == set(APPLICATION_NAMES)

    def test_representative_trace(self):
        trace, metadata = common.representative_trace("OLTP", num_cpus=2, scale=0.05)
        assert metadata.category == "OLTP"
        assert trace

    def test_representative_unknown_category(self):
        with pytest.raises(ValueError):
            common.representative_trace("HPC")


class TestTraceDiskCache:
    @pytest.fixture
    def enabled_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        previous = common.set_trace_cache(True)
        common._cached_trace.cache_clear()
        yield tmp_path
        common.set_trace_cache(previous)
        common._cached_trace.cache_clear()

    def test_disabled_by_default_in_library_use(self):
        assert not common.trace_cache_enabled()

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv(common.TRACE_CACHE_ENV, "1")
        assert common.trace_cache_enabled()
        previous = common.set_trace_cache(False)
        try:
            assert not common.trace_cache_enabled()  # explicit override wins
        finally:
            common.set_trace_cache(previous)

    def test_miss_writes_strc_then_hit_replays_identically(self, enabled_cache):
        generated, _ = common.build_trace("oltp-db2", num_cpus=2, scale=0.05)
        files = list((enabled_cache / "traces").glob("oltp-db2-c2-*.strc"))
        assert len(files) == 1
        # Force the disk path: clear the in-process layer and rebuild.
        common._cached_trace.cache_clear()
        replayed, metadata = common.build_trace("oltp-db2", num_cpus=2, scale=0.05)
        assert replayed == generated
        assert metadata.name == "oltp-db2"

    def test_corrupt_entry_regenerates(self, enabled_cache):
        generated, _ = common.build_trace("em3d", num_cpus=2, scale=0.05)
        (path,) = (enabled_cache / "traces").glob("em3d-*.strc")
        path.write_bytes(b"garbage not a trace")
        common._cached_trace.cache_clear()
        with pytest.warns(RuntimeWarning):
            replayed, _ = common.build_trace("em3d", num_cpus=2, scale=0.05)
        assert replayed == generated

    def test_stale_fingerprint_entries_pruned(self, enabled_cache):
        stale = enabled_cache / "traces" / "sparse-c2-a1250-s7-0123456789abcdef.strc"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"old fingerprint leftovers")
        # Same key under a different seed must survive the prune.
        other = enabled_cache / "traces" / "sparse-c2-a1250-s70-0123456789abcdef.strc"
        other.write_bytes(b"different key")
        common.build_trace("sparse", num_cpus=2, scale=0.05, seed=7)
        assert not stale.exists()
        assert other.exists()
        assert len(list((enabled_cache / "traces").glob("sparse-c2-a1250-s7-*.strc"))) == 1

    def test_key_includes_parameters(self, enabled_cache):
        common.build_trace("ocean", num_cpus=2, scale=0.05, seed=7)
        common.build_trace("ocean", num_cpus=2, scale=0.05, seed=8)
        common.build_trace("ocean", num_cpus=1, scale=0.05, seed=7)
        assert len(list((enabled_cache / "traces").glob("ocean-*.strc"))) == 3


class TestFactories:
    def test_sms_factory(self):
        assert isinstance(common.sms_factory()(0), SpatialMemoryStreaming)

    def test_ghb_factory(self):
        ghb = common.ghb_factory(buffer_entries=512)(0)
        assert isinstance(ghb, GlobalHistoryBuffer)
        assert ghb.config.buffer_entries == 512

    def test_stride_factory(self):
        assert isinstance(common.stride_factory()(0), StridePrefetcher)

    def test_null_factory(self):
        assert isinstance(common.null_factory()(0), NullPrefetcher)


class TestSimulateHelpers:
    def test_simulate_pair(self):
        trace, metadata = common.build_trace("oltp-db2", num_cpus=2, scale=0.05)
        config = common.default_config(num_cpus=2)
        base, sms = common.simulate_pair(
            trace, common.sms_factory(), config=config, name="t", metadata=metadata
        )
        assert base.accesses == sms.accesses
        assert base.l1_read_covered == 0
        assert sms.workload is metadata

    def test_application_names_filtered(self):
        assert common.application_names(["Web"]) == ["web-apache", "web-zeus"]
        assert len(common.application_names()) == 11


class TestTable1:
    def test_system_table_matches_paper(self):
        table = tab01_config.system_table()
        rows = {row[0]: row[1] for row in table.rows}
        assert rows["processors"] == 16
        assert rows["clock (GHz)"] == 4.0
        assert rows["L1 capacity (kB)"] == 64
        assert rows["L2 capacity (MB)"] == 8
        assert rows["L2 hit latency (cycles)"] == 25
        assert rows["memory latency (ns)"] == 60.0
        assert rows["interconnect"] == "4x4 2D torus"

    def test_application_table_lists_all_apps(self):
        table = tab01_config.application_table()
        assert len(table.rows) == 11

    def test_run_returns_both_tables(self):
        system, applications = tab01_config.run()
        assert system.rows and applications.rows
