"""Tests for repro.experiments.common and the table-1 runner."""

import pytest

from repro.core import SpatialMemoryStreaming
from repro.experiments import common
from repro.experiments import tab01_config
from repro.prefetch import GlobalHistoryBuffer, NullPrefetcher, StridePrefetcher
from repro.workloads.suite import APPLICATION_NAMES


class TestTraceBuilding:
    def test_scaled_trace_length(self):
        trace, metadata = common.build_trace("ocean", num_cpus=2, scale=0.1)
        assert metadata.name == "ocean"
        assert len(trace) == 2 * int(common.ACCESSES_PER_CPU["ocean"] * 0.1)

    def test_minimum_length_enforced(self):
        trace, _ = common.build_trace("ocean", num_cpus=1, scale=0.0001)
        assert len(trace) == 1000

    def test_caching_returns_equal_traces(self):
        a, _ = common.build_trace("em3d", num_cpus=2, scale=0.05)
        b, _ = common.build_trace("em3d", num_cpus=2, scale=0.05)
        assert a == b

    def test_every_application_has_a_scale(self):
        assert set(common.ACCESSES_PER_CPU) == set(APPLICATION_NAMES)

    def test_representative_trace(self):
        trace, metadata = common.representative_trace("OLTP", num_cpus=2, scale=0.05)
        assert metadata.category == "OLTP"
        assert trace

    def test_representative_unknown_category(self):
        with pytest.raises(ValueError):
            common.representative_trace("HPC")


class TestFactories:
    def test_sms_factory(self):
        assert isinstance(common.sms_factory()(0), SpatialMemoryStreaming)

    def test_ghb_factory(self):
        ghb = common.ghb_factory(buffer_entries=512)(0)
        assert isinstance(ghb, GlobalHistoryBuffer)
        assert ghb.config.buffer_entries == 512

    def test_stride_factory(self):
        assert isinstance(common.stride_factory()(0), StridePrefetcher)

    def test_null_factory(self):
        assert isinstance(common.null_factory()(0), NullPrefetcher)


class TestSimulateHelpers:
    def test_simulate_pair(self):
        trace, metadata = common.build_trace("oltp-db2", num_cpus=2, scale=0.05)
        config = common.default_config(num_cpus=2)
        base, sms = common.simulate_pair(
            trace, common.sms_factory(), config=config, name="t", metadata=metadata
        )
        assert base.accesses == sms.accesses
        assert base.l1_read_covered == 0
        assert sms.workload is metadata

    def test_application_names_filtered(self):
        assert common.application_names(["Web"]) == ["web-apache", "web-zeus"]
        assert len(common.application_names()) == 11


class TestTable1:
    def test_system_table_matches_paper(self):
        table = tab01_config.system_table()
        rows = {row[0]: row[1] for row in table.rows}
        assert rows["processors"] == 16
        assert rows["clock (GHz)"] == 4.0
        assert rows["L1 capacity (kB)"] == 64
        assert rows["L2 capacity (MB)"] == 8
        assert rows["L2 hit latency (cycles)"] == 25
        assert rows["memory latency (ns)"] == 60.0
        assert rows["interconnect"] == "4x4 2D torus"

    def test_application_table_lists_all_apps(self):
        table = tab01_config.application_table()
        assert len(table.rows) == 11

    def test_run_returns_both_tables(self):
        system, applications = tab01_config.run()
        assert system.rows and applications.rows
