"""Tests for repro.experiments.report (Markdown report generation)."""

from repro.analysis.reporting import ResultTable
from repro.experiments.report import (
    ClaimComparison,
    ExperimentReport,
    ExperimentSection,
    table_to_markdown,
)


def _table():
    table = ResultTable(title="coverage", headers=["app", "coverage"])
    table.add_row("oltp", 0.52)
    table.add_row("sparse", 0.96)
    return table


class TestTableToMarkdown:
    def test_structure(self):
        text = table_to_markdown(_table(), caption="Coverage")
        lines = text.splitlines()
        assert lines[0] == "**Coverage**"
        assert lines[2].startswith("| app |")
        assert "| --- |" in lines[3]
        assert "| sparse | 0.960 |" in lines

    def test_without_caption(self):
        text = table_to_markdown(_table())
        assert text.startswith("| app |")


class TestExperimentSection:
    def test_claims_and_tables_rendered(self):
        section = ExperimentSection(identifier="fig11", title="SMS vs GHB", summary="Off-chip coverage.")
        section.add_claim("SMS beats GHB on OLTP", "55% vs 20%", "52% vs 1%", True)
        section.add_claim("GHB matches SMS on DSS", "~equal", "0.87 vs 0.92", True, note="close")
        section.add_table(_table())
        text = section.to_markdown()
        assert text.startswith("## fig11: SMS vs GHB")
        assert "reproduced" in text
        assert "coverage" in text
        assert section.reproduced_count == 2

    def test_deviating_claim_marked(self):
        section = ExperimentSection(identifier="fig6", title="Indexing")
        section.add_claim("Address ~ PC+offset on OLTP", "similar", "0.18 vs 0.53", False)
        assert "deviates" in section.to_markdown()
        assert section.reproduced_count == 0


class TestExperimentReport:
    def _report(self):
        report = ExperimentReport(title="Reproduction", preamble="Paper vs measured.")
        section = ExperimentSection(identifier="fig12", title="Speedup")
        section.add_claim("geomean > 1", "1.37", "1.52", True)
        report.add_section(section)
        return report

    def test_markdown_contains_summary_and_sections(self):
        text = self._report().to_markdown()
        assert text.startswith("# Reproduction")
        assert "**Summary**" in text
        assert "## fig12: Speedup" in text

    def test_claim_counting(self):
        report = self._report()
        assert report.total_claims == 1
        assert report.reproduced_claims == 1

    def test_section_lookup(self):
        report = self._report()
        assert report.section("fig12") is not None
        assert report.section("fig99") is None

    def test_write(self, tmp_path):
        path = self._report().write(tmp_path / "EXPERIMENTS.md")
        assert path.exists()
        assert "# Reproduction" in path.read_text()


class TestClaimComparison:
    def test_as_row(self):
        claim = ClaimComparison("c", "1", "2", False, note="n")
        assert claim.as_row() == ["c", "1", "2", "deviates", "n"]
