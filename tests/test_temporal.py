"""Tests for repro.prefetch.temporal (Markov pair-correlation baseline)."""

import pytest

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.cache import AccessOutcome, AccessResult
from repro.memory.hierarchy import MemoryLevel
from repro.prefetch.temporal import TemporalCorrelationPrefetcher
from repro.trace.record import MemoryAccess


def miss(address, pc=0x400):
    record = MemoryAccess(pc=pc, address=address)
    result = AccessResult(outcome=AccessOutcome.MISS, block_addr=address & ~63)
    return record, AccessOutcomeRecord(record=record, level=MemoryLevel.MEMORY, l1_result=result)


def hit(address, pc=0x400):
    record = MemoryAccess(pc=pc, address=address)
    result = AccessResult(outcome=AccessOutcome.HIT, block_addr=address & ~63)
    return record, AccessOutcomeRecord(record=record, level=MemoryLevel.L1, l1_result=result)


A, B, C, D = 0x10000, 0x20000, 0x30000, 0x40000


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TemporalCorrelationPrefetcher(table_entries=0)
        with pytest.raises(ValueError):
            TemporalCorrelationPrefetcher(degree=0)
        with pytest.raises(ValueError):
            TemporalCorrelationPrefetcher(successors_per_entry=0)


class TestCorrelation:
    def test_repeated_pair_predicted(self):
        prefetcher = TemporalCorrelationPrefetcher(degree=1)
        # First pass records A -> B; second visit to A predicts B.
        prefetcher.on_access(*miss(A))
        prefetcher.on_access(*miss(B))
        response = prefetcher.on_access(*miss(A))
        addresses = [request.address for request in response.prefetches]
        assert addresses == [B]

    def test_chain_followed_up_to_degree(self):
        prefetcher = TemporalCorrelationPrefetcher(degree=3)
        for address in (A, B, C, D):
            prefetcher.on_access(*miss(address))
        response = prefetcher.on_access(*miss(A))
        addresses = [request.address for request in response.prefetches]
        assert addresses[:3] == [B, C, D]

    def test_prefetches_target_l2_only(self):
        prefetcher = TemporalCorrelationPrefetcher()
        prefetcher.on_access(*miss(A))
        prefetcher.on_access(*miss(B))
        response = prefetcher.on_access(*miss(A))
        assert all(not request.target_l1 for request in response.prefetches)

    def test_no_prediction_for_unseen_address(self):
        prefetcher = TemporalCorrelationPrefetcher()
        assert not prefetcher.on_access(*miss(A)).prefetches

    def test_hits_do_not_train(self):
        prefetcher = TemporalCorrelationPrefetcher()
        prefetcher.on_access(*miss(A))
        prefetcher.on_access(*hit(B))
        prefetcher.on_access(*miss(C))
        response = prefetcher.on_access(*miss(A))
        addresses = [request.address for request in response.prefetches]
        assert B not in addresses

    def test_successor_list_updates_to_most_recent(self):
        prefetcher = TemporalCorrelationPrefetcher(degree=1, successors_per_entry=1)
        prefetcher.on_access(*miss(A))
        prefetcher.on_access(*miss(B))
        prefetcher.on_access(*miss(A))
        prefetcher.on_access(*miss(C))
        response = prefetcher.on_access(*miss(A))
        assert [request.address for request in response.prefetches] == [C]

    def test_interleaved_streams_break_correlation(self):
        """The weakness the paper points out: interleaving destroys pair correlation."""
        prefetcher = TemporalCorrelationPrefetcher(degree=1, successors_per_entry=1)
        # Stream A->B and stream C->D, interleaved differently on each pass.
        for sequence in ((A, C, B, D), (A, D, B, C), (C, A, D, B)):
            for address in sequence:
                prefetcher.on_access(*miss(address))
        response = prefetcher.on_access(*miss(A))
        addresses = [request.address for request in response.prefetches]
        assert addresses != [B]

    def test_storage_scales_with_addresses(self):
        prefetcher = TemporalCorrelationPrefetcher(table_entries=64)
        for i in range(200):
            prefetcher.on_access(*miss(0x100000 + i * 64))
        assert prefetcher.distinct_addresses_tracked <= 64
