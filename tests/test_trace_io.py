"""Tests for repro.trace.reader (trace file I/O)."""

import pytest

from repro.trace.reader import FileTraceStream, read_trace, stream_trace, write_trace
from repro.trace.record import AccessType, ExecutionMode, MemoryAccess


def _sample_records():
    return [
        MemoryAccess(pc=0x400, address=0x1000, access_type=AccessType.READ, cpu=0,
                     mode=ExecutionMode.USER, instruction_count=3),
        MemoryAccess(pc=0x404, address=0x1040, access_type=AccessType.WRITE, cpu=1,
                     mode=ExecutionMode.SYSTEM, instruction_count=9),
        MemoryAccess(pc=0x7fff0000, address=0xdeadbe00, access_type=AccessType.READ, cpu=15,
                     mode=ExecutionMode.USER, instruction_count=12345),
    ]


class TestRoundTrip:
    def test_write_returns_count(self, tmp_path):
        path = tmp_path / "trace.txt"
        assert write_trace(path, _sample_records()) == 3

    def test_roundtrip_preserves_fields(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = _sample_records()
        write_trace(path, records)
        loaded = read_trace(path)
        assert len(loaded) == len(records)
        for original, read_back in zip(records, loaded):
            assert read_back.pc == original.pc
            assert read_back.address == original.address
            assert read_back.access_type is original.access_type
            assert read_back.cpu == original.cpu
            assert read_back.mode is original.mode
            assert read_back.instruction_count == original.instruction_count

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mytrace.txt"
        write_trace(path, _sample_records())
        assert read_trace(path).name == "mytrace"


class TestParsing:
    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n\n0 U R 400 1000 5\n")
        assert len(read_trace(path)) == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 U R 400\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_unknown_code_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 U X 400 1000 5\n")
        with pytest.raises(ValueError):
            read_trace(path)


class TestStreaming:
    def test_stream_trace_yields_same_records_as_read_trace(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, _sample_records())
        assert list(stream_trace(path)) == list(read_trace(path))

    def test_stream_is_replayable(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, _sample_records())
        stream = stream_trace(path)
        assert list(stream) == list(stream)

    def test_stream_is_lazy(self, tmp_path):
        # Only the consumed prefix is parsed: a malformed tail is not reached.
        path = tmp_path / "trace.txt"
        path.write_text("0 U R 400 1000 5\nmalformed line\n")
        iterator = iter(stream_trace(path))
        assert next(iterator).address == 0x1000
        with pytest.raises(ValueError):
            next(iterator)

    def test_stream_from_generator_write(self, tmp_path):
        # write_trace consumes its input lazily, so a generator round-trips.
        path = tmp_path / "trace.txt"
        count = write_trace(path, (record for record in _sample_records()))
        assert count == 3
        assert len(read_trace(path)) == 3

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "bigtrace.txt"
        write_trace(path, _sample_records())
        assert stream_trace(path).name == "bigtrace"
        assert FileTraceStream(path, name="custom").name == "custom"


class TestCountRecords:
    def test_counts_records_skipping_blanks_and_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0 U R 400 1000 5\n0 U R 404 1040 6\n\n# tail\n")
        assert FileTraceStream(path).count_records() == 2

    def test_count_does_not_parse_fields(self, tmp_path):
        # Counting classifies lines only; malformed fields must not raise.
        path = tmp_path / "trace.txt"
        path.write_text("0 U R 400 1000 5\nthis is not a record\n")
        assert FileTraceStream(path).count_records() == 2

    def test_count_is_cached(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, _sample_records())
        stream = FileTraceStream(path)
        assert stream.count_records() == 3
        path.unlink()  # cached: no re-read
        assert stream.count_records() == 3
        assert stream.length_hint() == 3

    def test_explicit_length_wins(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, _sample_records())
        assert FileTraceStream(path, length=7).count_records() == 7


class TestGzip:
    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        records = _sample_records()
        assert write_trace(path, records) == 3
        loaded = read_trace(path)
        assert [r.address for r in loaded] == [r.address for r in records]

    def test_gzip_file_is_compressed(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        write_trace(path, _sample_records())
        with path.open("rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"

    def test_gzip_streaming(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        write_trace(path, _sample_records())
        stream = stream_trace(path)
        assert list(stream) == list(stream)
        assert len(list(stream)) == 3

    def test_gzip_name_strips_both_suffixes(self, tmp_path):
        path = tmp_path / "mytrace.txt.gz"
        write_trace(path, _sample_records())
        assert read_trace(path).name == "mytrace"
