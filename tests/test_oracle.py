"""Tests for repro.prefetch.oracle."""

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.core.region import RegionGeometry
from repro.memory.cache import AccessOutcome, AccessResult
from repro.memory.hierarchy import MemoryLevel
from repro.prefetch.oracle import OracleSpatialPredictor, precompute_generation_footprints
from repro.trace.record import MemoryAccess

REGION_A = 0x100000
REGION_B = 0x200000


def trace_two_generations():
    """CPU 0 accesses blocks {0, 2, 5} of region A, then {1, 3} of region B."""
    return [
        MemoryAccess(pc=0x400, address=REGION_A + 0 * 64),
        MemoryAccess(pc=0x404, address=REGION_A + 2 * 64),
        MemoryAccess(pc=0x408, address=REGION_A + 5 * 64),
        MemoryAccess(pc=0x400, address=REGION_B + 1 * 64),
        MemoryAccess(pc=0x404, address=REGION_B + 3 * 64),
    ]


class TestPrecompute:
    def test_footprints_discovered(self):
        footprints = precompute_generation_footprints(
            trace_two_generations(), RegionGeometry(), num_cpus=1
        )
        assert (0, 0) in footprints  # region A's trigger was ordinal 0
        assert (0, 3) in footprints  # region B's trigger was ordinal 3
        region_a, pattern_a = footprints[(0, 0)]
        assert region_a == REGION_A
        assert pattern_a.offsets() == [0, 2, 5]
        _, pattern_b = footprints[(0, 3)]
        assert pattern_b.offsets() == [1, 3]

    def test_per_cpu_ordinals(self):
        trace = [
            MemoryAccess(pc=0x400, address=REGION_A, cpu=1),
            MemoryAccess(pc=0x404, address=REGION_A + 64, cpu=1),
        ]
        footprints = precompute_generation_footprints(trace, RegionGeometry(), num_cpus=2)
        assert (1, 0) in footprints

    def test_single_block_generation_carries_no_opportunity(self):
        # A generation whose only access is its trigger never leaves the AGT
        # filter table, so the oracle has nothing to prefetch for it.
        trace = [MemoryAccess(pc=0x400, address=REGION_A)]
        footprints = precompute_generation_footprints(trace, RegionGeometry(), num_cpus=1)
        assert footprints == {}


class TestOraclePrefetcher:
    def _outcome(self, record):
        result = AccessResult(outcome=AccessOutcome.MISS, block_addr=record.address & ~63)
        return AccessOutcomeRecord(record=record, level=MemoryLevel.MEMORY, l1_result=result)

    def test_replays_footprint_at_trigger(self):
        trace = trace_two_generations()
        footprints = precompute_generation_footprints(trace, RegionGeometry(), num_cpus=1)
        oracle = OracleSpatialPredictor(footprints, cpu=0)
        response = oracle.on_access(trace[0], self._outcome(trace[0]))
        addresses = sorted(request.address for request in response.prefetches)
        # The trigger block itself is excluded from the stream.
        assert addresses == [REGION_A + 2 * 64, REGION_A + 5 * 64]

    def test_non_trigger_accesses_prefetch_nothing(self):
        trace = trace_two_generations()
        footprints = precompute_generation_footprints(trace, RegionGeometry(), num_cpus=1)
        oracle = OracleSpatialPredictor(footprints, cpu=0)
        oracle.on_access(trace[0], self._outcome(trace[0]))
        response = oracle.on_access(trace[1], self._outcome(trace[1]))
        assert not response.prefetches

    def test_second_generation_replayed(self):
        trace = trace_two_generations()
        footprints = precompute_generation_footprints(trace, RegionGeometry(), num_cpus=1)
        oracle = OracleSpatialPredictor(footprints, cpu=0)
        responses = [oracle.on_access(record, self._outcome(record)) for record in trace]
        addresses = [request.address for request in responses[3].prefetches]
        assert addresses == [REGION_B + 3 * 64]
