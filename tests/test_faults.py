"""Tests for repro.faults (deterministic fault injection)."""

from __future__ import annotations

import errno

import pytest

from repro import faults
from repro._env import scoped_env
from repro.faults import FAULTS_ENV, FaultPlan, InjectedFault


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    token = faults.install_plan(None)
    yield
    faults.install_plan(token)


class TestParsing:
    def test_single_entry(self):
        plan = FaultPlan.parse("sweep.point:error@3")
        (spec,) = plan.specs
        assert spec.site == "sweep.point"
        assert spec.kind == "error"
        assert spec.occurrences == (3,)
        assert not spec.every and spec.after == 0

    def test_when_defaults_to_first_occurrence(self):
        (spec,) = FaultPlan.parse("cache.put:torn").specs
        assert spec.occurrences == (1,)

    def test_every_list_and_onward(self):
        every, listed, onward = FaultPlan.parse(
            "a:error@*;b:error@2,5;c:error@3+"
        ).specs
        assert every.every
        assert listed.occurrences == (2, 5)
        assert onward.after == 3

    def test_params(self):
        (spec,) = FaultPlan.parse("pool.worker:hang@2:seconds=60").specs
        assert spec.param("seconds", "3600") == "60"
        assert spec.param("missing", "x") == "x"

    def test_multiple_entries_and_whitespace(self):
        plan = FaultPlan.parse(" cache.put:torn@1 ; pool.worker:crash@2 ")
        assert [s.site for s in plan.specs] == ["cache.put", "pool.worker"]

    @pytest.mark.parametrize(
        "text",
        [
            "noseparator",
            "site:unknownkind@1",
            "site:error@0",
            "site:error@x",
            "site:hang@1:naked",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)


class TestOccurrenceSelection:
    def test_counts_are_per_site(self):
        plan = FaultPlan.parse("a:error@2")
        assert plan.hit("b") is None  # does not advance site a
        assert plan.hit("a") is None  # a's 1st
        assert plan.hit("a") is not None  # a's 2nd fires
        assert plan.hit("a") is None  # the 3rd does not
        assert plan.counts() == {"a": 3, "b": 1}

    def test_deterministic_across_identical_plans(self):
        fired = []
        for _ in range(2):
            plan = FaultPlan.parse("s:error@2,4")
            fired.append([plan.hit("s") is not None for _ in range(5)])
        assert fired[0] == fired[1] == [False, True, False, True, False]

    def test_onward_fires_from_threshold(self):
        plan = FaultPlan.parse("s:error@3+")
        assert [plan.hit("s") is not None for _ in range(5)] == [
            False, False, True, True, True,
        ]


class TestActivation:
    def test_no_plan_no_fault(self):
        faults.fire("anything")  # must be a no-op

    def test_installed_plan_fires(self):
        faults.install_plan("x:error@1")
        with pytest.raises(InjectedFault):
            faults.fire("x")

    def test_install_token_restores(self):
        outer = faults.install_plan("x:error@*")
        inner = faults.install_plan(None)
        faults.fire("x")  # disabled inside the inner scope
        faults.install_plan(inner)
        with pytest.raises(InjectedFault):
            faults.fire("x")
        faults.install_plan(outer)

    def test_env_plan_activates_and_caches_counters(self):
        faults.install_plan(faults._PLAN_UNSET)  # re-enable env activation
        with scoped_env({FAULTS_ENV: "y:error@2"}):
            faults.fire("y")  # 1st hit: silent
            with pytest.raises(InjectedFault):
                faults.fire("y")  # 2nd hit on the same cached plan instance

    def test_check_returns_mangling_spec_without_acting(self):
        faults.install_plan("w:torn@1")
        spec = faults.check("w")
        assert spec is not None and spec.kind == "torn"
        faults.act(spec)  # mangling kinds have no generic action


class TestActions:
    def test_error(self):
        with pytest.raises(InjectedFault):
            faults.act(FaultPlan.parse("s:error@1").specs[0])

    def test_disconnect(self):
        with pytest.raises(ConnectionResetError):
            faults.act(FaultPlan.parse("s:disconnect@1").specs[0])

    def test_enospc(self):
        with pytest.raises(OSError) as excinfo:
            faults.act(FaultPlan.parse("s:enospc@1").specs[0])
        assert excinfo.value.errno == errno.ENOSPC


class TestMangle:
    def test_torn_truncates(self):
        spec = FaultPlan.parse("s:torn@1").specs[0]
        assert faults.mangle(spec, b"0123456789") == b"01234"
        assert faults.mangle(spec, b"x") == b"x"[:1]

    def test_flip_corrupts_one_byte(self):
        spec = FaultPlan.parse("s:flip@1").specs[0]
        data = b"0123456789"
        mangled = faults.mangle(spec, data)
        assert len(mangled) == len(data)
        assert sum(a != b for a, b in zip(mangled, data)) == 1

    def test_flip_offset_param(self):
        spec = FaultPlan.parse("s:flip@1:offset=0").specs[0]
        mangled = faults.mangle(spec, b"abc")
        assert mangled[0] != ord("a") and mangled[1:] == b"bc"

    def test_flip_empty_payload(self):
        spec = FaultPlan.parse("s:flip@1").specs[0]
        assert faults.mangle(spec, b"") == b""
