"""Tests for repro.simulation.result_cache (sweep result memoization)."""

import pickle

import pytest

from repro.simulation.result_cache import (
    QUARANTINE_SUBDIR,
    CacheStats,
    SweepResultCache,
    code_fingerprint,
    default_cache,
    set_default_cache,
)
from repro.simulation.sweep import SweepRunner, SweepTask, sweep_map


def square(value, offset=0):
    """Module-level so tasks have a stable importable identity."""
    return value * value + offset


CALLS = []


def tracked(value):
    CALLS.append(value)
    return value + 100


@pytest.fixture(autouse=True)
def _clean_ambient():
    yield
    # Tests must not leak an ambient cache into the rest of the suite.
    import repro.simulation.result_cache as module

    module._ambient_cache = module._AMBIENT_UNSET


class TestFingerprint:
    def test_same_task_same_digest(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        a = cache.fingerprint(square, (3,), {"offset": 1})
        b = cache.fingerprint(square, (3,), {"offset": 1})
        assert a == b is not None

    def test_different_args_different_digest(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        assert cache.fingerprint(square, (3,), {}) != cache.fingerprint(square, (4,), {})
        assert cache.fingerprint(square, (3,), {}) != cache.fingerprint(square, (3,), {"offset": 1})

    def test_type_tagged_encoding(self, tmp_path):
        # 1 and 1.0 and "1" must not collide.
        cache = SweepResultCache(tmp_path)
        digests = {
            cache.fingerprint(square, (1,), {}),
            cache.fingerprint(square, (1.0,), {}),
            cache.fingerprint(square, ("1",), {}),
        }
        assert len(digests) == 3

    def test_lambda_is_uncacheable(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        assert cache.fingerprint(lambda v: v, (1,), {}) is None
        assert cache.stats.skipped == 1

    def test_unencodable_argument_is_uncacheable(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        assert cache.fingerprint(square, (object(),), {}) is None

    def test_code_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestStore:
    def test_get_put_roundtrip(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        digest = cache.fingerprint(square, (5,), {})
        hit, _ = cache.get(digest)
        assert not hit
        cache.put(digest, {"answer": 25})
        hit, value = cache.get(digest)
        assert hit and value == {"answer": 25}
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1)

    def test_corrupt_entry_treated_as_miss_and_quarantined(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        digest = cache.fingerprint(square, (5,), {})
        cache.put(digest, 25)
        entry = cache._entry_path(digest)
        entry.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="quarantining corrupt sweep cache entry"):
            hit, _ = cache.get(digest)
        assert not hit
        assert not entry.exists()
        quarantined = tmp_path / QUARANTINE_SUBDIR / entry.name
        assert quarantined.read_bytes() == b"not a pickle"
        assert cache.stats.quarantined == 1

    def test_checksum_detects_single_flipped_byte(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        digest = cache.fingerprint(square, (6,), {})
        cache.put(digest, {"value": 36})
        entry = cache._entry_path(digest)
        data = bytearray(entry.read_bytes())
        data[-1] ^= 0xFF  # still a loadable pickle prefix? checksum must catch it
        entry.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="quarantining corrupt sweep cache entry"):
            hit, _ = cache.get(digest)
        assert not hit
        # The entry regenerates on the next put/get cycle.
        cache.put(digest, {"value": 36})
        hit, value = cache.get(digest)
        assert hit and value == {"value": 36}

    def test_legacy_unframed_entry_still_loads(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        digest = cache.fingerprint(square, (7,), {})
        entry = cache._entry_path(digest)
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(pickle.dumps(49, protocol=pickle.HIGHEST_PROTOCOL))
        hit, value = cache.get(digest)
        assert hit and value == 49

    def test_clear(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        for value in (1, 2, 3):
            cache.put(cache.fingerprint(square, (value,), {}), value)
        assert cache.clear() == 3
        assert cache.clear() == 0


class TestRunnerIntegration:
    def test_second_sweep_hits_without_executing(self, tmp_path):
        CALLS.clear()
        cache = SweepResultCache(tmp_path)
        first = SweepRunner(cache=cache).map(tracked, [1, 2, 3])
        assert first == [101, 102, 103]
        assert CALLS == [1, 2, 3]
        second = SweepRunner(cache=SweepResultCache(tmp_path)).map(tracked, [1, 2, 3])
        assert second == first
        assert CALLS == [1, 2, 3]  # nothing re-executed

    def test_partial_hits_execute_only_misses(self, tmp_path):
        CALLS.clear()
        cache = SweepResultCache(tmp_path)
        SweepRunner(cache=cache).map(tracked, [1, 2])
        CALLS.clear()
        results = SweepRunner(cache=SweepResultCache(tmp_path)).map(tracked, [1, 2, 3, 4])
        assert results == [101, 102, 103, 104]
        assert CALLS == [3, 4]

    def test_parallel_sweep_uses_cache(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        items = list(range(8))
        parallel = SweepRunner(max_workers=2, cache=cache).map(square, items, offset=3)
        assert parallel == [square(i, offset=3) for i in items]
        warm_cache = SweepResultCache(tmp_path)
        warm = SweepRunner(max_workers=2, cache=warm_cache).map(square, items, offset=3)
        assert warm == parallel
        assert warm_cache.stats.hits == len(items)

    def test_uncacheable_tasks_still_run(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        results = SweepRunner(cache=cache).map(lambda v: v * 2, [1, 2])
        assert results == [2, 4]
        assert cache.stats.skipped == 2

    def test_task_error_is_not_cached(self, tmp_path):
        def boom(value):
            raise RuntimeError("boom")

        boom.__qualname__ = "boom"  # keep it cacheable-looking
        cache = SweepResultCache(tmp_path)
        with pytest.raises(RuntimeError):
            SweepRunner(cache=cache).run([SweepTask(key=1, fn=square, args=(1,)),
                                          SweepTask(key=2, fn=boom, args=(2,))])
        # Completed points are stored as they finish (that is what makes an
        # interrupted sweep resumable); the failing point stores nothing.
        assert cache.stats.stores == 1
        hit, value = cache.get(cache.fingerprint(square, (1,), {}))
        assert hit and value == 1

    def test_sweep_map_accepts_cache(self, tmp_path):
        cache = SweepResultCache(tmp_path)
        assert sweep_map(square, [2, 3], cache=cache) == [4, 9]
        assert cache.stats.stores == 2


class TestAmbientDefault:
    def test_default_is_disabled(self):
        assert default_cache() is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache is not None
        assert cache.directory == tmp_path

    def test_set_default_cache_overrides_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "1")
        set_default_cache(None)
        assert default_cache() is None
        explicit = SweepResultCache(tmp_path)
        set_default_cache(explicit)
        assert default_cache() is explicit

    def test_runner_picks_up_ambient(self, tmp_path):
        ambient = SweepResultCache(tmp_path)
        set_default_cache(ambient)
        assert SweepRunner().cache is ambient
        set_default_cache(None)
        assert SweepRunner().cache is None

    def test_set_default_cache_returns_restorable_token(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        scoped = SweepResultCache(tmp_path / "scoped")
        previous = set_default_cache(scoped)
        assert default_cache() is scoped
        set_default_cache(previous)
        # Restored to "never configured": the env default applies again.
        restored = default_cache()
        assert restored is not None and restored.directory == tmp_path
