"""Tests for the stride and next-line baseline prefetchers."""

import pytest

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.memory.cache import AccessOutcome, AccessResult
from repro.memory.hierarchy import MemoryLevel
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.trace.record import MemoryAccess


def access(pc, address, miss=True):
    record = MemoryAccess(pc=pc, address=address)
    result = AccessResult(
        outcome=AccessOutcome.MISS if miss else AccessOutcome.HIT, block_addr=address & ~63
    )
    level = MemoryLevel.MEMORY if miss else MemoryLevel.L1
    return record, AccessOutcomeRecord(record=record, level=level, l1_result=result)


class TestStridePrefetcher:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=0)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)

    def test_constant_stride_learned(self):
        prefetcher = StridePrefetcher(degree=2)
        response = None
        for i in range(5):
            response = prefetcher.on_access(*access(0x400, i * 256))
        assert response.prefetches
        addresses = [request.address for request in response.prefetches]
        assert addresses[0] == (4 * 256 + 256) & ~63

    def test_irregular_stream_not_predicted(self):
        prefetcher = StridePrefetcher()
        for address in (0, 3000, 128, 9000, 40, 7777):
            response = prefetcher.on_access(*access(0x400, address))
        assert not response.prefetches

    def test_zero_stride_ignored(self):
        prefetcher = StridePrefetcher()
        for _ in range(6):
            response = prefetcher.on_access(*access(0x400, 0x1000))
        assert not response.prefetches

    def test_table_bounded(self):
        prefetcher = StridePrefetcher(table_entries=4)
        for pc in range(20):
            prefetcher.on_access(*access(0x400 + 4 * pc, pc * 1024))
        assert len(prefetcher._table) <= 4


class TestNextLinePrefetcher:
    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)

    def test_prefetches_next_blocks_on_miss(self):
        prefetcher = NextLinePrefetcher(degree=2)
        response = prefetcher.on_access(*access(0x400, 0x1000))
        addresses = [request.address for request in response.prefetches]
        assert addresses == [0x1040, 0x1080]

    def test_no_prefetch_on_hit_by_default(self):
        prefetcher = NextLinePrefetcher()
        response = prefetcher.on_access(*access(0x400, 0x1000, miss=False))
        assert not response.prefetches

    def test_prefetch_on_every_access_option(self):
        prefetcher = NextLinePrefetcher(on_miss_only=False)
        response = prefetcher.on_access(*access(0x400, 0x1000, miss=False))
        assert response.prefetches
