"""Tests for repro.memory.mshr."""

import pytest

from repro.memory.mshr import MSHRFile


class TestMSHRFile:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_allocate_and_release(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x1000)
        assert entry is not None
        assert mshrs.occupancy == 1
        assert mshrs.outstanding(0x1000)
        mshrs.release(0x1000)
        assert mshrs.occupancy == 0

    def test_merge_secondary_miss(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000)
        entry = mshrs.allocate(0x1000)
        assert entry.merged_requests == 1
        assert mshrs.occupancy == 1
        assert mshrs.merges == 1

    def test_full_rejects_new_blocks(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(0x0) is not None
        assert mshrs.allocate(0x40) is not None
        assert mshrs.allocate(0x80) is None
        assert mshrs.rejections == 1

    def test_full_still_merges_existing(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0x0)
        assert mshrs.allocate(0x0) is not None

    def test_peak_occupancy(self):
        mshrs = MSHRFile(8)
        for i in range(5):
            mshrs.allocate(i * 64)
        mshrs.release(0)
        assert mshrs.peak_occupancy == 5

    def test_occupancy_sampling(self):
        mshrs = MSHRFile(8)
        mshrs.allocate(0)
        mshrs.sample_occupancy()
        mshrs.allocate(64)
        mshrs.sample_occupancy()
        assert mshrs.mean_occupancy == pytest.approx(1.5)

    def test_mean_occupancy_without_samples(self):
        assert MSHRFile(4).mean_occupancy == 0.0

    def test_release_unknown_returns_none(self):
        assert MSHRFile(4).release(0x1234) is None

    def test_clear(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0)
        mshrs.clear()
        assert mshrs.occupancy == 0
