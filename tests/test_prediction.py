"""Tests for repro.core.prediction (prediction registers and streaming)."""

import pytest

from repro.core.pattern import SpatialPattern
from repro.core.prediction import PredictionRegister, PredictionRegisterFile
from repro.core.region import RegionGeometry


@pytest.fixture
def file_(geometry):
    return PredictionRegisterFile(geometry, num_registers=4)


def pattern(*offsets):
    return SpatialPattern.from_offsets(32, offsets)


class TestPredictionRegister:
    def test_requests_in_offset_order(self, geometry):
        register = PredictionRegister(geometry, region=0x10000, pattern=pattern(3, 1, 7))
        offsets = []
        while not register.exhausted:
            offsets.append(register.next_request().offset)
        assert offsets == [1, 3, 7]

    def test_request_addresses(self, geometry):
        register = PredictionRegister(geometry, region=0x10000, pattern=pattern(2))
        request = register.next_request()
        assert request.address == 0x10000 + 2 * 64
        assert request.region == 0x10000

    def test_exhausted_returns_none(self, geometry):
        register = PredictionRegister(geometry, region=0x10000, pattern=pattern())
        assert register.exhausted
        assert register.next_request() is None

    def test_wrong_pattern_width_rejected(self, geometry):
        with pytest.raises(ValueError):
            PredictionRegister(geometry, region=0, pattern=SpatialPattern.empty(8))


class TestPredictionRegisterFile:
    def test_invalid_register_count(self, geometry):
        with pytest.raises(ValueError):
            PredictionRegisterFile(geometry, num_registers=0)

    def test_allocate_and_drain(self, file_):
        assert file_.allocate(0x10000, pattern(1, 2, 3))
        requests = file_.drain()
        assert len(requests) == 3
        assert file_.active_registers == 0

    def test_exclude_trigger_offset(self, file_):
        file_.allocate(0x10000, pattern(0, 1, 2), exclude_offset=1)
        offsets = {request.offset for request in file_.drain()}
        assert offsets == {0, 2}

    def test_empty_pattern_after_exclusion_allocates_nothing(self, file_):
        assert file_.allocate(0x10000, pattern(4), exclude_offset=4)
        assert file_.active_registers == 0

    def test_capacity_rejection(self, geometry):
        file_ = PredictionRegisterFile(geometry, num_registers=2)
        assert file_.allocate(0x10000, pattern(1))
        assert file_.allocate(0x20000, pattern(1))
        assert not file_.allocate(0x30000, pattern(1))
        assert file_.rejections == 1

    def test_round_robin_across_registers(self, file_):
        file_.allocate(0x10000, pattern(1, 2))
        file_.allocate(0x20000, pattern(5, 6))
        requests = file_.drain()
        regions = [request.region for request in requests]
        # Requests must alternate between the two active regions.
        assert regions[0] != regions[1]
        assert len(requests) == 4

    def test_drain_with_limit(self, file_):
        file_.allocate(0x10000, pattern(1, 2, 3, 4))
        first = file_.drain(max_requests=2)
        assert len(first) == 2
        assert file_.active_registers == 1
        second = file_.drain()
        assert len(second) == 2

    def test_cancel_region(self, file_, geometry):
        file_.allocate(0x10000, pattern(1, 2))
        file_.allocate(0x20000, pattern(3))
        cancelled = file_.cancel_region(0x10000 + 500)
        assert cancelled == 1
        requests = file_.drain()
        assert all(request.region == 0x20000 for request in requests)

    def test_cancel_absent_region_preserves_round_robin(self, file_):
        # The cursor sits on the second register after one drained request;
        # cancelling a region with no active register must not reset it, or
        # the first register would be unfairly favoured on the next drain.
        file_.allocate(0x10000, pattern(1, 2))
        file_.allocate(0x20000, pattern(5, 6))
        first = file_.drain(max_requests=1)
        assert first[0].region == 0x10000
        assert file_.cancel_region(0x90000) == 0
        second = file_.drain(max_requests=1)
        assert second[0].region == 0x20000

    def test_cancel_before_cursor_shifts_cursor(self, file_):
        # Removing a register below the cursor shifts it so the drain
        # continues from the same logical position.
        file_.allocate(0x10000, pattern(1, 2))
        file_.allocate(0x20000, pattern(5, 6))
        file_.allocate(0x30000, pattern(3, 4))
        file_.drain(max_requests=2)  # cursor now on the third register
        assert file_.cancel_region(0x10000) == 1
        nxt = file_.drain(max_requests=1)
        assert nxt[0].region == 0x30000

    def test_cancel_at_tail_clamps_cursor(self, file_):
        file_.allocate(0x10000, pattern(1, 2))
        file_.allocate(0x20000, pattern(5, 6))
        file_.drain(max_requests=1)  # cursor on second register
        assert file_.cancel_region(0x20000) == 1
        nxt = file_.drain(max_requests=1)
        assert nxt[0].region == 0x10000

    def test_clear(self, file_):
        file_.allocate(0x10000, pattern(1))
        file_.clear()
        assert file_.active_registers == 0
        assert file_.drain() == []

    def test_statistics(self, file_):
        file_.allocate(0x10000, pattern(1, 2))
        file_.drain()
        assert file_.allocations == 1
        assert file_.requests_issued == 2
