"""Tests for repro.memory.decoupled (the decoupled sectored cache)."""

import pytest

from repro.memory.cache import AccessOutcome, SetAssociativeCache
from repro.memory.decoupled import DecoupledSectoredCache


def make_cache(capacity=8 * 2048, sector=2048, block=64, assoc=2):
    return DecoupledSectoredCache(
        capacity_bytes=capacity, sector_size=sector, block_size=block, associativity=assoc
    )


REGION = 0x100000


class TestConstruction:
    def test_geometry(self):
        cache = make_cache()
        assert cache.num_sets == 4
        assert cache.blocks_per_sector == 32

    def test_invalid_sector_smaller_than_block(self):
        with pytest.raises(ValueError):
            DecoupledSectoredCache(capacity_bytes=4096, sector_size=32, block_size=64)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecoupledSectoredCache(capacity_bytes=5000, sector_size=2048)


class TestBasicAccess:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(REGION).outcome is AccessOutcome.MISS
        assert cache.access(REGION).outcome is AccessOutcome.HIT

    def test_same_sector_different_block_misses(self):
        cache = make_cache()
        cache.access(REGION)
        assert cache.access(REGION + 5 * 64).outcome is AccessOutcome.MISS
        assert cache.contains(REGION)
        assert cache.contains(REGION + 5 * 64)

    def test_occupancy_counts_blocks(self):
        cache = make_cache()
        for offset in range(4):
            cache.access(REGION + offset * 64)
        assert cache.occupancy == 4
        assert cache.resident_sectors == 1

    def test_prefetch_fill_and_hit(self):
        cache = make_cache()
        cache.fill(REGION + 2 * 64, prefetched=True)
        assert cache.access(REGION + 2 * 64).outcome is AccessOutcome.PREFETCH_HIT


class TestSectorConflicts:
    def test_sector_replacement_evicts_all_blocks(self):
        # Regions spaced by num_sets sectors collide in the same tag set.
        cache = make_cache()
        stride = cache.num_sets * 2048
        for offset in (0, 3, 7):
            cache.access(REGION + offset * 64)
        cache.access(REGION + stride)
        events = []
        cache.add_eviction_listener(events.append)
        cache.access(REGION + 2 * stride)  # conflict: evicts the first sector
        evicted_blocks = {event.block_addr for event in events}
        assert evicted_blocks == {REGION, REGION + 3 * 64, REGION + 7 * 64}
        assert not cache.contains(REGION)
        assert cache.sector_evictions == 1

    def test_conflicts_worse_than_traditional_cache(self):
        """The paper's point: interleaved regions conflict in sector tags even
        when a traditional cache of the same capacity would hold all blocks."""
        capacity = 8 * 2048
        sectored = make_cache(capacity=capacity)
        traditional = SetAssociativeCache(capacity_bytes=capacity, block_size=64, associativity=2)
        # Touch one block in each of 12 regions, twice.  The offsets differ per
        # region so the traditional cache spreads them over its sets, while the
        # sectored cache can only hold 8 sector tags.
        addresses = [REGION + region * 2048 + region * 64 for region in range(12)]
        for _ in range(2):
            for address in addresses:
                sectored.access(address)
                traditional.access(address)
        assert sectored.stats.misses > traditional.stats.misses


class TestInvalidation:
    def test_invalidate_single_block(self):
        cache = make_cache()
        cache.access(REGION)
        cache.access(REGION + 64)
        evicted = cache.invalidate(REGION)
        assert evicted is not None and evicted.invalidated
        assert not cache.contains(REGION)
        assert cache.contains(REGION + 64)

    def test_invalidate_last_block_drops_sector(self):
        cache = make_cache()
        cache.access(REGION)
        cache.invalidate(REGION)
        assert cache.resident_sectors == 0

    def test_invalidate_absent_block(self):
        assert make_cache().invalidate(REGION) is None

    def test_flush(self):
        cache = make_cache()
        for offset in range(3):
            cache.access(REGION + offset * 64)
        flushed = cache.flush()
        assert len(flushed) == 3
        assert cache.occupancy == 0


class TestTrainerApproximationAgreement:
    def test_forced_eviction_model_matches_real_sector_eviction(self):
        """The DecoupledSectoredTrainer's forced evictions name exactly the
        blocks a real decoupled sectored cache would evict on the same conflict."""
        from repro.core.region import RegionGeometry
        from repro.core.training import DecoupledSectoredTrainer

        geometry = RegionGeometry(region_size=2048, block_size=64)
        trainer = DecoupledSectoredTrainer(geometry, cache_capacity=4 * 2048, cache_associativity=2)
        cache = make_cache(capacity=4 * 2048)
        stride = 2 * 2048

        accesses = [REGION, REGION + 3 * 64, REGION + stride, REGION + 2 * stride]
        events = []
        cache.add_eviction_listener(events.append)
        forced = []
        for address in accesses:
            response = trainer.observe_access(0x400, address)
            forced.extend(response.forced_evictions)
            cache.access(address)
        assert set(forced) == {event.block_addr for event in events}
