"""Tests for repro.core.pht (Pattern History Table)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pattern import SpatialPattern
from repro.core.pht import PatternHistoryTable, stable_hash


def pattern(*offsets, width=32):
    return SpatialPattern.from_offsets(width, offsets)


class TestStableHash:
    def test_deterministic(self):
        key = ("pc+off", 0x400, 5)
        assert stable_hash(key) == stable_hash(("pc+off", 0x400, 5))

    def test_distinguishes_keys(self):
        assert stable_hash(("pc", 1)) != stable_hash(("pc", 2))

    def test_non_tuple_keys(self):
        assert isinstance(stable_hash(42), int)


class TestConstruction:
    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, num_entries=0)

    def test_entries_must_be_multiple_of_associativity(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, num_entries=100, associativity=16)

    def test_invalid_merge(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, merge="max")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=0)


class TestBoundedTable:
    def test_store_and_lookup(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4)
        pht.store(("pc+off", 1, 0), pattern(0, 5))
        assert pht.lookup(("pc+off", 1, 0)) == pattern(0, 5)
        assert pht.lookup(("pc+off", 2, 0)) is None

    def test_store_replaces_existing(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4)
        key = ("pc+off", 1, 0)
        pht.store(key, pattern(0))
        pht.store(key, pattern(1, 2))
        assert pht.lookup(key) == pattern(1, 2)

    def test_union_merge(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4, merge="union")
        key = ("pc+off", 1, 0)
        pht.store(key, pattern(0))
        pht.store(key, pattern(3))
        assert pht.lookup(key) == pattern(0, 3)

    def test_wrong_width_rejected(self):
        pht = PatternHistoryTable(num_blocks=32)
        with pytest.raises(ValueError):
            pht.store("k", pattern(0, width=16))

    def test_set_capacity_respected(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=8, associativity=2)
        # Insert many keys; no set may hold more than 2 entries.
        for i in range(50):
            pht.store(("pc", i), pattern(i % 32))
        assert pht.occupancy <= 8
        assert pht.replacements > 0

    def test_lru_within_set(self):
        # A single-set table makes the LRU order easy to check.
        pht = PatternHistoryTable(num_blocks=32, num_entries=2, associativity=2)
        pht.store("a", pattern(0))
        pht.store("b", pattern(1))
        pht.lookup("a")
        pht.store("c", pattern(2))  # should evict "b"
        assert pht.probe("a") is not None
        assert pht.probe("b") is None
        assert pht.probe("c") is not None

    def test_invalidate(self):
        pht = PatternHistoryTable(num_blocks=32)
        pht.store("k", pattern(0))
        assert pht.invalidate("k") == pattern(0)
        assert pht.probe("k") is None
        assert pht.invalidate("k") is None

    def test_statistics(self):
        pht = PatternHistoryTable(num_blocks=32)
        pht.store("k", pattern(0))
        pht.lookup("k")
        pht.lookup("missing")
        assert pht.lookups == 2
        assert pht.hits == 1
        assert pht.hit_rate == pytest.approx(0.5)
        assert pht.stores == 1


class TestUnboundedTable:
    def test_never_replaces(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=None)
        for i in range(1000):
            pht.store(("pc", i), pattern(i % 32))
        assert pht.occupancy == 1000
        assert pht.replacements == 0
        assert pht.is_unbounded

    def test_lookup(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=None)
        pht.store("k", pattern(7))
        assert pht.lookup("k") == pattern(7)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
    )
    def test_occupancy_bounded(self, keys):
        pht = PatternHistoryTable(num_blocks=32, num_entries=32, associativity=4)
        for key in keys:
            pht.store(("pc", key), pattern(key % 32))
        assert pht.occupancy <= 32

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100),
    )
    def test_most_recent_store_always_found(self, keys):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4)
        for key in keys:
            pht.store(("pc", key), pattern(key % 32))
            assert pht.probe(("pc", key)) is not None
