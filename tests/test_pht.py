"""Tests for repro.core.pht (Pattern History Table)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pattern import SpatialPattern
from repro.core.pht import PatternHistoryTable, stable_hash


def pattern(*offsets, width=32):
    return SpatialPattern.from_offsets(width, offsets)


class TestStableHash:
    def test_deterministic(self):
        key = ("pc+off", 0x400, 5)
        assert stable_hash(key) == stable_hash(("pc+off", 0x400, 5))

    def test_distinguishes_keys(self):
        assert stable_hash(("pc", 1)) != stable_hash(("pc", 2))

    def test_non_tuple_keys(self):
        assert isinstance(stable_hash(42), int)

    #: Hash values produced by the original repr()-based FNV-1a mix.  The
    #: fast integer/tuple path must reproduce them exactly: PHT set selection
    #: is `stable_hash(key) % num_sets`, so any change to these values would
    #: silently re-place every pattern and perturb all figure results.
    PINNED = {
        42: 0x7ee7e07b4b19223,
        0: 0xaf63ad4c86019caf,
        -7: 0x7d01107b497db5d,
        123456789: 0x6d5573923c6cdfc,
        "pc+off": 0x1045b7e0f273a57e,
        ("pc+off", 0x400, 5): 0x9a94092f564bfbec,
        ("pc", 1): 0xe1dc5a6d36441fd7,
        ("pc", 2): 0xe1dc5b6d3644218a,
        (0x7FFF0000, 31): 0x20e729ee08db8132,
        ("rot", -3, "x"): 0xad0bfa3374cdcba4,
        (): 0xCBF29CE484222325,
        ("a",): 0xA8DE4417BF44D6A6,
        ("pc+off", 1048576, 0): 0xBD1777F87ADB1E81,
    }

    def test_pinned_values_reproduced(self):
        for key, expected in self.PINNED.items():
            assert stable_hash(key) == expected, key

    def test_equal_but_differently_typed_keys_hash_by_encoding(self):
        # The memo keys on equality but the encoding on repr; keys outside
        # the int/str domain must bypass the cache so results never depend
        # on call order: ("pc", 1) and ("pc", True) compare equal yet hash
        # differently, in either order.
        assert stable_hash(("pc", 1)) == self.PINNED[("pc", 1)]
        assert stable_hash(("pc", True)) != stable_hash(("pc", 1))
        assert stable_hash((1.0,)) != stable_hash((1,))


class TestConstruction:
    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, num_entries=0)

    def test_entries_must_be_multiple_of_associativity(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, num_entries=100, associativity=16)

    def test_invalid_merge(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, merge="max")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=0)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, backend="redis")

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(num_blocks=32, shards=0)

    def test_repr_names_non_default_backend(self):
        table = PatternHistoryTable(num_blocks=32, backend="array", shards=4)
        assert "backend=array" in repr(table) and "x4" in repr(table)
        assert "backend" not in repr(PatternHistoryTable(num_blocks=32))


class TestBoundedTable:
    def test_store_and_lookup(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4)
        pht.store(("pc+off", 1, 0), pattern(0, 5))
        assert pht.lookup(("pc+off", 1, 0)) == pattern(0, 5)
        assert pht.lookup(("pc+off", 2, 0)) is None

    def test_store_replaces_existing(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4)
        key = ("pc+off", 1, 0)
        pht.store(key, pattern(0))
        pht.store(key, pattern(1, 2))
        assert pht.lookup(key) == pattern(1, 2)

    def test_union_merge(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4, merge="union")
        key = ("pc+off", 1, 0)
        pht.store(key, pattern(0))
        pht.store(key, pattern(3))
        assert pht.lookup(key) == pattern(0, 3)

    def test_wrong_width_rejected(self):
        pht = PatternHistoryTable(num_blocks=32)
        with pytest.raises(ValueError):
            pht.store("k", pattern(0, width=16))

    def test_set_capacity_respected(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=8, associativity=2)
        # Insert many keys; no set may hold more than 2 entries.
        for i in range(50):
            pht.store(("pc", i), pattern(i % 32))
        assert pht.occupancy <= 8
        assert pht.replacements > 0

    def test_lru_within_set(self):
        # A single-set table makes the LRU order easy to check.
        pht = PatternHistoryTable(num_blocks=32, num_entries=2, associativity=2)
        pht.store("a", pattern(0))
        pht.store("b", pattern(1))
        pht.lookup("a")
        pht.store("c", pattern(2))  # should evict "b"
        assert pht.probe("a") is not None
        assert pht.probe("b") is None
        assert pht.probe("c") is not None

    def test_invalidate(self):
        pht = PatternHistoryTable(num_blocks=32)
        pht.store("k", pattern(0))
        assert pht.invalidate("k") == pattern(0)
        assert pht.probe("k") is None
        assert pht.invalidate("k") is None

    def test_statistics(self):
        pht = PatternHistoryTable(num_blocks=32)
        pht.store("k", pattern(0))
        pht.lookup("k")
        pht.lookup("missing")
        assert pht.lookups == 2
        assert pht.hits == 1
        assert pht.hit_rate == pytest.approx(0.5)
        assert pht.stores == 1


class TestUnboundedTable:
    def test_never_replaces(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=None)
        for i in range(1000):
            pht.store(("pc", i), pattern(i % 32))
        assert pht.occupancy == 1000
        assert pht.replacements == 0
        assert pht.is_unbounded

    def test_lookup(self):
        pht = PatternHistoryTable(num_blocks=32, num_entries=None)
        pht.store("k", pattern(7))
        assert pht.lookup("k") == pattern(7)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
    )
    def test_occupancy_bounded(self, keys):
        pht = PatternHistoryTable(num_blocks=32, num_entries=32, associativity=4)
        for key in keys:
            pht.store(("pc", key), pattern(key % 32))
        assert pht.occupancy <= 32

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100),
    )
    def test_most_recent_store_always_found(self, keys):
        pht = PatternHistoryTable(num_blocks=32, num_entries=64, associativity=4)
        for key in keys:
            pht.store(("pc", key), pattern(key % 32))
            assert pht.probe(("pc", key)) is not None
