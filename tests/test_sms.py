"""Tests for repro.core.sms (the end-to-end SMS predictor).

These tests drive SMS directly (without the simulation engine) through
hand-written access sequences and check that it learns patterns, predicts at
trigger accesses, and streams the right blocks.
"""

import pytest

from repro.coherence.multiprocessor import AccessOutcomeRecord
from repro.core import SMSConfig, SpatialMemoryStreaming
from repro.memory.cache import AccessOutcome, AccessResult
from repro.memory.hierarchy import MemoryLevel
from repro.trace.record import MemoryAccess


def outcome_for(record, miss=True):
    """Build a minimal AccessOutcomeRecord for the prefetcher interface."""
    result = AccessResult(
        outcome=AccessOutcome.MISS if miss else AccessOutcome.HIT,
        block_addr=record.address & ~63,
    )
    return AccessOutcomeRecord(record=record, level=MemoryLevel.MEMORY, l1_result=result)


def drive(sms, pc, address):
    record = MemoryAccess(pc=pc, address=address)
    return sms.on_access(record, outcome_for(record))


REGION_A = 0x100000
REGION_B = 0x200000


@pytest.fixture
def sms():
    return SpatialMemoryStreaming(SMSConfig(region_size=2048, block_size=64))


class TestLearningAndPrediction:
    def test_no_prediction_before_training(self, sms):
        response = drive(sms, 0x400, REGION_A)
        assert not response.prefetches

    def test_pattern_learned_and_predicted_for_new_region(self, sms):
        # Generation in region A: blocks 0, 2, 5 accessed, trigger pc 0x400.
        drive(sms, 0x400, REGION_A + 0 * 64)
        drive(sms, 0x404, REGION_A + 2 * 64)
        drive(sms, 0x408, REGION_A + 5 * 64)
        # Generation ends: one of its blocks is evicted.
        sms.on_eviction(REGION_A + 2 * 64, invalidated=False)
        # A new region triggered by the same PC at the same offset predicts
        # the learned pattern (minus the trigger block).
        response = drive(sms, 0x400, REGION_B + 0 * 64)
        addresses = sorted(request.address for request in response.prefetches)
        assert addresses == [REGION_B + 2 * 64, REGION_B + 5 * 64]

    def test_prediction_targets_l1_by_default(self, sms):
        drive(sms, 0x400, REGION_A)
        drive(sms, 0x404, REGION_A + 64)
        sms.on_eviction(REGION_A, invalidated=False)
        response = drive(sms, 0x400, REGION_B)
        assert all(request.target_l1 for request in response.prefetches)

    def test_different_trigger_offset_uses_different_pattern(self, sms):
        # Learn a pattern triggered at offset 0.
        drive(sms, 0x400, REGION_A + 0 * 64)
        drive(sms, 0x404, REGION_A + 1 * 64)
        sms.on_eviction(REGION_A, invalidated=False)
        # A trigger at a different offset by the same PC has no PHT entry.
        response = drive(sms, 0x400, REGION_B + 9 * 64)
        assert not response.prefetches

    def test_single_block_generations_never_train(self, sms):
        drive(sms, 0x400, REGION_A)
        sms.on_eviction(REGION_A, invalidated=False)
        response = drive(sms, 0x400, REGION_B)
        assert not response.prefetches
        assert sms.stats.trained_patterns == 0

    def test_pht_statistics(self, sms):
        drive(sms, 0x400, REGION_A)
        drive(sms, 0x404, REGION_A + 64)
        sms.on_eviction(REGION_A, invalidated=False)
        drive(sms, 0x400, REGION_B)
        assert sms.stats.trained_patterns == 1
        assert sms.stats.pht_hits >= 1
        assert sms.stats.issued == 1


class TestInvalidation:
    def test_invalidation_ends_generation_and_trains(self, sms):
        drive(sms, 0x400, REGION_A)
        drive(sms, 0x404, REGION_A + 64)
        sms.on_eviction(REGION_A + 64, invalidated=True)
        assert sms.stats.trained_patterns == 1

    def test_invalidation_cancels_streaming_for_region(self, sms):
        # Learn a large pattern, then restrict issue bandwidth so streaming is
        # still in progress when the invalidation arrives.
        config = SMSConfig(max_requests_per_access=1)
        sms = SpatialMemoryStreaming(config)
        drive(sms, 0x400, REGION_A)
        for offset in (1, 2, 3, 4):
            drive(sms, 0x404, REGION_A + offset * 64)
        sms.on_eviction(REGION_A, invalidated=False)
        first = drive(sms, 0x400, REGION_B)
        assert len(first.prefetches) == 1
        sms.on_eviction(REGION_B, invalidated=True)
        assert sms.registers.active_registers == 0


class TestConfigurationVariants:
    def test_l2_only_streaming(self):
        sms = SpatialMemoryStreaming(SMSConfig(stream_into_l1=False))
        drive(sms, 0x400, REGION_A)
        drive(sms, 0x404, REGION_A + 64)
        sms.on_eviction(REGION_A, invalidated=False)
        response = drive(sms, 0x400, REGION_B)
        assert response.prefetches
        assert all(not request.target_l1 for request in response.prefetches)

    def test_unbounded_configuration(self):
        sms = SpatialMemoryStreaming(SMSConfig.unbounded())
        assert sms.pht.is_unbounded

    def test_pht_backend_flows_from_config(self):
        sms = SpatialMemoryStreaming(SMSConfig(pht_backend="array", pht_shards=2))
        assert sms.pht.backend == "array"
        assert sms.pht.shards == 2

    def test_invalid_pht_backend_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SMSConfig(pht_backend="redis")
        with pytest.raises(ValueError):
            SMSConfig(pht_shards=0)

    def test_ds_trainer_propagates_forced_evictions(self):
        config = SMSConfig(
            trainer="decoupled-sectored",
            trained_cache_capacity=4 * 2048,
            trained_cache_associativity=2,
        )
        sms = SpatialMemoryStreaming(config)
        stride = 2 * 2048
        drive(sms, 0x400, REGION_A)
        drive(sms, 0x404, REGION_A + 3 * 64)
        drive(sms, 0x400, REGION_A + stride)
        response = drive(sms, 0x400, REGION_A + 2 * stride)
        assert REGION_A in response.forced_evictions

    def test_finalize_trains_open_generations(self, sms):
        drive(sms, 0x400, REGION_A)
        drive(sms, 0x404, REGION_A + 64)
        sms.finalize()
        assert sms.stats.trained_patterns == 1

    def test_repr_mentions_configuration(self, sms):
        text = repr(sms)
        assert "pc+offset" in text
        assert "agt" in text
