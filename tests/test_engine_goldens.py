"""Golden-counter regression tests for the simulation engine.

These values were produced by the straightforward (pre-fast-path) engine
implementation.  The engine's hot path is aggressively optimised; these tests
pin every externally visible counter so that any optimisation that changes
simulated behaviour — rather than just making it faster — fails loudly.

If a *deliberate* modelling change alters these counters, regenerate the
goldens by running the listed configurations and updating the dictionaries.
"""

import pytest

from repro.core import SMSConfig, SpatialMemoryStreaming
from repro.prefetch import GHBConfig, GlobalHistoryBuffer, NullPrefetcher
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.workloads import make_workload

#: Counter fields pinned for every golden configuration.
COUNTER_FIELDS = (
    "accesses", "reads", "writes", "system_accesses", "instructions",
    "l1_read_misses", "l1_write_misses", "l1_read_covered", "l1_write_covered",
    "l1_overpredictions", "l2_demand_reads", "l2_read_hits",
    "offchip_read_misses", "offchip_write_misses", "l2_read_covered",
    "l2_overpredictions", "false_sharing_misses", "invalidations",
    "prefetches_issued", "prefetch_fills_l1", "prefetch_fills_l2",
)

GOLDENS = {
    "oltp-db2/none": {
        "accesses": 4200, "reads": 3661, "writes": 539, "system_accesses": 117,
        "instructions": 14567, "l1_read_misses": 3184, "l1_write_misses": 531,
        "l1_read_covered": 0, "l1_write_covered": 0, "l1_overpredictions": 0,
        "l2_demand_reads": 3184, "l2_read_hits": 1078,
        "offchip_read_misses": 2106, "offchip_write_misses": 506,
        "l2_read_covered": 0, "l2_overpredictions": 0,
        "false_sharing_misses": 0, "invalidations": 7,
        "prefetches_issued": 0, "prefetch_fills_l1": 0, "prefetch_fills_l2": 0,
        "traffic_total_bytes": 237760, "traffic_useful_bytes": 237760,
    },
    "oltp-db2/sms": {
        "accesses": 4200, "reads": 3661, "writes": 539, "system_accesses": 117,
        "instructions": 14567, "l1_read_misses": 1554, "l1_write_misses": 343,
        "l1_read_covered": 1669, "l1_write_covered": 191,
        "l1_overpredictions": 572, "l2_demand_reads": 1554, "l2_read_hits": 567,
        "offchip_read_misses": 987, "offchip_write_misses": 326,
        "l2_read_covered": 1079, "l2_overpredictions": 411,
        "false_sharing_misses": 0, "invalidations": 10,
        "prefetches_issued": 2783, "prefetch_fills_l1": 2783,
        "prefetch_fills_l2": 2783,
        "traffic_total_bytes": 299520, "traffic_useful_bytes": 121408,
    },
    "ocean/sms": {
        "accesses": 4200, "reads": 3360, "writes": 840, "system_accesses": 0,
        "instructions": 23123, "l1_read_misses": 840, "l1_write_misses": 182,
        "l1_read_covered": 0, "l1_write_covered": 658, "l1_overpredictions": 93,
        "l2_demand_reads": 840, "l2_read_hits": 0,
        "offchip_read_misses": 840, "offchip_write_misses": 182,
        "l2_read_covered": 0, "l2_overpredictions": 179,
        "false_sharing_misses": 0, "invalidations": 0,
        "prefetches_issued": 837, "prefetch_fills_l1": 837,
        "prefetch_fills_l2": 837,
        "traffic_total_bytes": 118976, "traffic_useful_bytes": 65408,
    },
    "dss-qry2/ghb": {
        "accesses": 4200, "reads": 4189, "writes": 11, "system_accesses": 10,
        "instructions": 40382, "l1_read_misses": 3254, "l1_write_misses": 11,
        "l1_read_covered": 0, "l1_write_covered": 0, "l1_overpredictions": 0,
        "l2_demand_reads": 3254, "l2_read_hits": 2924,
        "offchip_read_misses": 330, "offchip_write_misses": 11,
        "l2_read_covered": 2698, "l2_overpredictions": 207,
        "false_sharing_misses": 0, "invalidations": 0,
        "prefetches_issued": 11312, "prefetch_fills_l1": 0,
        "prefetch_fills_l2": 11312,
        "traffic_total_bytes": 932928, "traffic_useful_bytes": 208960,
    },
}

PREFETCHER_FACTORIES = {
    "none": lambda: (lambda cpu: NullPrefetcher()),
    "sms": lambda: (lambda cpu: SpatialMemoryStreaming(SMSConfig.paper_practical())),
    "ghb": lambda: (lambda cpu: GlobalHistoryBuffer(GHBConfig(buffer_entries=256))),
}


def _run(workload_name: str, prefetcher: str):
    workload = make_workload(workload_name, num_cpus=2, accesses_per_cpu=3000, seed=11)
    config = SimulationConfig.small(num_cpus=2)
    engine = SimulationEngine(
        config, PREFETCHER_FACTORIES[prefetcher](), name=f"{workload_name}-{prefetcher}"
    )
    return engine.run(workload)


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_counters_bit_identical_to_reference(key):
    workload_name, prefetcher = key.split("/")
    result = _run(workload_name, prefetcher)
    expected = GOLDENS[key]
    actual = {f: getattr(result, f) for f in COUNTER_FIELDS}
    actual["traffic_total_bytes"] = result.traffic.total_bytes
    actual["traffic_useful_bytes"] = result.traffic.useful_bytes
    assert actual == expected
